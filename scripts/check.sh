#!/usr/bin/env bash
# Pre-merge gate for the DMW workspace (see docs/static_analysis.md).
#
# Runs, in order:
#   1. cargo fmt --check          -- formatting drift
#   2. cargo clippy               -- warnings are errors workspace-wide;
#      the four panic/truncation lints are advisory (`-A`) at this layer
#      because crates/{modmath,crypto} already escalate them to `#![deny]`
#      at their crate roots (source attributes outrank these CLI flags)
#      and the protocol-critical modules of `dmw` are policed by dmw-lint
#   3. cargo doc                  -- rustdoc warnings (broken intra-doc
#      links, missing docs) are errors
#   4. dmw-lint                   -- protocol-invariant rules L1-L11
#      (lexical L1-L8 plus flow-sensitive L9 secrecy-taint, L10
#      determinism-order and L11 phase-graph conformance), then the
#      stable JSON report is regenerated and compared against the
#      committed docs/lint_report.json -- a stale report fails the gate
#   5. cargo build -p dmw-examples --bins
#                                 -- the example binaries ([[bin]] targets
#      with autobins off, so plain `cargo build`/`cargo test` skip them)
#   6. fault-matrix smoke         -- the chaos determinism suite (reliable
#      delivery + graceful degradation over the seeded fault matrix),
#      isolated so a recovery regression is named before the full suite
#   7. cargo test                 -- full workspace suite (which re-runs
#      dmw-lint as an integration test, so CI cannot skip it)
#   8. bench_batch --smoke        -- the batch engine end-to-end on a tiny
#      instance, exiting non-zero if thread counts disagree or the
#      adaptive recovery layer exceeds its retransmission/duplicate
#      ceilings (the recovery-regression gate)
#   9. bench_scale --smoke        -- the event-driven scheduler's n-sweep
#      harness end-to-end on the smallest point, exiting non-zero if the
#      event engine and the polling oracle disagree bit-for-bit
#  10. reproduce drift            -- regenerates the full report and the
#      metrics snapshot under the (default) event engine and compares
#      byte-for-byte against the committed docs/reproduce_output.md and
#      docs/reproduce_metrics.json -- scheduler drift fails the gate
#
# Exits non-zero at the first failing step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --quiet -- \
    -D warnings \
    -A clippy::unwrap-used \
    -A clippy::expect-used \
    -A clippy::indexing-slicing \
    -A clippy::cast-possible-truncation

echo "==> cargo doc (no-deps, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --quiet --no-deps

echo "==> dmw-lint"
cargo run --quiet -p dmw-lint

echo "==> dmw-lint --format json (report drift)"
mkdir -p target
cargo run --quiet -p dmw-lint -- --format json --out target/lint_report.json
if ! cmp -s target/lint_report.json docs/lint_report.json; then
    echo "docs/lint_report.json is stale; regenerate with:" >&2
    echo "  cargo run -p dmw-lint -- --format json --out docs/lint_report.json" >&2
    exit 1
fi

echo "==> cargo build -p dmw-examples --bins"
cargo build --quiet -p dmw-examples --bins

echo "==> fault-matrix smoke (recovery determinism)"
cargo test --quiet -p integration-tests --test recovery_determinism

echo "==> cargo test (workspace)"
cargo test --quiet --workspace

echo "==> bench_batch --smoke (recovery ceilings)"
# The smoke instance is fully deterministic: the adaptive endpoint
# produces exactly 135 retransmissions and 102 duplicate deliveries
# today, so the ~10% ceilings below trip on any recovery-layer
# regression long before the committed 5x batch budget is at risk.
cargo run --quiet -p dmw-bench --bin bench_batch -- --smoke \
    --max-retransmissions 150 --max-duplicates 115

echo "==> bench_scale --smoke"
cargo run --quiet -p dmw-bench --bin bench_scale -- --smoke

echo "==> reproduce drift (event engine vs committed report)"
cargo run --release --quiet -p dmw-bench --bin reproduce -- all \
    --metrics target/reproduce_metrics.json > target/reproduce_output.md
if ! cmp -s target/reproduce_output.md docs/reproduce_output.md; then
    echo "docs/reproduce_output.md is stale; regenerate with:" >&2
    echo "  cargo run --release -p dmw-bench --bin reproduce -- all \\" >&2
    echo "    --metrics docs/reproduce_metrics.json > docs/reproduce_output.md" >&2
    exit 1
fi
if ! cmp -s target/reproduce_metrics.json docs/reproduce_metrics.json; then
    echo "docs/reproduce_metrics.json is stale; regenerate alongside the report" >&2
    exit 1
fi

echo "check.sh: all gates passed"
