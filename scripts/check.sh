#!/usr/bin/env bash
# Pre-merge gate for the DMW workspace (see docs/static_analysis.md).
#
# Runs, in order:
#   1. cargo fmt --check          -- formatting drift
#   2. cargo clippy               -- warnings are errors workspace-wide;
#      the four panic/truncation lints are advisory (`-A`) at this layer
#      because crates/{modmath,crypto} already escalate them to `#![deny]`
#      at their crate roots (source attributes outrank these CLI flags)
#      and the protocol-critical modules of `dmw` are policed by dmw-lint
#   3. dmw-lint                   -- protocol-invariant rules L1-L5
#   4. cargo test                 -- full workspace suite (which re-runs
#      dmw-lint as an integration test, so CI cannot skip it)
#
# Exits non-zero at the first failing step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --quiet -- \
    -D warnings \
    -A clippy::unwrap-used \
    -A clippy::expect-used \
    -A clippy::indexing-slicing \
    -A clippy::cast-possible-truncation

echo "==> dmw-lint"
cargo run --quiet -p dmw-lint

echo "==> cargo test (workspace)"
cargo test --quiet --workspace

echo "check.sh: all gates passed"
