//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so the real `rand` crate cannot be fetched. This
//! crate implements the small, deterministic subset of the `rand` 0.8 API
//! that the DMW workspace actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`] — every experiment
//!   seeds its generator explicitly (replayability is a protocol-level
//!   requirement, see `docs/static_analysis.md` rule L4).
//! * [`Rng::gen_range`], [`Rng::gen`], [`Rng::gen_bool`] over the integer
//!   and float ranges the workspace samples from.
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — the same
//! construction the real `rand` uses for `seed_from_u64`, so streams are
//! high-quality, but note the streams are **not** bit-identical to the
//! real crate's `StdRng` (which is ChaCha12). All workspace tests assert
//! semantic properties, not specific random streams, so this is safe.
//!
//! Deliberately *not* implemented: `thread_rng` and `from_entropy`. Their
//! absence is load-bearing — ambient, non-replayable randomness is a
//! protocol break for the experiment harness, and `dmw-lint` rule L4
//! enforces the same invariant at the source level.

/// Low-level generator interface: a source of random `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let take = chunk.len();
            chunk.copy_from_slice(&word[..take]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of `T` from its full domain.
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 uniform mantissa bits, same construction as `f64` sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood 2014), as in rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let take = chunk.len();
            chunk.copy_from_slice(&bytes[..take]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not reproducible against the real `rand::rngs::StdRng` streams,
    /// but a high-quality, splittable, fully deterministic PRNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ 1.0 (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace never needs a distinct small generator.
    pub type SmallRng = StdRng;
}

pub mod distributions {
    //! Sampling traits backing [`Rng::gen`](crate::Rng::gen) and [`Rng::gen_range`](crate::Rng::gen_range).

    use super::RngCore;

    /// Full-domain sampling for [`super::Rng::gen`].
    pub trait Standard: Sized {
        /// Samples a value from the type's full domain.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    pub mod uniform {
        //! Range sampling for [`super::super::Rng::gen_range`].

        use super::super::RngCore;
        use core::ops::{Range, RangeInclusive};

        /// A range that [`super::super::Rng::gen_range`] can sample from.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Rejection-free-enough uniform integer in `[0, bound)` via
        /// Lemire's multiply-shift reduction with rejection on the
        /// biased slice.
        fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
            assert!(bound > 0, "gen_range: empty range");
            // Widening multiply keeps the draw unbiased.
            let mut m = u128::from(rng.next_u64()) * u128::from(bound);
            let mut lo = m as u64;
            if lo < bound {
                let threshold = bound.wrapping_neg() % bound;
                while lo < threshold {
                    m = u128::from(rng.next_u64()) * u128::from(bound);
                    lo = m as u64;
                }
            }
            (m >> 64) as u64
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start.wrapping_add(uniform_below(rng, span) as $t)
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "gen_range: empty range");
                        let span = (end as u64).wrapping_sub(start as u64);
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        start.wrapping_add(uniform_below(rng, span + 1) as $t)
                    }
                }
            )*};
        }

        impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                start + (end - start) * unit
            }
        }
    }
}

pub mod seq {
    //! Slice shuffling and choosing.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                self.get(i)
            }
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rand::prelude`.
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = rng.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 values hit: {seen:?}");
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn unsized_rng_params_work() {
        // Mirrors the workspace's `R: Rng + ?Sized` signatures.
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample(&mut rng) < 100);
    }
}
