//! Offline stand-in for the `rayon` crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so the real `rayon` crate cannot be fetched. This
//! crate implements the small data-parallelism subset the DMW workspace
//! actually uses:
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — a *width* handle: a
//!   pool fixes how many worker threads a parallel operation may fan out
//!   over, and `install` scopes that width to a closure;
//! * [`prelude::IntoParallelRefIterator::par_iter`] on slices and `Vec`,
//!   with [`iter::Iter::map`], [`iter::Iter::enumerate`] and order-stable
//!   `collect` — the shape `jobs.par_iter().map(f).collect::<Vec<_>>()`
//!   that [`dmw`'s batch engine] and the share-verification fan-out rely
//!   on;
//! * [`join`] for two-way structured parallelism.
//!
//! # Fidelity notes
//!
//! * Real rayon keeps a lazily-started global pool of work-stealing
//!   threads; this stand-in spawns scoped OS threads *per parallel call*
//!   and hands out work items through an atomic cursor. For the
//!   millisecond-scale protocol trials this workspace parallelizes, the
//!   per-call spawn cost (tens of microseconds) is noise; for
//!   microsecond-scale items, batch before fanning out.
//! * `ThreadPool::install(op)` runs `op` on the *calling* thread (real
//!   rayon migrates it into the pool) and only scopes the parallelism
//!   width; this is indistinguishable to deterministic callers.
//! * Nested parallel calls inside a worker run sequentially (width 1)
//!   instead of sharing the pool's queues — the same "no thread
//!   explosion" guarantee with a simpler mechanism.
//! * `collect` always produces results **in input order** regardless of
//!   which worker computed which item, exactly like rayon's indexed
//!   parallel iterators — the property the workspace's determinism tests
//!   pin down.
//!
//! A worker panic is propagated to the caller (first panic wins), matching
//! real rayon's behavior.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Parallelism width installed on this thread; `None` means "use the
    /// machine default".
    static CURRENT_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Restores the previously installed width even if the closure panics.
struct WidthGuard {
    prev: Option<usize>,
}

impl WidthGuard {
    fn install(width: Option<usize>) -> Self {
        let prev = CURRENT_WIDTH.with(|w| w.replace(width));
        WidthGuard { prev }
    }
}

impl Drop for WidthGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_WIDTH.with(|w| w.set(prev));
    }
}

fn machine_width() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The number of threads a parallel operation started here would fan out
/// over: the installed pool's width, or the machine's available
/// parallelism outside any [`ThreadPool::install`].
pub fn current_num_threads() -> usize {
    CURRENT_WIDTH.with(Cell::get).unwrap_or_else(machine_width)
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (oper_a(), oper_b());
    }
    std::thread::scope(|s| {
        let handle_b = s.spawn(|| {
            let _guard = WidthGuard::install(Some(1));
            oper_b()
        });
        let ra = oper_a();
        let rb = match handle_b.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Error building a [`ThreadPool`]. The stand-in never fails to build; the
/// type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration (machine width).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads; `0` means "machine width".
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the stand-in; the `Result` mirrors the real API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            machine_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

/// A handle fixing the parallelism width for operations run under
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// The pool's worker-thread count.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }

    /// Runs `op` with this pool's width installed: parallel iterators
    /// inside `op` fan out over `current_num_threads` workers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let _guard = WidthGuard::install(Some(self.width));
        op()
    }
}

/// Fans `len` indexed work items over `width` scoped worker threads and
/// returns the per-index results in index order. The work distribution is
/// dynamic (atomic cursor), the output order is not.
fn run_indexed<R, F>(len: usize, width: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let width = width.clamp(1, len.max(1));
    if width <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..width)
            .map(|_| {
                s.spawn(|| {
                    // Nested parallel calls inside a worker run
                    // sequentially; see the crate docs.
                    let _guard = WidthGuard::install(Some(1));
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        if let Some(slot) = slots.get_mut(i) {
            *slot = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| unreachable!("every index was assigned exactly once")))
        .collect()
}

pub mod iter {
    //! The parallel-iterator subset: `par_iter().map(..).collect()` on
    //! slices, plus `enumerate` for index-aware maps.

    use super::{current_num_threads, run_indexed};

    /// Types that offer a by-reference parallel iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed item type.
        type Item: 'data;
        /// The iterator type.
        type Iter;

        /// Creates the parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = Iter<'data, T>;

        fn par_iter(&'data self) -> Iter<'data, T> {
            Iter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = Iter<'data, T>;

        fn par_iter(&'data self) -> Iter<'data, T> {
            Iter { slice: self }
        }
    }

    /// Parallel iterator over a slice.
    #[derive(Debug)]
    pub struct Iter<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> Iter<'data, T> {
        /// Maps each item through `f`.
        pub fn map<R, F>(self, f: F) -> Map<'data, T, F>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            Map {
                slice: self.slice,
                f,
            }
        }

        /// Pairs each item with its index.
        pub fn enumerate(self) -> Enumerate<'data, T> {
            Enumerate { slice: self.slice }
        }
    }

    /// Index-carrying parallel iterator over a slice.
    #[derive(Debug)]
    pub struct Enumerate<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> Enumerate<'data, T> {
        /// Maps each `(index, item)` pair through `f`.
        pub fn map<R, F>(self, f: F) -> EnumerateMap<'data, T, F>
        where
            R: Send,
            F: Fn((usize, &'data T)) -> R + Sync,
        {
            EnumerateMap {
                slice: self.slice,
                f,
            }
        }
    }

    /// A mapped parallel iterator, ready to collect.
    #[derive(Debug)]
    pub struct Map<'data, T, F> {
        slice: &'data [T],
        f: F,
    }

    impl<'data, T, R, F> Map<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        /// Computes all items (fanning over the installed width) and
        /// collects the results **in input order**.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let slice = self.slice;
            let f = &self.f;
            run_indexed(slice.len(), current_num_threads(), |i| {
                f(slice.get(i).unwrap_or_else(|| unreachable!("i < len")))
            })
            .into_iter()
            .collect()
        }
    }

    /// A mapped, index-carrying parallel iterator, ready to collect.
    #[derive(Debug)]
    pub struct EnumerateMap<'data, T, F> {
        slice: &'data [T],
        f: F,
    }

    impl<'data, T, R, F> EnumerateMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn((usize, &'data T)) -> R + Sync,
    {
        /// Computes all items (fanning over the installed width) and
        /// collects the results **in input order**.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let slice = self.slice;
            let f = &self.f;
            run_indexed(slice.len(), current_num_threads(), |i| {
                f((i, slice.get(i).unwrap_or_else(|| unreachable!("i < len"))))
            })
            .into_iter()
            .collect()
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rayon::prelude`.
    pub use super::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let input: Vec<u64> = (0..500).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let doubled: Vec<u64> = pool.install(|| input.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_sees_true_indices() {
        let input = vec!["a"; 97];
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let idx: Vec<usize> =
            pool.install(|| input.par_iter().enumerate().map(|(i, _)| i).collect());
        assert_eq!(idx, (0..97).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_the_width() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        assert_eq!(pool.current_num_threads(), 5);
        pool.install(|| assert_eq!(current_num_threads(), 5));
        // Nested installs restore the outer width.
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 5);
        });
    }

    #[test]
    fn zero_threads_means_machine_width() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn nested_parallelism_inside_a_worker_is_sequential() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let input = vec![(); 8];
        let widths: Vec<usize> =
            pool.install(|| input.par_iter().map(|()| current_num_threads()).collect());
        // With >1 items and >1 workers the closures run on worker
        // threads, which pin nested width to 1.
        assert!(widths.iter().all(|&w| w == 1), "{widths:?}");
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| join(|| 6 * 7, || "ok"));
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn worker_panics_propagate() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let input: Vec<u64> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            pool.install(|| {
                input
                    .par_iter()
                    .map(|&x| {
                        assert!(x != 13, "boom");
                        x
                    })
                    .collect::<Vec<_>>()
            })
        });
        assert!(result.is_err());
    }
}
