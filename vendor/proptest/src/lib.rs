//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. Rather than stubbing the property tests out of
//! existence, this crate implements a small working property-testing
//! core with the API subset the DMW workspace uses, so every
//! `proptest! { ... }` block still *runs* as a real randomized test:
//!
//! * [`Strategy`] — sampled with a deterministic, per-test seeded RNG
//!   (FNV-1a over the test's module path and name), so failures are
//!   reproducible run-over-run.
//! * Integer and float range strategies, [`collection::vec`],
//!   [`num::u8::ANY`], [`Just`], and [`Strategy::prop_map`].
//! * [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assume!`], and `#![proptest_config(..)]`.
//!
//! Differences from upstream, by design: no shrinking (a failing case
//! prints its seed context via the panic message instead), no
//! persistence files, and a default of 64 cases rather than 256 to keep
//! offline CI fast. Tests that set an explicit
//! `ProptestConfig::with_cases(n)` run exactly `n` cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-run configuration, selected with `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: FNV-1a over the test's full name.
#[doc(hidden)]
pub fn test_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A generator of random values for one property-test parameter.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i32, i64, isize, f64);

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod num {
    //! Full-domain numeric strategies.

    macro_rules! any_mod {
        ($($m:ident: $t:ty),*) => {$(
            pub mod $m {
                use crate::{StdRng, Strategy};
                use rand::RngCore;

                /// Full-domain strategy for this integer type.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Uniform over the whole domain, like `proptest::num::*::ANY`.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn sample(&self, rng: &mut StdRng) -> $t {
                        const _: () = assert!(<$t>::BITS <= 64);
                        // Truncation is the point: take the low bits of
                        // one 64-bit word of the stream.
                        <$t>::try_from(rng.next_u64() & (<$t>::MAX as u64))
                            .unwrap_or(<$t>::MAX)
                    }
                }
            }
        )*};
    }

    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64);
}

pub mod bool {
    //! Full-domain `bool` strategy.

    use crate::{StdRng, Strategy};
    use rand::RngCore;

    /// Full-domain strategy for `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Fair coin, like `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    //! Compatibility alias module (upstream exposes `Config` here).
    pub use super::ProptestConfig as Config;
}

pub mod prelude {
    //! Everything a `proptest!` block needs in scope.
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::Strategy::sample(&($strat), &mut __rng);
                )+
                $body
            }
        }

        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn explicit_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }

        #[test]
        fn second_fn_in_block_also_expands(v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    proptest! {
        #[test]
        fn prop_map_and_assume_work(k in (0usize..=10).prop_map(|k| k * 2)) {
            prop_assume!(k > 0);
            prop_assert_eq!(k % 2, 0);
            prop_assert_ne!(k, 1);
        }
    }

    #[test]
    fn test_rng_is_deterministic_and_name_sensitive() {
        use crate::Strategy;
        let mut a = crate::test_rng("mod::a");
        let mut b = crate::test_rng("mod::a");
        let mut c = crate::test_rng("mod::c");
        let strat = 0u64..u64::MAX;
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        assert_ne!(strat.sample(&mut a), strat.sample(&mut c));
    }

    #[test]
    fn byte_any_covers_domain() {
        use crate::Strategy;
        let mut rng = crate::test_rng("bytes");
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[usize::from(crate::num::u8::ANY.sample(&mut rng))] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }
}
