//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's benchmark targets compiling and smoke-runnable
//! without network access. Under `cargo bench` (cargo passes `--bench`)
//! each benchmark body executes a handful of timed iterations and prints
//! a single mean-time line — enough to compare hot paths coarsely.
//! Under `cargo test` (no `--bench` flag) the harness exits immediately
//! so bench bodies never slow the test suite down. Statistical analysis,
//! HTML reports, and baselines need the real crate.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
    run: bool,
}

impl Criterion {
    /// Builder entry point, mirroring `Criterion::default()`.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    #[doc(hidden)]
    pub fn enable_run(mut self, run: bool) -> Self {
        self.run = run;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.effective_samples();
        if self.run {
            run_one(id, samples, &mut f);
        }
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Records the throughput unit (accepted and ignored by the stub).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.criterion.effective_samples();
        if self.criterion.run {
            let label = format!("{}/{}", self.name, id);
            run_one(&label, samples, &mut |b| f(b, input));
        }
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.criterion.effective_samples();
        if self.criterion.run {
            let label = format!("{}/{}", self.name, id);
            run_one(&label, samples, &mut f);
        }
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        total_nanos: 0,
        iters: 0,
    };
    f(&mut bencher);
    let mean = bencher.total_nanos.checked_div(bencher.iters).unwrap_or(0);
    println!("bench {label}: {mean} ns/iter (n={})", bencher.iters);
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u128,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// Identifier combining a function name and a parameter label.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Throughput annotations (accepted and ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a benchmark group, in either criterion invocation form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(run: bool) {
            let mut criterion: $crate::Criterion = $config;
            criterion = criterion.enable_run(run);
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` for a benchmark binary.
///
/// Benchmarks execute only under `cargo bench` (which passes `--bench`);
/// under `cargo test` the binary exits immediately, so the stubbed
/// benches never slow the suite.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let run = std::env::args().any(|a| a == "--bench");
            $( $group(run); )+
        }
    };
}
