//! No-op `Serialize`/`Deserialize` derives for the vendored serde stub.
//!
//! Expanding to an empty token stream is sound for a *derive* macro: the
//! annotated item itself is untouched and no trait impl is generated.
//! The `serde` helper attribute is registered so `#[serde(...)]` field
//! attributes in the workspace keep compiling.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
