//! Offline stand-in for `serde`.
//!
//! The workspace annotates its protocol and experiment types with
//! `#[derive(Serialize, Deserialize)]` so a future wire/storage layer can
//! serialize them, but nothing in-tree performs serialization yet (there
//! is no `serde_json`/`bincode` dependency). With no network access the
//! real crate cannot be fetched, so this stub keeps the annotations
//! compiling: the traits exist as markers and the derives expand to
//! nothing. When a serializer lands, replace this stub with a real
//! vendored `serde` — no source changes will be needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

pub mod de {
    //! Deserialization-side re-exports.
    pub use super::DeserializeOwned;
}
