//! Privacy under collusion: measuring Theorem 10.
//!
//! A coalition pools the secret shares its members received from a target
//! agent and runs the strongest available attack (degree resolution on
//! both the `e` and `f` channels). For every bid value the example sweeps
//! the coalition size and prints the empirically measured exposure
//! threshold next to the predicted `min(n − c − y, y + c) + 1`.
//!
//! Run with: `cargo run -p dmw-examples --bin privacy_collusion`

use dmw::collusion::{pool_and_attack, predicted_exposure_threshold, AttackOutcome};
use dmw::config::DmwConfig;
use dmw_crypto::polynomials::BidPolynomials;
use dmw_examples::{print_table, section};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let n = 10;
    let c = 2;
    let config = DmwConfig::generate(n, c, &mut rng)?;
    let zq = config.group().zq();

    section(&format!(
        "coalition attacks: n = {n}, c = {c}, W = {:?}",
        config.encoding().bid_set()
    ));

    let mut rows = Vec::new();
    for bid in config.encoding().bid_set() {
        // The target constructs its bid polynomials; coalition members pool
        // the shares the target sent them.
        let polys = BidPolynomials::generate(config.group(), config.encoding(), bid, &mut rng)?;
        let mut measured = None;
        for size in 1..n {
            let pooled: Vec<(u64, _)> = (0..size)
                .map(|k| {
                    let alpha = config.pseudonym(k);
                    (alpha, polys.share_for(&zq, alpha))
                })
                .collect();
            if let AttackOutcome::Exposed { bid: got } = pool_and_attack(&config, &pooled) {
                assert_eq!(got, bid, "attack recovered the wrong bid");
                measured = Some(size);
                break;
            }
        }
        let predicted = predicted_exposure_threshold(&config, bid).unwrap();
        rows.push(vec![
            bid.to_string(),
            predicted.to_string(),
            measured
                .map(|s| s.to_string())
                .unwrap_or_else(|| ">= n".into()),
            if measured == Some(predicted) {
                "match".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    print_table(
        &[
            "bid value",
            "predicted threshold",
            "measured threshold",
            "check",
        ],
        &rows,
    );

    println!();
    println!("reading the table:");
    println!("* a coalition strictly smaller than the threshold learns nothing (information-");
    println!("  theoretic hiding of the share scheme);");
    println!("* along the e-channel lower (better) bids need larger coalitions — the");
    println!("  'inversely proportional' remark under Theorem 10;");
    println!("* the f-channel caps protection of the very best bids at y + c + 1 members,");
    println!("  a refinement over the paper's blanket claim (see EXPERIMENTS.md).");

    Ok(())
}
