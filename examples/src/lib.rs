//! Shared helpers for the DMW example binaries: tiny table/section
//! formatting so every example prints consistently.

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Prints a markdown-style table: a header row followed by data rows,
/// with columns padded to the widest cell.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_does_not_panic() {
        super::print_table(
            &["a", "bee"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        super::section("done");
    }
}
