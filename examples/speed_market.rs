//! Speed market: the paper's future work, running.
//!
//! Section 5 names "designing distributed versions of the centralized
//! mechanism for scheduling on related machines" as future work. For the
//! fastest-takes-all rule that distributed version is a single DMW
//! auction over quantized cost-per-unit bids — this example runs it: ten
//! compute providers with private per-unit costs compete for a 500-unit
//! workload with no trusted center, and the result is checked against
//! the centralized Archer–Tardos threshold payment.
//!
//! Run with: `cargo run -p dmw-examples --bin speed_market`

use dmw::config::DmwConfig;
use dmw::related_distributed::{centralized_reference, run_related};
use dmw_examples::{print_table, section};
use dmw_mechanism::related::{archer_tardos_payment, FastestTakesAll};
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2011);
    let n = 10usize;
    let total_work = 500.0;
    let config = DmwConfig::generate(n, 2, &mut rng)?;

    // Private costs per unit of work.
    let costs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..4.0)).collect();

    section("speed market");
    println!("{n} providers bid their cost per unit for {total_work} units of work");
    let rows: Vec<Vec<String>> = costs
        .iter()
        .enumerate()
        .map(|(i, c)| vec![format!("provider {}", i + 1), format!("{c:.2}")])
        .collect();
    print_table(&["provider", "true cost / unit"], &rows);

    // The distributed auction (one DMW task auction on quantized costs).
    let outcome = run_related(&config, &costs, total_work, &mut rng)?;
    section("distributed outcome");
    println!(
        "winner: provider {} (true cost {:.2}/unit)",
        outcome.winner + 1,
        costs[outcome.winner]
    );
    println!(
        "price:  {:.2}/unit  ->  total payment {:.1}",
        outcome.price_per_unit, outcome.total_payment
    );
    println!(
        "profit: {:.1} (payment − true cost of the work)",
        outcome.total_payment - costs[outcome.winner] * total_work
    );
    println!(
        "network: {} messages, {} bytes — one auction, Θ(n²)",
        outcome.run.network.point_to_point, outcome.run.network.bytes
    );

    // Cross-checks: the quantized centralized reference and the exact
    // Archer–Tardos threshold payment on the continuous costs.
    section("cross-checks");
    let (ref_winner, _) = centralized_reference(&costs, config.encoding().w_max() as usize)?;
    println!(
        "centralized quantized reference winner: provider {}",
        ref_winner + 1
    );
    // The continuous mechanism may pick a different provider when two
    // costs share a quantization level; compare against its argmin.
    let continuous_winner = (0..n)
        .min_by(|&a, &b| costs[a].partial_cmp(&costs[b]).expect("finite"))
        .expect("n >= 2");
    let at_payment = archer_tardos_payment(
        &FastestTakesAll,
        continuous_winner,
        &costs,
        total_work,
        costs.iter().cloned().fold(0.0, f64::max) * 50.0,
        50_000,
    )?;
    println!(
        "continuous winner: provider {} — Archer–Tardos threshold payment {:.1}",
        continuous_winner + 1,
        at_payment
    );
    println!(
        "quantized auction paid {:.1}; winner agreement and the payment gap are both \
         quantization effects — sweep with `reproduce ablation-quantize`",
        outcome.total_payment
    );

    Ok(())
}
