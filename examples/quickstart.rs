//! Quickstart: one end-to-end DMW run, printed step by step.
//!
//! Reproduces the flow of the paper's Fig. 1 (bids in, schedule and
//! payments out) with the distributed mechanism doing the computing: five
//! agents schedule three tasks without any trusted center, and the result
//! is checked against the centralized MinWork mechanism it implements.
//!
//! Run with: `cargo run -p dmw-examples --bin quickstart`

use dmw::config::DmwConfig;
use dmw::runner::{utilities, DmwRunner};
use dmw::trace::kind_histogram;
use dmw_examples::{print_table, section};
use dmw_mechanism::{AgentId, ExecutionTimes, MinWork, TaskId, TieBreak};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2005);

    // Phase I — Initialization: publish p, q, z1, z2, c, pseudonyms and W.
    let config = DmwConfig::generate(5, 1, &mut rng)?;
    section("published parameters (Phase I)");
    println!(
        "p  = {} ({} bits)",
        config.group().p(),
        config.group().zp().bits()
    );
    println!(
        "q  = {} (q | p-1: {})",
        config.group().q(),
        (config.group().p() - 1) % config.group().q() == 0
    );
    println!("z1 = {}, z2 = {}", config.group().z1(), config.group().z2());
    println!("c  = {} tolerated faults", config.encoding().faults());
    println!("W  = {:?} (discrete bids)", config.encoding().bid_set());
    println!("A  = {:?} (pseudonyms)", config.pseudonyms());

    // The agents' true execution times, doubling as honest bids.
    let truth = ExecutionTimes::from_rows(vec![
        vec![2, 3, 1],
        vec![1, 3, 3],
        vec![3, 1, 2],
        vec![2, 2, 3],
        vec![3, 3, 3],
    ])?;
    section("bid matrix (agents x tasks)");
    for i in 0..truth.agents() {
        println!("{}: {:?}", AgentId(i), truth.agent_row(AgentId(i)));
    }

    // Run the distributed mechanism.
    let run = DmwRunner::new(config).run_honest(&truth, &mut rng)?;
    let outcome = run.completed()?;

    section("distributed outcome (Phases II-IV)");
    print!("{}", outcome.schedule);
    let rows: Vec<Vec<String>> = (0..truth.tasks())
        .map(|j| {
            vec![
                TaskId(j).to_string(),
                outcome.schedule.agent_of(TaskId(j)).unwrap().to_string(),
                outcome.first_prices[j].to_string(),
                outcome.second_prices[j].to_string(),
            ]
        })
        .collect();
    print_table(
        &["task", "winner", "first price", "second price (paid)"],
        &rows,
    );

    section("payments and utilities");
    let us = utilities(&run, &truth);
    let rows: Vec<Vec<String>> = (0..truth.agents())
        .map(|i| {
            vec![
                AgentId(i).to_string(),
                outcome.payments[i].to_string(),
                us[i].to_string(),
            ]
        })
        .collect();
    print_table(&["agent", "payment", "utility"], &rows);

    // Cross-check against the centralized mechanism DMW implements.
    let centralized = MinWork::new(TieBreak::LowestIndex).run(&truth)?;
    section("equivalence with centralized MinWork");
    println!(
        "schedules match:  {}",
        centralized.schedule == outcome.schedule
    );
    println!(
        "payments match:   {}",
        centralized.payments == outcome.payments
    );

    section("network traffic (Fig. 2 summary)");
    println!(
        "point-to-point messages: {}, bytes: {}, rounds: {}",
        run.network.point_to_point, run.network.bytes, run.network.rounds
    );
    let rows: Vec<Vec<String>> = kind_histogram(&run.trace)
        .into_iter()
        .map(|(kind, count)| vec![kind.to_string(), count.to_string()])
        .collect();
    print_table(&["message kind", "count"], &rows);

    Ok(())
}
