//! Centralized MinWork vs Distributed MinWork, side by side.
//!
//! Verifies outcome equivalence on random instances and contrasts the
//! communication bill — the `Θ(mn)` vs `Θ(mn²)` gap of the paper's
//! Table 1 — at a handful of sizes.
//!
//! Run with: `cargo run -p dmw-examples --bin centralized_vs_distributed`

use dmw::config::DmwConfig;
use dmw::runner::DmwRunner;
use dmw_examples::{print_table, section};
use dmw_mechanism::{MinWork, TieBreak};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);

    section("outcome equivalence on random instances");
    let mut checked = 0;
    for trial in 0..10 {
        let n = 4 + (trial % 3);
        let m = 1 + (trial % 4);
        let config = DmwConfig::generate(n, 1, &mut rng)?;
        let bids =
            dmw_mechanism::generators::uniform(n, m, 1..=config.encoding().w_max(), &mut rng)?;
        let centralized = MinWork::new(TieBreak::LowestIndex).run(&bids)?;
        let run = DmwRunner::new(config).run_honest(&bids, &mut rng)?;
        let distributed = run.completed()?;
        assert_eq!(
            centralized.schedule, distributed.schedule,
            "schedule mismatch"
        );
        assert_eq!(
            centralized.payments, distributed.payments,
            "payment mismatch"
        );
        checked += 1;
    }
    println!("{checked}/10 random instances: schedules and payments identical");

    section("communication bill (Table 1 preview)");
    // Centralized: each agent sends one bid vector to the center and the
    // center replies with the outcome — Theta(mn) point-to-point messages.
    // Distributed: measured from the simulated network.
    let mut rows = Vec::new();
    for &(n, m) in &[(4usize, 2usize), (8, 2), (8, 8), (16, 4)] {
        let config = DmwConfig::generate(n, 1, &mut rng)?;
        let bids =
            dmw_mechanism::generators::uniform(n, m, 1..=config.encoding().w_max(), &mut rng)?;
        let run = DmwRunner::new(config).run_honest(&bids, &mut rng)?;
        run.completed()?;
        let centralized_msgs = (m * n + n) as u64; // bids in, outcome out
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            centralized_msgs.to_string(),
            run.network.point_to_point.to_string(),
            format!(
                "{:.1}",
                run.network.point_to_point as f64 / centralized_msgs as f64
            ),
        ]);
    }
    print_table(
        &[
            "n",
            "m",
            "MinWork msgs (Θ(mn))",
            "DMW msgs (Θ(mn²))",
            "ratio",
        ],
        &rows,
    );
    println!("\nthe ratio grows linearly with n: the factor-n price of removing the");
    println!("trusted center (full sweep: `cargo run -p dmw-bench --bin reproduce table1-comm`)");

    Ok(())
}
