//! Deviation attack demo: why cheating DMW does not pay.
//!
//! Runs the full protocol-deviation catalogue of Theorems 4 and 8 with one
//! strategic agent and prints, for each deviation, what the honest agents
//! detected and how the deviator's utility compares with simply following
//! the suggested strategy (faithfulness, Theorem 5).
//!
//! Run with: `cargo run -p dmw-examples --bin deviation_attack`

use dmw::audit::{faithfulness_table, voluntary_participation_table};
use dmw::config::DmwConfig;
use dmw_examples::{print_table, section};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(128);
    let n = 6;
    let c = 2;
    let config = DmwConfig::generate(n, c, &mut rng)?;
    let truth = dmw_mechanism::generators::uniform(n, 3, 1..=config.encoding().w_max(), &mut rng)?;
    let deviator = 1usize;

    section(&format!(
        "faithfulness: agent {} deviates, {} agents, c = {}",
        deviator + 1,
        n,
        c
    ));
    let rows = faithfulness_table(&config, &truth, deviator, &mut rng)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.behavior.to_string(),
                if r.completed {
                    "completed".into()
                } else {
                    "ABORTED".into()
                },
                r.abort.clone().unwrap_or_else(|| "-".into()),
                r.suggested_utility.to_string(),
                r.deviating_utility.to_string(),
                if r.faithful() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    print_table(
        &[
            "deviation",
            "run",
            "detected as",
            "U(suggested)",
            "U(deviation)",
            "faithful?",
        ],
        &table,
    );
    let all_faithful = rows.iter().all(|r| r.faithful());
    println!("\nno deviation beats the suggested strategy: {all_faithful}");

    section("strong voluntary participation: compliant agents never lose");
    let rows = voluntary_participation_table(&config, &truth, deviator, &mut rng)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.behavior.to_string(),
                if r.completed {
                    "completed".into()
                } else {
                    "aborted".into()
                },
                r.min_compliant_utility.to_string(),
            ]
        })
        .collect();
    print_table(
        &["deviation by peer", "run", "min compliant utility"],
        &table,
    );
    let all_nonneg = rows.iter().all(|r| r.min_compliant_utility >= 0);
    println!("\ncompliant agents always end with utility >= 0: {all_nonneg}");

    Ok(())
}
