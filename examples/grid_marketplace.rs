//! Grid marketplace: the workload the paper's introduction motivates.
//!
//! "The Internet resources are controlled and operated by a multitude of
//! self-interested, independent parties" (Section 1). This example models
//! a small computational grid: eight autonomous compute providers with
//! heterogeneous (continuous) speeds auction off twelve batch jobs using
//! DMW — no trusted broker anywhere.
//!
//! Continuous execution-time estimates are quantized onto DMW's discrete
//! bid set `W` (a requirement of the degree encoding), the distributed
//! auction runs, and payments are mapped back to time units. The example
//! reports the achieved makespan against the greedy baseline and the
//! quantization distortion.
//!
//! Run with: `cargo run -p dmw-examples --bin grid_marketplace`

use dmw::config::DmwConfig;
use dmw::runner::DmwRunner;
use dmw_examples::{print_table, section};
use dmw_mechanism::optimal::greedy_makespan;
use dmw_mechanism::quantize::Quantizer;
use dmw_mechanism::{AgentId, TaskId};
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let providers = 8usize;
    let jobs = 12usize;
    let faults = 1usize;

    // Continuous per-provider speeds and per-job sizes -> time estimates.
    let speeds: Vec<f64> = (0..providers).map(|_| rng.gen_range(1.0..4.0)).collect();
    let sizes: Vec<f64> = (0..jobs).map(|_| rng.gen_range(10.0..100.0)).collect();
    let times: Vec<Vec<f64>> = speeds
        .iter()
        .map(|&s| sizes.iter().map(|&r| r / s).collect())
        .collect();

    section("grid marketplace");
    println!("{providers} providers, {jobs} jobs, c = {faults} tolerated faults");
    println!(
        "provider speeds: {:?}",
        speeds
            .iter()
            .map(|s| (s * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );

    // Quantize continuous estimates onto the discrete bid set W.
    let config = DmwConfig::generate(providers, faults, &mut rng)?;
    let levels = config.encoding().w_max() as usize;
    let quantizer = Quantizer::fit(&times, levels)?;
    let bids = quantizer.quantize(&times)?;
    section("quantization");
    println!(
        "bid levels: {levels} (W = 1..={})",
        config.encoding().w_max()
    );
    println!(
        "mean absolute relative distortion: {:.2}%",
        quantizer.distortion(&times) * 100.0
    );

    // Run the distributed auction for all jobs at once.
    let run = DmwRunner::new(config).run_honest(&bids, &mut rng)?;
    let outcome = run.completed()?;

    section("job assignments");
    let rows: Vec<Vec<String>> = (0..jobs)
        .map(|j| {
            let winner = outcome.schedule.agent_of(TaskId(j)).unwrap();
            vec![
                format!("job {:>2}", j + 1),
                format!("{:.1}", sizes[j]),
                winner.to_string(),
                format!("{:.1}", times[winner.0][j]),
                format!("{:.1}", quantizer.value_of(outcome.second_prices[j])),
            ]
        })
        .collect();
    print_table(
        &[
            "job",
            "size",
            "provider",
            "est. time",
            "payment (time units)",
        ],
        &rows,
    );

    // Provider earnings in time units.
    section("provider earnings");
    let rows: Vec<Vec<String>> = (0..providers)
        .map(|i| {
            let earned: f64 = (0..jobs)
                .filter(|&j| outcome.schedule.agent_of(TaskId(j)) == Some(AgentId(i)))
                .map(|j| quantizer.value_of(outcome.second_prices[j]))
                .sum();
            let spent: f64 = (0..jobs)
                .filter(|&j| outcome.schedule.agent_of(TaskId(j)) == Some(AgentId(i)))
                .map(|j| times[i][j])
                .sum();
            vec![
                AgentId(i).to_string(),
                outcome.schedule.tasks_of(AgentId(i)).len().to_string(),
                format!("{:.1}", earned),
                format!("{:.1}", spent),
                format!("{:+.1}", earned - spent),
            ]
        })
        .collect();
    print_table(&["provider", "jobs", "earned", "cost", "profit"], &rows);

    // Makespan achieved vs the greedy engineering baseline (makespan is
    // only n-approximated by MinWork: it buys truthfulness, not optimal
    // load balance).
    let mw_makespan: f64 = (0..providers)
        .map(|i| {
            (0..jobs)
                .filter(|&j| outcome.schedule.agent_of(TaskId(j)) == Some(AgentId(i)))
                .map(|j| times[i][j])
                .sum::<f64>()
        })
        .fold(0.0, f64::max);
    let greedy = greedy_makespan(&bids)?;
    let greedy_makespan_cont: f64 = (0..providers)
        .map(|i| {
            (0..jobs)
                .filter(|&j| greedy.schedule.agent_of(TaskId(j)) == Some(AgentId(i)))
                .map(|j| times[i][j])
                .sum::<f64>()
        })
        .fold(0.0, f64::max);
    section("makespan");
    println!("DMW (truthful, decentralized): {mw_makespan:.1} time units");
    println!("greedy list scheduling (needs trusted broker): {greedy_makespan_cont:.1} time units");
    println!(
        "price of truthful decentralization: {:.2}x",
        mw_makespan / greedy_makespan_cont
    );
    println!(
        "\nnetwork: {} messages, {} bytes over {} rounds",
        run.network.point_to_point, run.network.bytes, run.network.rounds
    );

    Ok(())
}
