//! Shared fixtures for the cross-crate integration tests.

use dmw::config::DmwConfig;
use dmw_mechanism::ExecutionTimes;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG for a test case.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Generates a protocol configuration with default group sizes.
///
/// # Panics
///
/// Panics on invalid `(n, c)` — tests pass valid shapes.
pub fn config(n: usize, c: usize, rng: &mut StdRng) -> DmwConfig {
    DmwConfig::generate(n, c, rng).expect("valid test configuration")
}

/// A uniform random bid matrix within the configuration's bid set.
///
/// # Panics
///
/// Panics on invalid shapes — tests pass valid shapes.
pub fn random_bids(config: &DmwConfig, m: usize, rng: &mut StdRng) -> ExecutionTimes {
    dmw_mechanism::generators::uniform(config.agents(), m, 1..=config.encoding().w_max(), rng)
        .expect("valid test instance")
}

/// The centralized MinWork reference outcome with DMW's tie-break rule.
///
/// # Panics
///
/// Panics on shape errors — tests pass valid shapes.
pub fn centralized_reference(bids: &ExecutionTimes) -> dmw_mechanism::Outcome {
    dmw_mechanism::MinWork::new(dmw_mechanism::TieBreak::LowestIndex)
        .run(bids)
        .expect("valid matrix")
}
