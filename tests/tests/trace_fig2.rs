//! Message-trace conformance with the paper's Fig. 2 (the F2 experiment):
//! phases appear in the figure's order, share bundles travel over private
//! point-to-point channels (solid arrows), everything else is published
//! (dashed arrows), and the per-phase message counts match the closed
//! forms behind Theorem 11.

use dmw::runner::DmwRunner;
use dmw::trace::{kind_histogram, render_sequence_chart, PHASE_ORDER};
use integration_tests::{config, random_bids, rng};

fn honest_run(n: usize, c: usize, m: usize, seed: u64) -> dmw::DmwRun {
    let mut r = rng(seed);
    let cfg = config(n, c, &mut r);
    let bids = random_bids(&cfg, m, &mut r);
    DmwRunner::new(cfg).run_honest(&bids, &mut r).unwrap()
}

#[test]
fn phases_appear_in_figure_order() {
    let run = honest_run(5, 1, 2, 3000);
    assert!(run.is_completed());
    let mut first_round_of: Vec<(usize, u64)> = Vec::new();
    for (pos, kind) in PHASE_ORDER.iter().enumerate() {
        let round = run
            .trace
            .iter()
            .filter(|e| e.kind == *kind)
            .map(|e| e.round)
            .min()
            .unwrap_or_else(|| panic!("phase {kind} missing from trace"));
        first_round_of.push((pos, round));
    }
    // Later phases never start before earlier phases.
    for w in first_round_of.windows(2) {
        assert!(w[0].1 <= w[1].1, "phase order violated: {first_round_of:?}");
    }
}

#[test]
fn solid_and_dashed_arrows_match_the_figure() {
    let run = honest_run(5, 1, 1, 3001);
    for e in &run.trace {
        if e.kind == "shares" {
            assert!(
                !e.is_broadcast(),
                "shares are private point-to-point messages"
            );
        } else {
            assert!(e.is_broadcast(), "{} must be published", e.kind);
        }
    }
}

#[test]
fn per_phase_counts_match_the_closed_forms() {
    let n = 6usize;
    let m = 3usize;
    let c = 1usize;
    let run = honest_run(n, c, m, 3002);
    let outcome = run.completed().unwrap();
    let hist: std::collections::HashMap<&str, usize> =
        kind_histogram(&run.trace).into_iter().collect();
    // Bidding: every agent sends a bundle to each of the n-1 peers, per
    // task, and one commitment broadcast per task.
    assert_eq!(hist["shares"], m * n * (n - 1));
    assert_eq!(hist["commitments"], m * n);
    // Allocation: one lambda broadcast per agent per task, one excluded
    // broadcast per agent per task.
    assert_eq!(hist["lambda-psi"], m * n);
    assert_eq!(hist["excluded-lambda-psi"], m * n);
    // Disclosure: min(winner_points(y*) + c, n) disclosers per task.
    let expected_disclosures: usize = outcome
        .first_prices
        .iter()
        .map(|&y| (y as usize + c + 1 + c).min(n))
        .sum();
    assert_eq!(hist["f-disclosure"], expected_disclosures);
    // Payments: one claim broadcast per agent, once.
    assert_eq!(hist["payment-claim"], n);
}

#[test]
fn network_point_to_point_totals_are_exact() {
    // Broadcast = n - 1 unicasts (Theorem 11's accounting), so the total
    // traffic follows exactly from the histogram.
    let n = 5usize;
    let m = 2usize;
    let run = honest_run(n, 1, m, 3003);
    let hist: std::collections::HashMap<&str, usize> =
        kind_histogram(&run.trace).into_iter().collect();
    let broadcast_events: usize = hist
        .iter()
        .filter(|(k, _)| **k != "shares")
        .map(|(_, v)| *v)
        .sum();
    let expected = hist["shares"] + broadcast_events * (n - 1);
    assert_eq!(run.network.point_to_point, expected as u64);
    assert_eq!(run.network.broadcasts, broadcast_events as u64);
    assert_eq!(run.network.dropped, 0);
    assert_eq!(run.network.in_flight(), 0);
}

#[test]
fn sequence_chart_renders_the_whole_protocol() {
    let run = honest_run(4, 0, 1, 3004);
    let chart = render_sequence_chart(&run.trace);
    for kind in PHASE_ORDER {
        assert!(chart.contains(kind), "chart must show {kind}");
    }
    assert!(chart.contains("-->"), "solid arrows present");
    assert!(chart.contains("==>*"), "dashed arrows present");
    assert!(chart.contains("── round 0 ──"));
}
