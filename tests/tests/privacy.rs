//! Privacy under collusion across configurations (the THM-priv
//! experiment): measured exposure thresholds equal the predicted
//! `min(n − c − y, y + c) + 1` for every bid, every `(n, c)`.

use dmw::collusion::{
    e_channel_threshold, pool_and_attack, predicted_exposure_threshold, AttackOutcome,
};
use dmw_crypto::polynomials::BidPolynomials;
use integration_tests::{config, rng};

fn measured_threshold(cfg: &dmw::DmwConfig, bid: u64, seed: u64) -> Option<usize> {
    let mut r = rng(seed);
    let zq = cfg.group().zq();
    let polys = BidPolynomials::generate(cfg.group(), cfg.encoding(), bid, &mut r).unwrap();
    for size in 1..=cfg.agents() {
        let pooled: Vec<(u64, _)> = (0..size)
            .map(|k| {
                let alpha = cfg.pseudonym(k);
                (alpha, polys.share_for(&zq, alpha))
            })
            .collect();
        if let AttackOutcome::Exposed { bid: got } = pool_and_attack(cfg, &pooled) {
            assert_eq!(got, bid, "attack must recover the true bid");
            return Some(size);
        }
    }
    None
}

#[test]
fn measured_thresholds_match_predictions() {
    let mut r = rng(4000);
    for (n, c) in [(6usize, 1usize), (8, 2), (10, 3), (5, 0)] {
        let cfg = config(n, c, &mut r);
        for bid in cfg.encoding().bid_set() {
            let predicted = predicted_exposure_threshold(&cfg, bid).unwrap();
            let measured = measured_threshold(&cfg, bid, 4000 + bid).unwrap();
            assert_eq!(measured, predicted, "n={n} c={c} bid={bid}");
        }
    }
}

#[test]
fn no_single_agent_ever_exposes_a_bid() {
    let mut r = rng(4001);
    let cfg = config(9, 2, &mut r);
    for bid in cfg.encoding().bid_set() {
        assert!(
            measured_threshold(&cfg, bid, 4100 + bid).unwrap() >= 2,
            "bid {bid} exposed by a single share"
        );
    }
}

#[test]
fn e_channel_matches_the_inverse_proportionality_remark() {
    // Higher bids are recoverable from fewer e-shares; the winner's
    // (lowest) bid needs the most. This is the exact sense of the paper's
    // remark under Theorem 10.
    let mut r = rng(4002);
    let cfg = config(10, 2, &mut r);
    let thresholds: Vec<usize> = cfg
        .encoding()
        .bid_set()
        .iter()
        .map(|&b| e_channel_threshold(&cfg, b).unwrap())
        .collect();
    assert!(thresholds.windows(2).all(|w| w[0] > w[1]));
}

#[test]
fn losing_bids_stay_hidden_during_an_actual_protocol_run() {
    // End-to-end: after a complete honest run, pool what a small coalition
    // actually received and verify the low (well-protected) bids cannot be
    // recovered.
    use dmw::runner::DmwRunner;
    use integration_tests::random_bids;

    let mut r = rng(4003);
    let n = 8;
    let c = 2;
    let cfg = config(n, c, &mut r);
    let bids = random_bids(&cfg, 1, &mut r);
    let run = DmwRunner::new(cfg.clone())
        .run_honest(&bids, &mut r)
        .unwrap();
    assert!(run.is_completed());
    // A coalition of size c pools shares against a target bidding 2
    // (threshold is min(n-c-y, y+c)+1 = min(4, 4)+1 = 5 > c = 2).
    let target_bid = 2u64;
    let zq = cfg.group().zq();
    let polys = BidPolynomials::generate(cfg.group(), cfg.encoding(), target_bid, &mut r).unwrap();
    let pooled: Vec<(u64, _)> = (0..c)
        .map(|k| {
            let alpha = cfg.pseudonym(k);
            (alpha, polys.share_for(&zq, alpha))
        })
        .collect();
    assert_eq!(pool_and_attack(&cfg, &pooled), AttackOutcome::Hidden);
}
