//! Privacy under collusion across configurations (the THM-priv
//! experiment): measured exposure thresholds equal the predicted
//! `min(n − c − y, y + c) + 1` for every bid, every `(n, c)`.

use dmw::collusion::{
    e_channel_threshold, pool_and_attack, predicted_exposure_threshold, AttackOutcome,
};
use dmw_crypto::polynomials::BidPolynomials;
use integration_tests::{config, rng};

fn measured_threshold(cfg: &dmw::DmwConfig, bid: u64, seed: u64) -> Option<usize> {
    let mut r = rng(seed);
    let zq = cfg.group().zq();
    let polys = BidPolynomials::generate(cfg.group(), cfg.encoding(), bid, &mut r).unwrap();
    for size in 1..=cfg.agents() {
        let pooled: Vec<(u64, _)> = (0..size)
            .map(|k| {
                let alpha = cfg.pseudonym(k);
                (alpha, polys.share_for(&zq, alpha))
            })
            .collect();
        if let AttackOutcome::Exposed { bid: got } = pool_and_attack(cfg, &pooled) {
            assert_eq!(got, bid, "attack must recover the true bid");
            return Some(size);
        }
    }
    None
}

#[test]
fn measured_thresholds_match_predictions() {
    let mut r = rng(4000);
    for (n, c) in [(6usize, 1usize), (8, 2), (10, 3), (5, 0)] {
        let cfg = config(n, c, &mut r);
        for bid in cfg.encoding().bid_set() {
            let predicted = predicted_exposure_threshold(&cfg, bid).unwrap();
            let measured = measured_threshold(&cfg, bid, 4000 + bid).unwrap();
            assert_eq!(measured, predicted, "n={n} c={c} bid={bid}");
        }
    }
}

#[test]
fn no_single_agent_ever_exposes_a_bid() {
    let mut r = rng(4001);
    let cfg = config(9, 2, &mut r);
    for bid in cfg.encoding().bid_set() {
        assert!(
            measured_threshold(&cfg, bid, 4100 + bid).unwrap() >= 2,
            "bid {bid} exposed by a single share"
        );
    }
}

#[test]
fn e_channel_matches_the_inverse_proportionality_remark() {
    // Higher bids are recoverable from fewer e-shares; the winner's
    // (lowest) bid needs the most. This is the exact sense of the paper's
    // remark under Theorem 10.
    let mut r = rng(4002);
    let cfg = config(10, 2, &mut r);
    let thresholds: Vec<usize> = cfg
        .encoding()
        .bid_set()
        .iter()
        .map(|&b| e_channel_threshold(&cfg, b).unwrap())
        .collect();
    assert!(thresholds.windows(2).all(|w| w[0] > w[1]));
}

#[test]
fn losing_bids_stay_hidden_during_an_actual_protocol_run() {
    // End-to-end: after a complete honest run, pool what a small coalition
    // actually received and verify the low (well-protected) bids cannot be
    // recovered.
    use dmw::runner::DmwRunner;
    use integration_tests::random_bids;

    let mut r = rng(4003);
    let n = 8;
    let c = 2;
    let cfg = config(n, c, &mut r);
    let bids = random_bids(&cfg, 1, &mut r);
    let run = DmwRunner::new(cfg.clone())
        .run_honest(&bids, &mut r)
        .unwrap();
    assert!(run.is_completed());
    // A coalition of size c pools shares against a target bidding 2
    // (threshold is min(n-c-y, y+c)+1 = min(4, 4)+1 = 5 > c = 2).
    let target_bid = 2u64;
    let zq = cfg.group().zq();
    let polys = BidPolynomials::generate(cfg.group(), cfg.encoding(), target_bid, &mut r).unwrap();
    let pooled: Vec<(u64, _)> = (0..c)
        .map(|k| {
            let alpha = cfg.pseudonym(k);
            (alpha, polys.share_for(&zq, alpha))
        })
        .collect();
    assert_eq!(pool_and_attack(&cfg, &pooled), AttackOutcome::Hidden);
}

// ---------------------------------------------------------------------
// Runtime counterpart of dmw-lint rule L9: sweep an actual transcript.
// ---------------------------------------------------------------------

mod transcript_sweep {
    use dmw::messages::Body;
    use dmw::runner::DmwRunner;
    use dmw::{Behavior, DmwConfig};
    use dmw_obs::MetricsSnapshot;
    use dmw_simnet::{Delivered, FaultPlan, LockstepTransport, NetworkStats, NodeId, Transport};
    use integration_tests::{random_bids, rng};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Wraps a transport and records every payload the protocol hands to
    /// the wire, before any delivery/fault processing — exactly the view
    /// an eavesdropper on all links would have.
    struct CapturingTransport<T> {
        inner: T,
        captured: Rc<RefCell<Vec<Body>>>,
    }

    impl<T: Transport<Body>> Transport<Body> for CapturingTransport<T> {
        fn nodes(&self) -> usize {
            self.inner.nodes()
        }
        fn send(&mut self, from: NodeId, to: NodeId, payload: Body) {
            self.captured.borrow_mut().push(payload.clone());
            self.inner.send(from, to, payload);
        }
        fn broadcast(&mut self, from: NodeId, payload: Body) {
            self.captured.borrow_mut().push(payload.clone());
            self.inner.broadcast(from, payload);
        }
        fn take_inbox(&mut self, node: NodeId) -> Vec<Delivered<Body>> {
            self.inner.take_inbox(node)
        }
        fn step(&mut self) -> u64 {
            self.inner.step()
        }
        fn round(&self) -> u64 {
            self.inner.round()
        }
        fn stats(&self) -> &NetworkStats {
            self.inner.stats()
        }
        fn metrics(&self) -> &MetricsSnapshot {
            self.inner.metrics()
        }
        fn faults(&self) -> &FaultPlan {
            self.inner.faults()
        }
        fn is_quiescent(&self) -> bool {
            self.inner.is_quiescent()
        }
    }

    /// Unwraps `Sealed`/`Batch` containers down to protocol leaves.
    fn leaves<'a>(body: &'a Body, out: &mut Vec<&'a Body>) {
        match body {
            Body::Batch(items) => items.iter().for_each(|b| leaves(b, out)),
            Body::Sealed { inner, .. } => leaves(inner, out),
            other => out.push(other),
        }
    }

    /// Every field-element word a leaf message carries. `PaymentClaim`
    /// is deliberately absent: payments are public by the paper's Phase
    /// IV design, and they *do* contain the second price in bid units.
    fn crypto_words(body: &Body) -> Vec<u64> {
        match body {
            Body::Shares { bundle, .. } => vec![bundle.e, bundle.f, bundle.g, bundle.h],
            Body::Commit { commitments, .. } => {
                [commitments.o(), commitments.q(), commitments.r()].concat()
            }
            Body::Lambda { pair, .. } | Body::Excluded { pair, .. } => {
                vec![pair.lambda, pair.psi]
            }
            Body::Disclose { f_values, .. } => f_values.clone(),
            Body::WinnerClaim { points, .. } => {
                points.iter().flat_map(|&(_, f, h)| [f, h]).collect()
            }
            _ => Vec::new(),
        }
    }

    fn is_crypto_bearing(body: &Body) -> bool {
        matches!(
            body,
            Body::Shares { .. }
                | Body::Commit { .. }
                | Body::Lambda { .. }
                | Body::Disclose { .. }
                | Body::WinnerClaim { .. }
                | Body::Excluded { .. }
        )
    }

    /// The raw-bid sweep itself: no crypto-bearing message may carry a
    /// word equal to a raw bid, and no crypto-bearing message's wire
    /// bytes may contain a bid's u64 encoding as a subsequence.
    fn assert_no_raw_bid_on_the_wire(captured: &[Body], bids: &[u64]) {
        let mut saw_crypto = false;
        for top in captured {
            let mut flat = Vec::new();
            leaves(top, &mut flat);
            for leaf in flat {
                if !is_crypto_bearing(leaf) {
                    continue;
                }
                saw_crypto = true;
                for word in crypto_words(leaf) {
                    assert!(
                        !bids.contains(&word),
                        "{} message carries raw bid {word} as a field word",
                        leaf.kind()
                    );
                }
                let bytes = leaf.encode();
                for &bid in bids {
                    let pat = bid.to_le_bytes();
                    assert!(
                        !bytes.windows(pat.len()).any(|w| w == pat),
                        "{} message contains the byte encoding of raw bid {bid}",
                        leaf.kind()
                    );
                }
            }
        }
        assert!(saw_crypto, "transcript captured no crypto-bearing messages");
    }

    fn run_and_capture(
        decorate: impl FnOnce(DmwRunner) -> DmwRunner,
        seed: u64,
    ) -> (Vec<Body>, Vec<u64>) {
        // A 30-bit subgroup keeps field words far from the tiny bid
        // range, so a coincidental word == bid collision is ~2^-30 per
        // word (and the seed is fixed, so a passing sweep stays passing).
        let mut r = rng(seed);
        let cfg = DmwConfig::generate_with_bits(8, 2, 48, 30, &mut r).unwrap();
        let runner = decorate(DmwRunner::new(cfg.clone()));
        let bids = random_bids(&cfg, 1, &mut r);
        let captured = Rc::new(RefCell::new(Vec::new()));
        let transport = CapturingTransport {
            inner: LockstepTransport::new(cfg.agents()),
            captured: Rc::clone(&captured),
        };
        let n = cfg.agents();
        let run = runner
            .run_on(&bids, &vec![Behavior::Suggested; n], transport, &mut r)
            .unwrap();
        assert!(run.is_completed(), "honest run must complete");
        let mut distinct: Vec<u64> = (0..n)
            .flat_map(|i| bids.agent_row(dmw_mechanism::AgentId(i)).to_vec())
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        let bodies = Rc::try_unwrap(captured).unwrap().into_inner();
        (bodies, distinct)
    }

    #[test]
    fn honest_transcript_never_carries_a_raw_bid() {
        let (captured, bids) = run_and_capture(|r| r, 4200);
        assert_no_raw_bid_on_the_wire(&captured, &bids);
    }

    #[test]
    fn recovery_transcript_with_batching_never_carries_a_raw_bid() {
        // Recovery seals every payload and batching nests Batch inside
        // Sealed — the sweep must see through both container layers.
        let (captured, bids) = run_and_capture(|r| r.with_recovery().with_batching(true), 4201);
        let kinds: std::collections::BTreeSet<&str> = captured.iter().map(Body::kind).collect();
        assert!(kinds.contains("sealed"), "recovery run must seal payloads");
        assert_no_raw_bid_on_the_wire(&captured, &bids);
    }
}
