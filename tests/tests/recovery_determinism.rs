//! Chaos determinism suite for the reliable-delivery / graceful-
//! degradation layer: a fixed seed corpus crossed with the chaos fault
//! matrix (periodic drops, seeded probabilistic loss, transient
//! partitions) must produce bit-identical outcomes, metrics snapshots
//! and retransmit counts at every batch width, and identically between
//! the lockstep transport and a synchronous delay transport. Honest
//! runs under repairable loss must match the lossless allocation and
//! payments exactly, and the resilience threshold `c` must separate
//! graceful degradation from the abort path.

use dmw::batch::{aggregate_metrics, BatchRunner, TrialSpec};
use dmw::error::AbortReason;
use dmw::reliable::RetryPolicy;
use dmw::runner::{utilities, DmwRunner, RunResult};
use dmw::Behavior;
use dmw_mechanism::{AgentId, ExecutionTimes, TaskId};
use dmw_simnet::{DelayProfile, DelayTransport, FaultPlan, NodeId};
use integration_tests::{config, random_bids, rng};

const SEED: u64 = 20050717;
const WIDTHS: [usize; 3] = [1, 2, 8];

/// The chaos schedules every determinism test sweeps. Transient
/// windows stay far shorter than the retry policy's repair horizon, so
/// every loss here is repairable and never triggers a spurious
/// exclusion.
fn chaos_plans(n: usize) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("periodic", FaultPlan::none(n).drop_every(3)),
        (
            "probabilistic",
            FaultPlan::none(n).drop_prob(0.10, 0xC0FFEE),
        ),
        (
            "transient",
            FaultPlan::none(n)
                .drop_link_between(NodeId(0), NodeId(2), 1, 3)
                .drop_link_between(NodeId(3), NodeId(1), 2, 4),
        ),
    ]
}

#[test]
fn repairable_chaos_reproduces_the_lossless_outcome() {
    let mut r = rng(SEED);
    let cfg = config(6, 1, &mut r);
    let bids = random_bids(&cfg, 3, &mut r);
    let behaviors = vec![Behavior::Suggested; 6];
    let runner = DmwRunner::new(cfg).with_recovery();

    let baseline = runner
        .run(&bids, &behaviors, FaultPlan::none(6), &mut rng(SEED + 1))
        .expect("valid lossless run");
    assert!(baseline.is_completed(), "lossless recovery run completes");
    assert_eq!(baseline.metrics.counter_total("retransmissions"), 0);

    for (case, faults) in chaos_plans(6) {
        let lossy = runner
            .run(&bids, &behaviors, faults, &mut rng(SEED + 1))
            .expect("valid chaos run");
        assert!(lossy.is_completed(), "{case}: repaired run completes");
        assert_eq!(
            lossy.completed().unwrap(),
            baseline.completed().unwrap(),
            "{case}: allocation and payments must match the lossless run"
        );
        assert!(
            lossy.metrics.counter_total("retransmissions") > 0,
            "{case}: the repair must be visible in the metrics"
        );
        // A pathological drop/backoff alignment may exhaust a single
        // retry budget (e.g. a run of lost acks whose payload already
        // arrived), but a lone suspicion must never win the exclusion
        // vote: the run stays a clean completion, never degrades.
        assert!(
            !lossy.is_degraded(),
            "{case}: repairable loss must not degrade the run"
        );
    }
}

#[test]
fn chaos_outcomes_are_bit_identical_across_widths() {
    let mut r = rng(SEED ^ 0xD15);
    let cfg = config(6, 1, &mut r);
    let runner = DmwRunner::new(cfg).with_recovery();
    let n = runner.config().agents();
    let plans = chaos_plans(n);
    let trials: Vec<TrialSpec> = (0..9)
        .map(|t| {
            let bids = random_bids(runner.config(), 2, &mut r);
            let (_, faults) = &plans[t % plans.len()];
            let spec = TrialSpec::honest(bids).with_faults(faults.clone());
            if t % 4 == 3 {
                // A crash rides along so degraded runs are in the corpus.
                spec.with_faults(faults.clone().crash_at(NodeId(t % n), 4))
            } else {
                spec
            }
        })
        .collect();

    let reference = BatchRunner::with_threads(WIDTHS[0]).run_trials(&runner, SEED, &trials);
    let reference_aggregate = aggregate_metrics(&reference);
    assert!(
        reference_aggregate.counter_total("retransmissions") > 0,
        "the corpus must exercise the retransmit path"
    );
    assert!(
        reference_aggregate.counter_total("rtt_samples") > 0,
        "the corpus must feed the adaptive RTT estimators — their \
         fixed-point state is part of the cross-width determinism claim"
    );
    for width in &WIDTHS[1..] {
        let results = BatchRunner::with_threads(*width).run_trials(&runner, SEED, &trials);
        for (i, (x, y)) in reference.iter().zip(&results).enumerate() {
            if let (Ok(x), Ok(y)) = (x, y) {
                assert_eq!(
                    x.result, y.result,
                    "trial {i} outcome differs at width {width}"
                );
                assert_eq!(
                    x.metrics, y.metrics,
                    "trial {i} metrics differ at width {width}"
                );
            }
        }
        let aggregate = aggregate_metrics(&results);
        assert_eq!(
            reference_aggregate, aggregate,
            "aggregate metrics differ at width {width}"
        );
        assert_eq!(
            reference_aggregate.to_json(0),
            aggregate.to_json(0),
            "serialized metrics differ at width {width}"
        );
    }
}

#[test]
fn lockstep_and_synchronous_delay_agree_under_chaos() {
    // The synchronous delay profile walks the lockstep schedule, so the
    // whole recovery artifact — outcome, retransmit counters, suspicion
    // series, metrics JSON — must be transport-invariant.
    for (case, faults) in chaos_plans(6).into_iter().chain([(
        "crash",
        FaultPlan::none(6).drop_every(3).crash_at(NodeId(2), 4),
    )]) {
        let mut r = rng(SEED ^ 0x0B6);
        let cfg = config(6, 1, &mut r);
        let bids = random_bids(&cfg, 3, &mut r);
        let behaviors = vec![Behavior::Suggested; 6];
        let runner = DmwRunner::new(cfg).with_recovery();

        let lockstep = runner
            .run(&bids, &behaviors, faults.clone(), &mut rng(SEED + 9))
            .expect("valid lockstep run");
        let delayed = runner
            .run_on(
                &bids,
                &behaviors,
                DelayTransport::with_faults(6, faults, DelayProfile::synchronous()),
                &mut rng(SEED + 9),
            )
            .expect("valid delay run");

        assert_eq!(
            lockstep.result, delayed.result,
            "{case}: outcomes differ between transports"
        );
        assert_eq!(
            lockstep.metrics, delayed.metrics,
            "{case}: metrics differ between transports"
        );
        assert_eq!(
            lockstep.metrics.to_json(0),
            delayed.metrics.to_json(0),
            "{case}: serialized metrics differ between transports"
        );
    }
}

#[test]
fn nack_storm_is_suppressed_under_symmetric_loss() {
    // 50% symmetric periodic loss: every second transmission (data and
    // control alike) dies. Gap nacks must stay proportional to loss
    // events — the per-link watermark may request each gap once — so
    // the nack volume stays below the ack volume instead of storming,
    // and the repaired outcome still matches the lossless run exactly.
    let mut r = rng(SEED ^ 0x57f);
    let cfg = config(6, 1, &mut r);
    let bids = random_bids(&cfg, 3, &mut r);
    let behaviors = vec![Behavior::Suggested; 6];
    let runner = DmwRunner::new(cfg).with_recovery();

    let baseline = runner
        .run(&bids, &behaviors, FaultPlan::none(6), &mut rng(SEED + 5))
        .expect("valid lossless run");
    assert!(baseline.is_completed());
    let lossy = runner
        .run(
            &bids,
            &behaviors,
            FaultPlan::none(6).drop_every(2),
            &mut rng(SEED + 5),
        )
        .expect("valid chaos run");
    assert!(lossy.is_completed(), "50% loss is repaired, not fatal");
    assert_eq!(
        lossy.completed().unwrap(),
        baseline.completed().unwrap(),
        "repair is outcome-invariant even at 50% loss"
    );
    let nacks = lossy.metrics.counter_total("nacks_sent");
    let acks = lossy.metrics.counter_total("acks_sent");
    assert!(nacks > 0, "heavy loss must exercise the nack fast path");
    assert!(
        nacks <= acks,
        "nack storm: {nacks} nacks vs {acks} acks — the watermark must \
         bound gap requests to one per gap"
    );
}

#[test]
fn suspicion_threshold_sweep_under_adaptive_timeouts() {
    // The c − 1 / c / c + 1 sweep of the resilience threshold, under an
    // explicit adaptive retry policy (tight base, deeper budget) rather
    // than the defaults: RTT-derived timeouts must not change which
    // side of the threshold a crash count lands on.
    let policy = RetryPolicy {
        base_timeout: 8,
        budget: 4,
    };
    let run_with_crashes = |crashed: &[usize]| {
        let mut r = rng(SEED ^ 0xADA);
        let cfg = config(6, 2, &mut r);
        let bids = random_bids(&cfg, 2, &mut r);
        let mut faults = FaultPlan::none(6);
        for &node in crashed {
            faults = faults.crash_at(NodeId(node), 4);
        }
        DmwRunner::new(cfg)
            .with_recovery_policy(policy)
            .run(&bids, &vec![Behavior::Suggested; 6], faults, &mut r)
            .expect("valid run")
    };

    let below = run_with_crashes(&[1]); // c − 1
    let RunResult::Degraded { excluded, .. } = &below.result else {
        panic!("c - 1 crashes must degrade, got {:?}", below.result);
    };
    assert_eq!(excluded, &vec![1]);

    let at = run_with_crashes(&[1, 4]); // exactly c
    let RunResult::Degraded { excluded, .. } = &at.result else {
        panic!("c crashes must still degrade, got {:?}", at.result);
    };
    assert_eq!(excluded, &vec![1, 4]);

    let beyond = run_with_crashes(&[1, 2, 4]); // c + 1
    assert_eq!(
        beyond.abort_reason(),
        Some(AbortReason::Unresolvable),
        "beyond the threshold the abort path is preserved"
    );
}

#[test]
fn resilience_threshold_separates_degradation_from_abort() {
    // n = 6, c = 2: crashing 0, 1, 2 agents after the auctions resolve
    // must yield Completed, Degraded, Degraded; crashing 3 (> c) must
    // keep the abort path.
    let bids_rows = vec![
        vec![2, 3],
        vec![1, 3],
        vec![3, 1],
        vec![2, 2],
        vec![3, 3],
        vec![3, 2],
    ];
    let run_with_crashes = |crashed: &[usize]| {
        let mut r = rng(SEED ^ 0x5EE);
        let cfg = config(6, 2, &mut r);
        let bids = ExecutionTimes::from_rows(bids_rows.clone()).unwrap();
        let mut faults = FaultPlan::none(6);
        for &node in crashed {
            faults = faults.crash_at(NodeId(node), 4);
        }
        DmwRunner::new(cfg)
            .with_recovery()
            .run(&bids, &vec![Behavior::Suggested; 6], faults, &mut r)
            .expect("valid run")
    };

    let clean = run_with_crashes(&[]);
    assert!(clean.is_completed(), "no crashes: clean completion");

    // One crash (the winner of task 0): degraded, task 0 re-auctioned
    // at the second-lowest *surviving* bid.
    let one = run_with_crashes(&[1]);
    let RunResult::Degraded {
        outcome,
        excluded,
        reauctioned_tasks,
    } = &one.result
    else {
        panic!("one crash must degrade, got {:?}", one.result);
    };
    assert_eq!(excluded, &vec![1]);
    assert_eq!(reauctioned_tasks, &vec![0]);
    // Surviving bids on task 0: 2, 3, 2, 3, 3 → winner agent 0 at
    // first price 2, charged the surviving second price 2.
    assert_eq!(outcome.schedule.agent_of(TaskId(0)), Some(AgentId(0)));
    assert_eq!(outcome.first_prices[0], 2);
    assert_eq!(outcome.second_prices[0], 2);
    assert_eq!(outcome.payments[0], 2);
    assert_eq!(outcome.payments[1], 0, "excluded agents earn nothing");
    let truth = ExecutionTimes::from_rows(bids_rows.clone()).unwrap();
    assert_eq!(utilities(&one, &truth)[1], 0);

    // Two crashes (== c): still degraded, both excluded.
    let two = run_with_crashes(&[1, 2]);
    let RunResult::Degraded { excluded, .. } = &two.result else {
        panic!("c crashes must still degrade, got {:?}", two.result);
    };
    assert_eq!(excluded, &vec![1, 2]);
    assert_eq!(two.metrics.counter_total("degraded_runs"), 1);

    // Three crashes (> c): the abort path is preserved.
    let three = run_with_crashes(&[1, 2, 3]);
    assert_eq!(three.abort_reason(), Some(AbortReason::Unresolvable));
}

#[test]
fn deviations_are_still_detected_under_recovery_and_chaos() {
    // A tampering agent under packet loss: the reliable sublayer
    // repairs the drops, and the tamper detection still fires — chaos
    // is no cover for deviation.
    let mut r = rng(SEED ^ 0xDE7);
    let cfg = config(6, 1, &mut r);
    let bids = random_bids(&cfg, 2, &mut r);
    let mut behaviors = vec![Behavior::Suggested; 6];
    behaviors[3] = Behavior::TamperedCommitments;
    let run = DmwRunner::new(cfg)
        .with_recovery()
        .run(&bids, &behaviors, FaultPlan::none(6).drop_every(3), &mut r)
        .expect("valid run");
    assert!(
        matches!(
            run.abort_reason(),
            Some(AbortReason::InvalidShares { sender: 3 })
        ),
        "tampering under chaos must still abort, got {:?}",
        run.result
    );
}
