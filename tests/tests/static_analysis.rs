//! Tier-1 enforcement of the protocol-invariant lints: `cargo test` fails
//! if any workspace source violates rules L1–L5 (see
//! `docs/static_analysis.md`), so a violation cannot merge even when the
//! `scripts/check.sh` gate is skipped.

use std::path::Path;

#[test]
fn workspace_has_no_lint_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ lives one level below the workspace root");
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let findings = dmw_lint::lint_workspace(root).expect("workspace sources are readable");
    assert!(
        findings.is_empty(),
        "dmw-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
