//! Tier-1 enforcement of the protocol-invariant lints: `cargo test` fails
//! if any workspace source violates rules L1–L11 (see
//! `docs/static_analysis.md`), so a violation cannot merge even when the
//! `scripts/check.sh` gate is skipped. Alongside the clean-workspace
//! assertion, this suite pins the *other* direction: an injected
//! violation per flow-sensitive family (L9, L10, L11) must fail, and the
//! committed JSON report must match the workspace byte for byte.

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ lives one level below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    root
}

#[test]
fn workspace_has_no_lint_violations() {
    let findings =
        dmw_lint::lint_workspace(&workspace_root()).expect("workspace sources are readable");
    assert!(
        findings.is_empty(),
        "dmw-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn an_injected_l9_violation_fails() {
    let findings = dmw_lint::lint_source(
        "crates/core/src/injected.rs",
        "fn leak(bid: u64, task: usize) -> Body { \
         Body::Disclose { task, f_values: vec![bid] } }",
    );
    assert!(
        findings.iter().any(|f| f.rule == "L9"),
        "a raw bid reaching a sink constructor must be denied: {findings:?}"
    );
}

#[test]
fn an_injected_l10_violation_fails() {
    let findings = dmw_lint::lint_source(
        "crates/core/src/injected.rs",
        "fn f(m: &HashMap<u64, u64>) -> u64 { m.values().sum() }",
    );
    assert!(
        findings.iter().any(|f| f.rule == "L10"),
        "HashMap iteration in a deterministic crate must be denied: {findings:?}"
    );
}

#[test]
fn a_transition_added_without_a_spec_update_fails() {
    let root = workspace_root();
    let spec = fs::read_to_string(root.join("docs/phase_graph.toml")).expect("spec readable");
    let phases =
        fs::read_to_string(root.join("crates/core/src/phases/mod.rs")).expect("phases readable");
    // Drop a declared edge from the spec: the (unchanged) code edge is
    // now an undeclared transition — exactly what adding a transition
    // without a spec edit looks like from the spec's point of view.
    let drifted = spec.replace("\"SecondPrice -> Claimed\",", "");
    assert_ne!(drifted, spec, "the edge under test exists in the spec");
    let out = dmw_lint::phase_graph::check_sources(
        "docs/phase_graph.toml",
        Some(&drifted),
        &[("crates/core/src/phases/mod.rs".to_owned(), phases)],
    );
    assert!(
        out.iter()
            .any(|f| f.finding.rule == "L11"
                && f.finding.message.contains("undeclared transition")),
        "{out:?}"
    );
}

#[test]
fn committed_lint_report_matches_the_workspace() {
    let root = workspace_root();
    let findings = dmw_lint::lint_workspace(&root).expect("workspace sources are readable");
    let fresh = dmw_lint::report::to_json(&findings);
    let committed =
        fs::read_to_string(root.join("docs/lint_report.json")).expect("committed report exists");
    assert_eq!(
        fresh, committed,
        "docs/lint_report.json is stale; regenerate with \
         `cargo run -p dmw-lint -- --format json --out docs/lint_report.json`"
    );
}
