//! Integration tests for the extension surfaces: the wire codec over a
//! real protocol run, the obedient-leader strawman, the distributed
//! related-machines mechanism, and the repeated-execution leak.

use dmw::codec::DecodeError;
use dmw::messages::Body;
use dmw::obedient::{run_obedient, LeaderBehavior};
use dmw::related_distributed::run_related;
use dmw::repeated::repeated_execution;
use dmw::runner::DmwRunner;
use dmw_crypto::polynomials::ShareBundle;
use dmw_mechanism::{AgentId, MinWork, TieBreak};
use dmw_simnet::Payload;
use integration_tests::{config, random_bids, rng};
use proptest::prelude::*;

#[test]
fn every_message_of_a_real_run_round_trips_through_the_codec() {
    // Re-drive one honest run but intercept at the message level: every
    // Body an agent emits must encode/decode to itself, and the byte
    // count the network records must equal the encoded sizes.
    use dmw::agent::DmwAgent;
    use dmw::Behavior;

    let mut r = rng(6000);
    let cfg = config(5, 1, &mut r);
    let encoding = *cfg.encoding();
    let bids = random_bids(&cfg, 2, &mut r);
    let mut agents: Vec<DmwAgent> = (0..5)
        .map(|i| {
            DmwAgent::new(
                cfg.clone(),
                i,
                bids.agent_row(AgentId(i)).to_vec(),
                Behavior::Suggested,
                99,
            )
        })
        .collect();
    let mut net: dmw_simnet::Network<Body> = dmw_simnet::Network::new(5);
    let mut total_encoded = 0u64;
    for _round in 0..dmw::runner::PROTOCOL_ROUNDS {
        for (i, agent) in agents.iter_mut().enumerate() {
            let inbox = net.take_inbox(dmw_simnet::NodeId(i));
            for (recipient, body) in agent.poll(inbox) {
                let bytes = body.encode();
                let decoded = Body::decode(&bytes, &encoding).expect("wire round trip");
                assert_eq!(decoded, body);
                match recipient {
                    dmw_simnet::Recipient::Unicast(to) => {
                        total_encoded += bytes.len() as u64;
                        net.send(dmw_simnet::NodeId(i), to, body);
                    }
                    dmw_simnet::Recipient::Broadcast => {
                        total_encoded += 4 * bytes.len() as u64; // n - 1 copies
                        net.broadcast(dmw_simnet::NodeId(i), body);
                    }
                }
            }
        }
        net.step();
    }
    assert_eq!(
        net.stats().bytes,
        total_encoded,
        "stats count real encoded bytes"
    );
}

#[test]
fn obedient_strawman_matches_minwork_but_is_robbable() {
    let mut r = rng(6001);
    let cfg = config(6, 1, &mut r);
    let bids = random_bids(&cfg, 3, &mut r);
    let honest = run_obedient(&bids, LeaderBehavior::Honest).unwrap();
    let reference = MinWork::new(TieBreak::LowestIndex).run(&bids).unwrap();
    assert_eq!(honest.outcome, reference);
    // Traffic comparison on the same instance: the strawman is at least
    // an order of magnitude cheaper at this size.
    let dmw_run = DmwRunner::new(cfg).run_honest(&bids, &mut r).unwrap();
    assert!(dmw_run.network.point_to_point > 10 * honest.network.point_to_point);
    // But it offers no defence.
    let robbed = run_obedient(&bids, LeaderBehavior::SelfDealing).unwrap();
    assert!(!robbed.honest_outcome);
}

#[test]
fn distributed_related_machines_is_consistent_across_seeds() {
    let mut r = rng(6002);
    for seed in 0..5u64 {
        let cfg = config(7, 1, &mut r);
        let costs: Vec<f64> = (0..7)
            .map(|i| 1.0 + ((seed + i as u64 * 3) % 11) as f64)
            .collect();
        let outcome = run_related(&cfg, &costs, 200.0, &mut r).unwrap();
        // Winner bid the minimum level; payment at least its own cost's
        // level representative.
        let min_cost = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let winner_level = outcome.quantizer.level_of(costs[outcome.winner]);
        let min_level = outcome.quantizer.level_of(min_cost);
        assert_eq!(winner_level, min_level, "seed {seed}");
        assert!(outcome.price_per_unit >= outcome.quantizer.value_of(winner_level) - 1e-9);
    }
}

#[test]
fn repeated_executions_remain_truthful_end_to_end() {
    let mut r = rng(6003);
    let cfg = config(5, 1, &mut r);
    let truth = random_bids(&cfg, 3, &mut r);
    for agent in 0..5 {
        let rows = repeated_execution(&cfg, &truth, AgentId(agent), &mut r).unwrap();
        for row in rows {
            assert!(
                row.informed_utility <= row.truthful_utility,
                "agent {agent}, {}",
                row.strategy
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn codec_round_trips_arbitrary_vectors(
        task in 0usize..1000,
        f_values in proptest::collection::vec(proptest::num::u64::ANY, 0..32),
        payments in proptest::collection::vec(proptest::num::u64::ANY, 0..32),
        mask in proptest::collection::vec(proptest::bool::ANY, 1..32),
        e in proptest::num::u64::ANY,
    ) {
        let mut r = rng(6004);
        let cfg = config(4, 0, &mut r);
        let encoding = *cfg.encoding();
        let bodies = vec![
            Body::Disclose { task, f_values },
            Body::PaymentClaim { payments },
            Body::Lambda {
                task,
                pair: dmw_crypto::resolution::LambdaPsi { lambda: e, psi: e ^ 1 },
                included: mask,
            },
            Body::Shares { task, bundle: ShareBundle { e, f: e ^ 2, g: e ^ 3, h: e ^ 4 } },
        ];
        for body in bodies {
            let bytes = body.encode();
            prop_assert_eq!(bytes.len(), body.size_bytes());
            let decoded = Body::decode(&bytes, &encoding);
            prop_assert_eq!(decoded, Ok(body));
        }
    }

    #[test]
    fn codec_never_panics_on_garbage(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..128)) {
        let mut r = rng(6005);
        let cfg = config(4, 0, &mut r);
        // Must return an error or a valid body, never panic.
        let _: Result<Body, DecodeError> = Body::decode(&bytes, cfg.encoding());
    }
}
