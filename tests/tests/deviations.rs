//! Faithfulness (Theorems 4–5) and strong voluntary participation
//! (Theorems 6–9) across the full deviation catalogue, multiple deviators
//! and multiple instances — the THM-faith and THM-svp experiments as
//! hard assertions.

use dmw::audit::{faithfulness_table, voluntary_participation_table};
use dmw::error::AbortReason;
use dmw::runner::DmwRunner;
use dmw::Behavior;
use dmw_simnet::FaultPlan;
use integration_tests::{config, random_bids, rng};

#[test]
fn faithfulness_holds_for_every_deviator_position() {
    let mut r = rng(2000);
    let n = 5;
    let cfg = config(n, 1, &mut r);
    let truth = random_bids(&cfg, 2, &mut r);
    for deviator in 0..n {
        let rows = faithfulness_table(&cfg, &truth, deviator, &mut r).unwrap();
        for row in rows {
            assert!(
                row.faithful(),
                "deviator {deviator}, {}: {} > {}",
                row.behavior,
                row.deviating_utility,
                row.suggested_utility
            );
        }
    }
}

#[test]
fn faithfulness_holds_across_instances() {
    let mut r = rng(2001);
    for seed in 0..5u64 {
        let n = 4 + (seed as usize % 3);
        let c = seed as usize % 2;
        let cfg = config(n, c, &mut r);
        let truth = random_bids(&cfg, 1 + seed as usize % 3, &mut r);
        let rows = faithfulness_table(&cfg, &truth, 0, &mut r).unwrap();
        assert!(
            rows.iter().all(dmw::audit::FaithfulnessRow::faithful),
            "seed {seed}"
        );
    }
}

#[test]
fn voluntary_participation_across_instances() {
    let mut r = rng(2002);
    for seed in 0..5u64 {
        let n = 5 + (seed as usize % 2);
        let cfg = config(n, 1, &mut r);
        let truth = random_bids(&cfg, 2, &mut r);
        let rows = voluntary_participation_table(&cfg, &truth, n - 1, &mut r).unwrap();
        for row in rows {
            assert!(
                row.min_compliant_utility >= 0,
                "seed {seed}, {}: compliant agent lost",
                row.behavior
            );
        }
    }
}

#[test]
fn each_tampering_deviation_is_detected_with_the_right_reason() {
    let mut r = rng(2003);
    let n = 6;
    let cfg = config(n, 2, &mut r);
    let truth = random_bids(&cfg, 1, &mut r);
    let runner = DmwRunner::new(cfg);
    type ReasonCheck = fn(AbortReason) -> bool;
    let cases: Vec<(Behavior, ReasonCheck)> = vec![
        (Behavior::CorruptShareTo { victim: 2 }, |r| {
            matches!(r, AbortReason::InvalidShares { sender: 1 })
        }),
        (Behavior::TamperedCommitments, |r| {
            matches!(r, AbortReason::InvalidShares { sender: 1 })
        }),
        (Behavior::SelectiveShares { threshold: 3 }, |r| {
            matches!(r, AbortReason::InconsistentMask { .. })
        }),
        // Theorem 4: "If A_i fails to send the shares to all the others,
        // an agent not receiving its share will abort" — here through the
        // participation-mask disagreement.
        (Behavior::WithholdShares, |r| {
            matches!(r, AbortReason::InconsistentMask { publisher: 1 })
        }),
        // A corrupted lambda is caught either by a designated verifier
        // (eq (11)) or, by agents outside the rotation, as a failed
        // resolution — both race in the same round.
        (Behavior::WrongLambda, |r| {
            matches!(
                r,
                AbortReason::InvalidLambdaPsi { publisher: 1 } | AbortReason::Unresolvable
            )
        }),
        (Behavior::WrongDisclosure, |r| {
            matches!(
                r,
                AbortReason::InvalidDisclosure { discloser: 1 } | AbortReason::NoWinner
            )
        }),
        (Behavior::WrongExcluded, |r| {
            matches!(
                r,
                AbortReason::InvalidExcluded { publisher: 1 } | AbortReason::Unresolvable
            )
        }),
    ];
    for (behavior, matches_reason) in cases {
        let mut behaviors = vec![Behavior::Suggested; n];
        behaviors[1] = behavior;
        let run = runner
            .run(&truth, &behaviors, FaultPlan::none(n), &mut r)
            .unwrap();
        assert!(!run.is_completed(), "{behavior} must abort");
        let reason = run.abort_reason().unwrap();
        assert!(
            matches_reason(reason),
            "{behavior} detected as unexpected reason: {reason}"
        );
    }
}

#[test]
fn every_tampering_deviation_is_still_detected_under_delay() {
    // Decoupling detection from the lockstep schedule must not open a
    // timing loophole: on a jittered transport every deviation from the
    // catalogue still aborts the run.
    let mut r = rng(2013);
    let n = 6;
    let cfg = config(n, 2, &mut r);
    let truth = random_bids(&cfg, 1, &mut r);
    let runner = DmwRunner::new(cfg).with_round_budget(200).with_patience(10);
    let deviations = [
        Behavior::CorruptShareTo { victim: 2 },
        Behavior::TamperedCommitments,
        Behavior::SelectiveShares { threshold: 3 },
        Behavior::WithholdShares,
        Behavior::WrongLambda,
        Behavior::WrongDisclosure,
        Behavior::WrongExcluded,
        Behavior::InflatedPaymentClaim { delta: 3 },
    ];
    for profile in [
        dmw_simnet::DelayProfile::fixed(1),
        dmw_simnet::DelayProfile::jittered(0, 3, 77),
    ] {
        for behavior in deviations {
            let mut behaviors = vec![Behavior::Suggested; n];
            behaviors[1] = behavior;
            let transport: dmw_simnet::DelayTransport<dmw::messages::Body> =
                dmw_simnet::DelayTransport::new(n, profile);
            let run = runner
                .run_on(&truth, &behaviors, transport, &mut r)
                .unwrap();
            if matches!(behavior, Behavior::InflatedPaymentClaim { .. }) {
                // Outvoted at settlement rather than aborted, exactly as
                // on the lockstep transport.
                let outcome = run.completed().unwrap();
                assert!(!outcome.withheld[1], "honest majority outvotes the claim");
            } else {
                assert!(!run.is_completed(), "{behavior} must abort under delay");
            }
        }
    }
}

#[test]
fn silence_deviations_complete_when_tolerated() {
    let mut r = rng(2004);
    let n = 6;
    let cfg = config(n, 2, &mut r);
    let truth = random_bids(&cfg, 2, &mut r);
    let runner = DmwRunner::new(cfg);
    for behavior in [Behavior::Silent, Behavior::SilentAfterBidding] {
        let mut behaviors = vec![Behavior::Suggested; n];
        behaviors[4] = behavior;
        let run = runner
            .run(&truth, &behaviors, FaultPlan::none(n), &mut r)
            .unwrap();
        assert!(
            run.is_completed(),
            "{behavior} should be tolerated at c = 2"
        );
    }
}

#[test]
fn silence_deviations_abort_when_not_tolerated() {
    let mut r = rng(2005);
    let n = 5;
    let cfg = config(n, 0, &mut r);
    let truth = random_bids(&cfg, 1, &mut r);
    let runner = DmwRunner::new(cfg);
    for behavior in [Behavior::Silent, Behavior::SilentAfterBidding] {
        let mut behaviors = vec![Behavior::Suggested; n];
        behaviors[2] = behavior;
        let run = runner
            .run(&truth, &behaviors, FaultPlan::none(n), &mut r)
            .unwrap();
        assert!(!run.is_completed(), "{behavior} exceeds c = 0");
    }
}

#[test]
fn inflated_claim_is_outvoted_and_the_outcome_stands() {
    let mut r = rng(2006);
    let n = 5;
    let cfg = config(n, 1, &mut r);
    let truth = random_bids(&cfg, 2, &mut r);
    let runner = DmwRunner::new(cfg);
    let honest = runner.run_honest(&truth, &mut r).unwrap();
    let honest_outcome = honest.completed().unwrap();
    let mut behaviors = vec![Behavior::Suggested; n];
    behaviors[3] = Behavior::InflatedPaymentClaim { delta: 7 };
    let run = runner
        .run(&truth, &behaviors, FaultPlan::none(n), &mut r)
        .unwrap();
    let outcome = run.completed().unwrap();
    assert_eq!(
        outcome.payments, honest_outcome.payments,
        "majority carries honesty"
    );
    assert!(outcome.withheld.iter().all(|&w| !w));
}

#[test]
fn two_simultaneous_silent_deviators_within_budget() {
    let mut r = rng(2007);
    let n = 7;
    let cfg = config(n, 2, &mut r);
    let truth = random_bids(&cfg, 2, &mut r);
    let mut behaviors = vec![Behavior::Suggested; n];
    behaviors[5] = Behavior::Silent;
    behaviors[6] = Behavior::SilentAfterBidding;
    let run = DmwRunner::new(cfg)
        .run(&truth, &behaviors, FaultPlan::none(n), &mut r)
        .unwrap();
    assert!(
        run.is_completed(),
        "two silences within c = 2 are tolerated"
    );
}
