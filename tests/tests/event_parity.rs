//! Parity suite for the discrete-event scheduler (`Engine::Event`)
//! against the poll-every-tick oracle (`Engine::Polling`): both engines
//! execute the same tick body, so every run artifact — [`RunResult`],
//! [`dmw_simnet::NetworkStats`], the trace, the metrics snapshot — must
//! be *bit-identical* except for the `events_processed` gauge that
//! counts executed ticks. The sweep crosses honest, chaos and recovery
//! (crash/degradation) runs with verify widths 1/2/8 on both the
//! lockstep and the synchronous delay transport, and pins that the
//! event engine actually skips idle ticks when a long retransmission
//! backoff dominates the run (`docs/scheduler.md`).

use dmw::reliable::RetryPolicy;
use dmw::runner::{DmwRun, DmwRunner, Engine};
use dmw::Behavior;
use dmw_obs::Key;
use dmw_simnet::{DelayProfile, DelayTransport, FaultPlan, NodeId};
use integration_tests::{config, random_bids, rng};

const SEED: u64 = 20260807;
const WIDTHS: [usize; 3] = [1, 2, 8];

/// The fault schedules the parity sweep crosses: a clean run, the chaos
/// matrix (periodic drops, seeded probabilistic loss, a transient
/// partition), and an unrepairable crash that exercises the
/// degradation/re-auction path end to end.
fn plans(n: usize) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("honest", FaultPlan::none(n)),
        ("periodic", FaultPlan::none(n).drop_every(3)),
        (
            "probabilistic",
            FaultPlan::none(n).drop_prob(0.10, 0xC0FFEE),
        ),
        (
            "transient",
            FaultPlan::none(n)
                .drop_link_between(NodeId(0), NodeId(2), 1, 3)
                .drop_link_between(NodeId(3), NodeId(1), 2, 4),
        ),
        (
            "crash",
            FaultPlan::none(n).drop_every(3).crash_at(NodeId(2), 4),
        ),
    ]
}

/// Asserts two runs are bit-identical in every engine-independent
/// artifact. `events_processed` is the *only* series allowed to differ:
/// it counts executed scheduler ticks, which is exactly what the event
/// engine optimizes.
fn assert_parity(case: &str, event: &DmwRun, polling: &DmwRun) {
    assert_eq!(event.result, polling.result, "{case}: results differ");
    assert_eq!(
        event.network, polling.network,
        "{case}: network stats differ"
    );
    assert_eq!(event.trace, polling.trace, "{case}: traces differ");
    let event_metrics = event.metrics.clone().without_metric("events_processed");
    let polling_metrics = polling.metrics.clone().without_metric("events_processed");
    assert_eq!(event_metrics, polling_metrics, "{case}: metrics differ");
    assert_eq!(
        event_metrics.to_json(0),
        polling_metrics.to_json(0),
        "{case}: serialized metrics differ"
    );
}

#[test]
fn lockstep_runs_are_bit_identical_between_engines() {
    for (case, faults) in plans(6) {
        for width in WIDTHS {
            let mut r = rng(SEED);
            let cfg = config(6, 1, &mut r);
            let bids = random_bids(&cfg, 3, &mut r);
            let behaviors = vec![Behavior::Suggested; 6];
            let runner = DmwRunner::new(cfg)
                .with_recovery()
                .with_verify_threads(width);

            let event = runner
                .clone()
                .with_engine(Engine::Event)
                .run(&bids, &behaviors, faults.clone(), &mut rng(SEED + 1))
                .expect("valid event run");
            let polling = runner
                .with_engine(Engine::Polling)
                .run(&bids, &behaviors, faults.clone(), &mut rng(SEED + 1))
                .expect("valid polling run");
            assert_parity(&format!("{case}/w{width}/lockstep"), &event, &polling);
        }
    }
}

#[test]
fn delay_transport_runs_are_bit_identical_between_engines() {
    for (case, faults) in plans(6) {
        for width in WIDTHS {
            let mut r = rng(SEED ^ 0xDE1A);
            let cfg = config(6, 1, &mut r);
            let bids = random_bids(&cfg, 3, &mut r);
            let behaviors = vec![Behavior::Suggested; 6];
            let runner = DmwRunner::new(cfg)
                .with_recovery()
                .with_verify_threads(width);

            let event = runner
                .clone()
                .with_engine(Engine::Event)
                .run_on(
                    &bids,
                    &behaviors,
                    DelayTransport::with_faults(6, faults.clone(), DelayProfile::synchronous()),
                    &mut rng(SEED + 2),
                )
                .expect("valid event run");
            let polling = runner
                .with_engine(Engine::Polling)
                .run_on(
                    &bids,
                    &behaviors,
                    DelayTransport::with_faults(6, faults.clone(), DelayProfile::synchronous()),
                    &mut rng(SEED + 2),
                )
                .expect("valid polling run");
            assert_parity(&format!("{case}/w{width}/delay"), &event, &polling);
        }
    }
}

#[test]
fn jittered_delay_runs_are_bit_identical_between_engines() {
    // Non-synchronous delays are where the event engine's
    // `Transport::next_due` fast-forwarding earns its keep: held
    // messages fall due ticks apart, and the jump must land on exactly
    // the ticks the polling loop would have found non-idle.
    let mut r = rng(SEED ^ 0x717);
    let cfg = config(6, 1, &mut r);
    let bids = random_bids(&cfg, 3, &mut r);
    let behaviors = vec![Behavior::Suggested; 6];
    let runner = DmwRunner::new(cfg)
        .with_recovery()
        .with_patience(32)
        .with_round_budget(512);
    let profile = DelayProfile::jittered(2, 3, 0x5EED);

    let event = runner
        .clone()
        .with_engine(Engine::Event)
        .run_on(
            &bids,
            &behaviors,
            DelayTransport::with_faults(6, FaultPlan::none(6), profile.clone()),
            &mut rng(SEED + 3),
        )
        .expect("valid event run");
    let polling = runner
        .with_engine(Engine::Polling)
        .run_on(
            &bids,
            &behaviors,
            DelayTransport::with_faults(6, FaultPlan::none(6), profile),
            &mut rng(SEED + 3),
        )
        .expect("valid polling run");
    assert_parity("jitter/delay", &event, &polling);
}

#[test]
fn event_engine_skips_idle_ticks_under_long_backoff() {
    // A crash with a budget-6 retry policy: the survivors' links to the
    // dead node back off through base·2^6 = 256 ticks of almost pure
    // waiting (patience and round budget auto-scale to cover the repair
    // horizon), so the event engine must process strictly fewer
    // scheduler activations than ticks elapsed — that asymmetry *is*
    // the tentpole. The polling oracle, by construction, processes
    // exactly one activation per tick.
    let mut r = rng(SEED ^ 0x1D1E);
    let cfg = config(6, 1, &mut r);
    let bids = random_bids(&cfg, 3, &mut r);
    let behaviors = vec![Behavior::Suggested; 6];
    let policy = RetryPolicy {
        base_timeout: 4,
        budget: 6,
    };
    let runner = DmwRunner::new(cfg).with_recovery_policy(policy);
    let faults = FaultPlan::none(6).crash_at(NodeId(2), 4);

    let event = runner
        .clone()
        .with_engine(Engine::Event)
        .run(&bids, &behaviors, faults.clone(), &mut rng(SEED + 4))
        .expect("valid event run");
    let polling = runner
        .with_engine(Engine::Polling)
        .run(&bids, &behaviors, faults, &mut rng(SEED + 4))
        .expect("valid polling run");
    assert_parity("backoff/lockstep", &event, &polling);

    let ticks = event.metrics.gauge(&Key::named("run_ticks"));
    let event_activations = event.metrics.gauge(&Key::named("events_processed"));
    let polling_activations = polling.metrics.gauge(&Key::named("events_processed"));
    assert_eq!(
        polling_activations, ticks,
        "the polling oracle activates once per tick"
    );
    assert!(
        event_activations < ticks,
        "event engine must skip idle ticks: {event_activations} activations \
         over {ticks} ticks"
    );
    assert!(
        event_activations * 2 < ticks,
        "a budget-6 backoff run is mostly dead air; expected well under \
         half the ticks to activate, got {event_activations}/{ticks}"
    );
}
