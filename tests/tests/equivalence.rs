//! DMW ≡ centralized MinWork (the EQUIV experiment): the distributed
//! protocol must reproduce the centralized mechanism's schedule and
//! payments exactly, on every instance.

use dmw::runner::{utilities, DmwRunner};
use dmw_mechanism::{AgentId, ExecutionTimes};
use integration_tests::{centralized_reference, config, random_bids, rng};
use proptest::prelude::*;

#[test]
fn equivalence_on_random_instances() {
    let mut r = rng(1000);
    for trial in 0..25 {
        let n = 4 + trial % 5;
        let m = 1 + trial % 4;
        let c = trial % 2;
        let cfg = config(n, c, &mut r);
        let bids = random_bids(&cfg, m, &mut r);
        let run = DmwRunner::new(cfg).run_honest(&bids, &mut r).unwrap();
        let distributed = run
            .completed()
            .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        let centralized = centralized_reference(&bids);
        assert_eq!(distributed.schedule, centralized.schedule, "trial {trial}");
        assert_eq!(distributed.payments, centralized.payments, "trial {trial}");
    }
}

#[test]
fn equivalence_with_all_ties() {
    // Every agent bids the same value on every task: the lowest index
    // wins everything in both mechanisms, paid the common bid.
    let mut r = rng(1001);
    let cfg = config(5, 1, &mut r);
    let bids = ExecutionTimes::from_rows(vec![vec![2, 2]; 5]).unwrap();
    let run = DmwRunner::new(cfg).run_honest(&bids, &mut r).unwrap();
    let distributed = run.completed().unwrap();
    let centralized = centralized_reference(&bids);
    assert_eq!(distributed.schedule, centralized.schedule);
    for task in 0..2 {
        assert_eq!(distributed.schedule.agent_of(task.into()), Some(AgentId(0)));
    }
    assert_eq!(distributed.payments, vec![4, 0, 0, 0, 0]);
}

#[test]
fn utilities_match_centralized_utilities() {
    let mut r = rng(1002);
    let cfg = config(6, 1, &mut r);
    let truth = random_bids(&cfg, 3, &mut r);
    let run = DmwRunner::new(cfg).run_honest(&truth, &mut r).unwrap();
    let distributed_utilities = utilities(&run, &truth);
    let centralized = centralized_reference(&truth);
    for (i, &du) in distributed_utilities.iter().enumerate() {
        assert_eq!(
            du,
            centralized.utility(AgentId(i), &truth).unwrap(),
            "agent {i}"
        );
    }
}

#[test]
fn single_task_smallest_instance() {
    let mut r = rng(1003);
    let cfg = config(3, 0, &mut r);
    let bids = ExecutionTimes::from_rows(vec![vec![2], vec![1], vec![2]]).unwrap();
    let run = DmwRunner::new(cfg).run_honest(&bids, &mut r).unwrap();
    let outcome = run.completed().unwrap();
    assert_eq!(outcome.schedule.agent_of(0.into()), Some(AgentId(1)));
    assert_eq!(outcome.first_prices, vec![1]);
    assert_eq!(outcome.second_prices, vec![2]);
    assert_eq!(outcome.payments, vec![0, 2, 0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn equivalence_property(seed in 0u64..50_000, n in 4usize..8, m in 1usize..4) {
        let mut r = rng(seed);
        let cfg = config(n, 1, &mut r);
        let bids = random_bids(&cfg, m, &mut r);
        let run = DmwRunner::new(cfg).run_honest(&bids, &mut r).unwrap();
        let distributed = run.completed().unwrap();
        let centralized = centralized_reference(&bids);
        prop_assert_eq!(&distributed.schedule, &centralized.schedule);
        prop_assert_eq!(&distributed.payments, &centralized.payments);
        // Second price >= first price on every task (Vickrey invariant).
        for (f, s) in distributed.first_prices.iter().zip(&distributed.second_prices) {
            prop_assert!(s >= f);
        }
    }
}
