//! Whole-protocol fuzzing: random behavior mixes, random faults, lossy
//! networks. The safety property under every perturbation is the same:
//! **the protocol never completes with a wrong outcome** — it either
//! computes exactly the centralized MinWork result of the committed bids
//! or aborts, and agents following the suggested strategy never end up
//! with negative utility.

use dmw::runner::{utilities, DmwRunner};
use dmw::Behavior;
use dmw_simnet::{FaultPlan, NodeId};
use integration_tests::{centralized_reference, config, random_bids, rng};
use proptest::prelude::*;

/// The behavior catalogue as a proptest strategy (index into it).
fn any_behavior(n: usize) -> impl Strategy<Value = Behavior> {
    (0usize..=10).prop_map(move |k| {
        if k == 0 {
            Behavior::Suggested
        } else {
            Behavior::catalogue(n, 0)[k - 1]
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn random_behavior_mixes_are_safe(
        seed in 0u64..100_000,
        b1 in any_behavior(6),
        b2 in any_behavior(6),
    ) {
        let mut r = rng(seed);
        let n = 6;
        let cfg = config(n, 2, &mut r);
        let truth = random_bids(&cfg, 2, &mut r);
        // Two random behaviors at random positions, rest suggested.
        let mut behaviors = vec![Behavior::Suggested; n];
        behaviors[1] = b1;
        behaviors[4] = b2;
        let run = DmwRunner::new(cfg)
            .run(&truth, &behaviors, FaultPlan::none(n), &mut r)
            .unwrap();
        let us = utilities(&run, &truth);
        // Compliant agents never lose, completed or not.
        for i in [0usize, 2, 3, 5] {
            prop_assert!(us[i] >= 0, "compliant agent {i} lost {}", us[i]);
        }
        if run.is_completed() {
            let outcome = run.completed().unwrap();
            // Silent deviators are excluded from the auction; everyone
            // else's bids were committed. Check per-task Vickrey
            // consistency over the participating set.
            let silent = |b: Behavior| matches!(b, Behavior::Silent);
            let participants: Vec<usize> =
                (0..n).filter(|&i| !silent(behaviors[i])).collect();
            for j in 0..2 {
                let winner = outcome.schedule.agent_of(j.into()).unwrap();
                prop_assert!(participants.contains(&winner.0), "silent agent won");
                let min = participants
                    .iter()
                    .map(|&i| truth.time(i.into(), j.into()))
                    .min()
                    .unwrap();
                prop_assert_eq!(outcome.first_prices[j], min, "task {}", j);
            }
        }
    }

    #[test]
    fn lossy_networks_never_produce_wrong_outcomes(
        seed in 0u64..100_000,
        k in 2u64..40,
    ) {
        let mut r = rng(seed);
        let n = 5;
        let cfg = config(n, 1, &mut r);
        let bids = random_bids(&cfg, 2, &mut r);
        let plan = FaultPlan::none(n).drop_every(k);
        let run = DmwRunner::new(cfg)
            .run(&bids, &vec![Behavior::Suggested; n], plan, &mut r)
            .unwrap();
        if let Ok(outcome) = run.completed() {
            // Completion under loss is only acceptable if the answer is
            // exactly right.
            let reference = centralized_reference(&bids);
            prop_assert_eq!(&outcome.schedule, &reference.schedule);
            prop_assert_eq!(&outcome.payments, &reference.payments);
        }
    }

    #[test]
    fn random_crash_schedules_are_safe(
        seed in 0u64..100_000,
        victim in 0usize..7,
        round in 0u64..5,
    ) {
        let mut r = rng(seed);
        let n = 7;
        let cfg = config(n, 1, &mut r);
        let bids = random_bids(&cfg, 2, &mut r);
        let plan = FaultPlan::none(n).crash_at(NodeId(victim), round);
        let run = DmwRunner::new(cfg)
            .run(&bids, &vec![Behavior::Suggested; n], plan, &mut r)
            .unwrap();
        if let Ok(outcome) = run.completed() {
            // A single crash is within budget (c = 1). The completed
            // outcome must be Vickrey-consistent over the agents whose
            // bids entered the auction (everyone who finished bidding).
            for j in 0..2 {
                let winner = outcome.schedule.agent_of(j.into()).unwrap();
                let winner_bid = bids.time(winner, j.into());
                prop_assert_eq!(winner_bid, outcome.first_prices[j]);
                prop_assert!(outcome.second_prices[j] >= outcome.first_prices[j]);
            }
            // Compliant utilities non-negative.
            for u in utilities(&run, &bids) {
                prop_assert!(u >= 0);
            }
        }
    }
}
