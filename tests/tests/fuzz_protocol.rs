//! Whole-protocol fuzzing: random behavior mixes, random faults, lossy
//! networks. The safety property under every perturbation is the same:
//! **the protocol never completes with a wrong outcome** — it either
//! computes exactly the centralized MinWork result of the committed bids
//! or aborts, and agents following the suggested strategy never end up
//! with negative utility.

use dmw::runner::{utilities, DmwRunner};
use dmw::Behavior;
use dmw_simnet::{DelayProfile, DelayTransport, FaultPlan, NodeId};
use integration_tests::{centralized_reference, config, random_bids, rng};
use proptest::prelude::*;

/// Runs one honest instance on the lockstep transport and again on a
/// [`DelayTransport`] built from `profile` (optionally with per-recipient
/// inbox shuffling), asserting the delayed run completes with exactly the
/// lockstep schedule and payments. Both runs replay the same RNG stream,
/// so the committed bids and polynomials are identical — only delivery
/// timing differs.
fn assert_delay_matches_lockstep(seed: u64, profile: DelayProfile, shuffle: Option<u64>) {
    let n = 6;
    let mut r = rng(seed);
    let cfg = config(n, 1, &mut r);
    let bids = random_bids(&cfg, 3, &mut r);
    let runner = DmwRunner::new(cfg);

    let mut lockstep_rng = rng(seed ^ 0xD1A7);
    let lockstep = runner
        .run_honest(&bids, &mut lockstep_rng)
        .expect("lockstep run");
    let reference = lockstep.completed().expect("honest lockstep completes");

    // Patience must outlast the worst-case delivery spread: a peer may
    // act up to `max_extra` ticks later than me, and its message may take
    // `max_extra` extra ticks on top of the one-tick baseline.
    let patience = 2 * profile.max_extra_delay() + 4;
    let mut transport: DelayTransport<dmw::messages::Body> = DelayTransport::new(n, profile);
    if let Some(s) = shuffle {
        transport = transport.with_inbox_shuffle(s);
    }
    let mut delayed_rng = rng(seed ^ 0xD1A7);
    let delayed = runner
        .clone()
        .with_round_budget(200)
        .with_patience(patience)
        .run_on(
            &bids,
            &vec![Behavior::Suggested; n],
            transport,
            &mut delayed_rng,
        )
        .expect("delayed run");
    let outcome = delayed
        .completed()
        .unwrap_or_else(|e| panic!("honest delayed run must complete (seed {seed}): {e:?}"));
    assert_eq!(outcome.schedule, reference.schedule, "seed {seed}");
    assert_eq!(outcome.payments, reference.payments, "seed {seed}");
    assert_eq!(outcome.first_prices, reference.first_prices, "seed {seed}");
    assert_eq!(
        outcome.second_prices, reference.second_prices,
        "seed {seed}"
    );
}

#[test]
fn honest_runs_match_lockstep_across_delay_profiles_and_seeds() {
    for seed in [101, 202, 303, 404] {
        // Synchronous timing but adversarially shuffled inbox order.
        assert_delay_matches_lockstep(seed, DelayProfile::synchronous(), Some(seed ^ 0x5));
        // Uniform extra latency on every link.
        assert_delay_matches_lockstep(seed, DelayProfile::fixed(2), None);
        // Seeded per-message jitter, with and without shuffling.
        assert_delay_matches_lockstep(seed, DelayProfile::jittered(1, 3, seed ^ 0x9), None);
        assert_delay_matches_lockstep(
            seed,
            DelayProfile::jittered(0, 2, seed ^ 0x11),
            Some(seed ^ 0x13),
        );
    }
}

/// The behavior catalogue as a proptest strategy (index into it).
fn any_behavior(n: usize) -> impl Strategy<Value = Behavior> {
    (0usize..=10).prop_map(move |k| {
        if k == 0 {
            Behavior::Suggested
        } else {
            Behavior::catalogue(n, 0)[k - 1]
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn random_behavior_mixes_are_safe(
        seed in 0u64..100_000,
        b1 in any_behavior(6),
        b2 in any_behavior(6),
    ) {
        let mut r = rng(seed);
        let n = 6;
        let cfg = config(n, 2, &mut r);
        let truth = random_bids(&cfg, 2, &mut r);
        // Two random behaviors at random positions, rest suggested.
        let mut behaviors = vec![Behavior::Suggested; n];
        behaviors[1] = b1;
        behaviors[4] = b2;
        let run = DmwRunner::new(cfg)
            .run(&truth, &behaviors, FaultPlan::none(n), &mut r)
            .unwrap();
        let us = utilities(&run, &truth);
        // Compliant agents never lose, completed or not.
        for i in [0usize, 2, 3, 5] {
            prop_assert!(us[i] >= 0, "compliant agent {i} lost {}", us[i]);
        }
        if run.is_completed() {
            let outcome = run.completed().unwrap();
            // Silent deviators are excluded from the auction; everyone
            // else's bids were committed. Check per-task Vickrey
            // consistency over the participating set.
            let silent = |b: Behavior| matches!(b, Behavior::Silent);
            let participants: Vec<usize> =
                (0..n).filter(|&i| !silent(behaviors[i])).collect();
            for j in 0..2 {
                let winner = outcome.schedule.agent_of(j.into()).unwrap();
                prop_assert!(participants.contains(&winner.0), "silent agent won");
                let min = participants
                    .iter()
                    .map(|&i| truth.time(i.into(), j.into()))
                    .min()
                    .unwrap();
                prop_assert_eq!(outcome.first_prices[j], min, "task {}", j);
            }
        }
    }

    #[test]
    fn shuffled_inboxes_and_random_jitter_preserve_honest_outcomes(
        seed in 0u64..100_000,
        shuffle in 0u64..100_000,
        jitter in 0u64..3,
    ) {
        assert_delay_matches_lockstep(
            seed,
            DelayProfile::jittered(0, jitter, seed ^ shuffle),
            Some(shuffle),
        );
    }

    #[test]
    fn lossy_networks_never_produce_wrong_outcomes(
        seed in 0u64..100_000,
        k in 2u64..40,
    ) {
        let mut r = rng(seed);
        let n = 5;
        let cfg = config(n, 1, &mut r);
        let bids = random_bids(&cfg, 2, &mut r);
        let plan = FaultPlan::none(n).drop_every(k);
        let run = DmwRunner::new(cfg)
            .run(&bids, &vec![Behavior::Suggested; n], plan, &mut r)
            .unwrap();
        if let Ok(outcome) = run.completed() {
            // Completion under loss is only acceptable if the answer is
            // exactly right.
            let reference = centralized_reference(&bids);
            prop_assert_eq!(&outcome.schedule, &reference.schedule);
            prop_assert_eq!(&outcome.payments, &reference.payments);
        }
    }

    #[test]
    fn random_crash_schedules_are_safe(
        seed in 0u64..100_000,
        victim in 0usize..7,
        round in 0u64..5,
    ) {
        let mut r = rng(seed);
        let n = 7;
        let cfg = config(n, 1, &mut r);
        let bids = random_bids(&cfg, 2, &mut r);
        let plan = FaultPlan::none(n).crash_at(NodeId(victim), round);
        let run = DmwRunner::new(cfg)
            .run(&bids, &vec![Behavior::Suggested; n], plan, &mut r)
            .unwrap();
        if let Ok(outcome) = run.completed() {
            // A single crash is within budget (c = 1). The completed
            // outcome must be Vickrey-consistent over the agents whose
            // bids entered the auction (everyone who finished bidding).
            for j in 0..2 {
                let winner = outcome.schedule.agent_of(j.into()).unwrap();
                let winner_bid = bids.time(winner, j.into());
                prop_assert_eq!(winner_bid, outcome.first_prices[j]);
                prop_assert!(outcome.second_prices[j] >= outcome.first_prices[j]);
            }
            // Compliant utilities non-negative.
            for u in utilities(&run, &bids) {
                prop_assert!(u >= 0);
            }
        }
    }
}
