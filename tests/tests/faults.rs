//! Crash-fault tolerance (the ABL-c experiment, Open Problem 11): with at
//! most `c` crashed agents the mechanism remains computable; beyond the
//! threshold it aborts rather than producing a wrong outcome.

use dmw::error::AbortReason;
use dmw::runner::DmwRunner;
use dmw_simnet::{FaultPlan, NodeId};
use integration_tests::{centralized_reference, config, random_bids, rng};

/// Crash `k` agents at round `round` and report the run.
fn run_with_crashes(
    n: usize,
    c: usize,
    m: usize,
    k: usize,
    round: u64,
    seed: u64,
) -> (dmw::DmwRun, dmw_mechanism::ExecutionTimes) {
    let mut r = rng(seed);
    let cfg = config(n, c, &mut r);
    let bids = random_bids(&cfg, m, &mut r);
    let mut plan = FaultPlan::none(n);
    for i in 0..k {
        // Crash the highest-indexed agents so the winner determinism of
        // low indices is preserved for reference comparisons.
        plan = plan.crash_at(NodeId(n - 1 - i), round);
    }
    let behaviors = vec![dmw::Behavior::Suggested; n];
    let run = DmwRunner::new(cfg)
        .run(&bids, &behaviors, plan, &mut r)
        .unwrap();
    (run, bids)
}

#[test]
fn tolerates_up_to_c_crashes_before_bidding() {
    // Agents crashed from round 0 never bid; the survivors auction among
    // themselves.
    for c in [1usize, 2] {
        let n = 7;
        let (run, bids) = run_with_crashes(n, c, 2, c, 0, 42 + c as u64);
        let outcome = run.completed().unwrap_or_else(|e| panic!("c={c}: {e}"));
        // The crashed agents win nothing and are paid nothing.
        for dead in (n - c)..n {
            assert!(outcome
                .schedule
                .tasks_of(dmw_mechanism::AgentId(dead))
                .is_empty());
            assert_eq!(outcome.payments[dead], 0);
        }
        // The outcome matches centralized MinWork over the survivors.
        let survivor_rows: Vec<Vec<u64>> = (0..n - c)
            .map(|i| bids.agent_row(dmw_mechanism::AgentId(i)).to_vec())
            .collect();
        let survivor_bids = dmw_mechanism::ExecutionTimes::from_rows(survivor_rows).unwrap();
        let reference = centralized_reference(&survivor_bids);
        for task in 0..2 {
            assert_eq!(
                outcome.schedule.agent_of(task.into()),
                reference.schedule.agent_of(task.into()),
                "c={c} task {task}"
            );
        }
    }
}

#[test]
fn winner_claims_cover_high_survivor_bids() {
    // With `c` pre-bidding crashes only `n − c` live share points remain,
    // but eq (14) wants `y* + c + 1` of them — more than `n − c` once the
    // survivor minimum bid `y*` exceeds `n − 2c − 1`. The winner-claim
    // fallback supplies the missing commitment-bound evaluations, so the
    // auction still completes in the starved regime.
    let n = 7;
    let c = 2;
    let mut r = rng(9);
    let cfg = config(n, c, &mut r);
    // Every survivor bids w_max = 4: y* = 4 needs 7 points, 5 survive.
    let rows: Vec<Vec<u64>> = (0..n).map(|_| vec![4]).collect();
    let bids = dmw_mechanism::ExecutionTimes::from_rows(rows).unwrap();
    let mut plan = FaultPlan::none(n);
    for i in 0..c {
        plan = plan.crash_at(NodeId(n - 1 - i), 0);
    }
    let behaviors = vec![dmw::Behavior::Suggested; n];
    let run = DmwRunner::new(cfg)
        .run(&bids, &behaviors, plan, &mut r)
        .unwrap();
    let outcome = run.completed().expect("fallback identification completes");
    // Ties break to the lowest index; the tied second price equals the
    // first, so the winner is paid its own bid.
    assert_eq!(
        outcome.schedule.agent_of(dmw_mechanism::TaskId(0)),
        Some(dmw_mechanism::AgentId(0))
    );
    assert_eq!(outcome.payments[0], 4);
}

#[test]
fn aborts_beyond_the_crash_threshold() {
    // c + 1 crashes exceed the tolerance: the protocol must abort, not
    // limp to a wrong answer.
    let (run, _) = run_with_crashes(7, 1, 2, 2, 0, 77);
    assert!(!run.is_completed());
    assert!(matches!(
        run.abort_reason(),
        Some(AbortReason::TooManyFaults {
            observed: 2,
            tolerated: 1
        })
    ));
}

#[test]
fn tolerates_crashes_after_bidding() {
    // An agent that crashes after distributing shares stays in the sum
    // polynomial E; the survivors resolve around its silence. Its bid can
    // even win the task.
    let n = 6;
    let c = 1;
    let (run, bids) = run_with_crashes(n, c, 2, 1, 1, 4243);
    let outcome = run
        .completed()
        .expect("one post-bidding crash is tolerated");
    // Every task's winner bid the (global) minimum, including possibly
    // the crashed agent.
    let reference = centralized_reference(&bids);
    assert_eq!(outcome.schedule, reference.schedule);
    assert_eq!(outcome.payments, reference.payments);
}

#[test]
fn aborts_on_too_many_post_bidding_crashes() {
    let (run, _) = run_with_crashes(6, 1, 1, 2, 1, 4244);
    assert!(!run.is_completed());
    assert!(matches!(
        run.abort_reason(),
        Some(AbortReason::TooManyFaults { .. }) | Some(AbortReason::Unresolvable)
    ));
}

#[test]
fn crash_during_resolution_phase_is_tolerated() {
    // Crash at round 2: lambdas are out, the agent never discloses or
    // publishes excluded pairs. Spare disclosers and surviving excluded
    // points carry the run.
    let n = 7;
    let c = 2;
    let (run, bids) = run_with_crashes(n, c, 2, 2, 2, 909);
    let outcome = run.completed().expect("post-lambda crashes tolerated");
    let reference = centralized_reference(&bids);
    assert_eq!(outcome.schedule, reference.schedule);
}

#[test]
fn zero_fault_configuration_has_no_slack() {
    // With c = 0 a single crash anywhere must abort.
    for round in 0..3 {
        let (run, _) = run_with_crashes(5, 0, 1, 1, round, 5000 + round);
        assert!(!run.is_completed(), "round {round}");
    }
}

#[test]
fn crashes_before_bidding_are_tolerated_under_delay() {
    // The crash-tolerance guarantee survives the move off lockstep: on a
    // jittered transport the survivors still auction among themselves.
    let mut r = rng(707);
    let n = 7;
    let cfg = config(n, 2, &mut r);
    let bids = random_bids(&cfg, 2, &mut r);
    let plan = FaultPlan::none(n)
        .crash_at(NodeId(5), 0)
        .crash_at(NodeId(6), 0);
    let transport: dmw_simnet::DelayTransport<dmw::messages::Body> =
        dmw_simnet::DelayTransport::with_faults(
            n,
            plan,
            dmw_simnet::DelayProfile::jittered(0, 2, 9),
        );
    let run = DmwRunner::new(cfg)
        .with_round_budget(200)
        .with_patience(8)
        .run_on(&bids, &vec![dmw::Behavior::Suggested; n], transport, &mut r)
        .unwrap();
    let outcome = run.completed().expect("two crashes within c = 2");
    for dead in [5usize, 6] {
        assert_eq!(outcome.payments[dead], 0, "crashed agent {dead} paid");
        assert!(
            outcome
                .schedule
                .tasks_of(dmw_mechanism::AgentId(dead))
                .is_empty(),
            "crashed agent {dead} won a task"
        );
    }
}

#[test]
fn a_link_slower_than_the_patience_budget_reads_as_dropped() {
    // A per-link delay schedule far beyond the patience budget is
    // indistinguishable from a dropped link at the victim: the split
    // participation view is caught by the mask comparison, never papered
    // over.
    let mut r = rng(708);
    let n = 5;
    let cfg = config(n, 1, &mut r);
    let bids = random_bids(&cfg, 1, &mut r);
    let plan = FaultPlan::none(n).delay_link(NodeId(0), NodeId(3), 50);
    let transport: dmw_simnet::DelayTransport<dmw::messages::Body> =
        dmw_simnet::DelayTransport::with_faults(n, plan, dmw_simnet::DelayProfile::synchronous());
    let run = DmwRunner::new(cfg)
        .with_round_budget(100)
        .with_patience(4)
        .run_on(&bids, &vec![dmw::Behavior::Suggested; n], transport, &mut r)
        .unwrap();
    assert!(!run.is_completed(), "the late share must not be waited for");
    assert!(matches!(
        run.abort_reason(),
        Some(AbortReason::InconsistentMask { .. }) | Some(AbortReason::TooManyFaults { .. })
    ));
}

#[test]
fn dropped_links_are_detected_as_inconsistency() {
    // A dropped share link makes the victim exclude the sender while
    // everyone else includes it: the mask comparison catches the split
    // view and the protocol aborts rather than diverging.
    let mut r = rng(606);
    let n = 5;
    let cfg = config(n, 1, &mut r);
    let bids = random_bids(&cfg, 1, &mut r);
    let plan = FaultPlan::none(n).drop_link(NodeId(0), NodeId(3));
    let behaviors = vec![dmw::Behavior::Suggested; n];
    let run = DmwRunner::new(cfg)
        .run(&bids, &behaviors, plan, &mut r)
        .unwrap();
    assert!(!run.is_completed());
    assert!(matches!(
        run.abort_reason(),
        Some(AbortReason::InconsistentMask { .. }) | Some(AbortReason::TooManyFaults { .. })
    ));
}
