//! Determinism contract of the `dmw-obs` metrics layer: the
//! [`MetricsSnapshot`] carried on every run is part of the observable
//! artifact, so it must be bit-identical whatever the batch thread
//! count, and identical between the lockstep transport and a delay
//! transport with the synchronous profile (which delivers on the same
//! schedule). Parallelism and transport plumbing are execution details,
//! never observables.

use dmw::batch::{aggregate_metrics, BatchRunner, TrialSpec};
use dmw::runner::DmwRunner;
use dmw::Behavior;
use dmw_simnet::{DelayProfile, DelayTransport, FaultPlan, NodeId};
use integration_tests::{config, random_bids, rng};

const SEED: u64 = 20050717;
const WIDTHS: [usize; 3] = [1, 2, 8];

#[test]
fn metrics_are_bit_identical_across_thread_counts() {
    let mut r = rng(SEED);
    let cfg = config(6, 1, &mut r);
    let runner = DmwRunner::new(cfg);
    let n = runner.config().agents();
    let trials: Vec<TrialSpec> = (0..12)
        .map(|t| {
            let bids = random_bids(runner.config(), 3, &mut r);
            match t % 3 {
                0 => TrialSpec::honest(bids),
                1 => {
                    let mut behaviors = vec![Behavior::Suggested; n];
                    behaviors[t % n] = Behavior::TamperedCommitments;
                    TrialSpec::honest(bids).with_behaviors(behaviors)
                }
                _ => TrialSpec::honest(bids)
                    .with_faults(FaultPlan::none(n).crash_at(NodeId(t % n), 2)),
            }
        })
        .collect();

    let reference = BatchRunner::with_threads(WIDTHS[0]).run_trials(&runner, SEED, &trials);
    let reference_aggregate = aggregate_metrics(&reference);
    assert!(
        reference_aggregate.counter_total("phase_messages") > 0,
        "the workload must actually record metrics"
    );
    for width in &WIDTHS[1..] {
        let results = BatchRunner::with_threads(*width).run_trials(&runner, SEED, &trials);
        for (i, (x, y)) in reference.iter().zip(&results).enumerate() {
            if let (Ok(x), Ok(y)) = (x, y) {
                assert_eq!(
                    x.metrics, y.metrics,
                    "trial {i} metrics differ at width {width}"
                );
            }
        }
        let aggregate = aggregate_metrics(&results);
        assert_eq!(
            reference_aggregate, aggregate,
            "aggregate metrics differ at width {width}"
        );
        assert_eq!(
            reference_aggregate.to_json(0),
            aggregate.to_json(0),
            "serialized metrics differ at width {width}"
        );
    }
}

#[test]
fn lockstep_and_synchronous_delay_report_identical_metrics() {
    // The synchronous delay profile delivers every message on the next
    // tick, exactly like the lockstep transport, so the two runs walk
    // the same schedule and must expose the same metrics — including
    // drop attribution when crash faults are in play.
    for (case, faults) in [
        ("fault-free", FaultPlan::none(6)),
        ("crash", FaultPlan::none(6).crash_at(NodeId(2), 3)),
    ] {
        let mut r = rng(SEED ^ 0x0B5);
        let cfg = config(6, 1, &mut r);
        let bids = random_bids(&cfg, 3, &mut r);
        let behaviors = vec![Behavior::Suggested; 6];
        let runner = DmwRunner::new(cfg);

        let lockstep = runner
            .run(&bids, &behaviors, faults.clone(), &mut rng(SEED + 9))
            .expect("valid lockstep run");
        let delayed = runner
            .run_on(
                &bids,
                &behaviors,
                DelayTransport::with_faults(6, faults, DelayProfile::synchronous()),
                &mut rng(SEED + 9),
            )
            .expect("valid delay run");

        assert_eq!(
            lockstep.result, delayed.result,
            "{case}: outcomes must agree before metrics can be compared"
        );
        assert_eq!(
            lockstep.metrics, delayed.metrics,
            "{case}: metrics differ between transports"
        );
        assert_eq!(
            lockstep.metrics.to_json(0),
            delayed.metrics.to_json(0),
            "{case}: serialized metrics differ between transports"
        );
    }
}
