//! Larger end-to-end scenarios: the full pipeline from continuous machine
//! times through quantization, the distributed auction, settlement and
//! objective evaluation — plus scaling smoke tests.

use dmw::runner::{utilities, DmwRunner};
use dmw_mechanism::optimal::{greedy_makespan, min_total_work};
use dmw_mechanism::quantize::Quantizer;
use dmw_mechanism::{AgentId, TaskId};
use integration_tests::{config, random_bids, rng};
use rand::Rng;

#[test]
fn continuous_pipeline_produces_consistent_economy() {
    let mut r = rng(5000);
    let n = 8;
    let m = 6;
    let cfg = config(n, 1, &mut r);
    // Continuous times, quantized onto W.
    let times: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..m).map(|_| r.gen_range(1.0..50.0)).collect())
        .collect();
    let quantizer = Quantizer::fit(&times, cfg.encoding().w_max() as usize).unwrap();
    let bids = quantizer.quantize(&times).unwrap();
    let run = DmwRunner::new(cfg).run_honest(&bids, &mut r).unwrap();
    let outcome = run.completed().unwrap();
    // Every task assigned exactly once; payments only to winners; winner
    // utility non-negative in bid units.
    let us = utilities(&run, &bids);
    for (i, &u) in us.iter().enumerate() {
        if outcome.schedule.tasks_of(AgentId(i)).is_empty() {
            assert_eq!(outcome.payments[i], 0, "loser {i} paid");
        }
        assert!(u >= 0, "agent {i} lost {u}");
    }
    // MinWork minimizes total work: compare to the direct baseline.
    let baseline = min_total_work(&bids).unwrap();
    assert_eq!(
        outcome.schedule.total_work(&bids).unwrap(),
        baseline.schedule.total_work(&bids).unwrap()
    );
}

#[test]
fn scales_to_sixteen_agents_and_eight_tasks() {
    let mut r = rng(5001);
    let n = 16;
    let m = 8;
    let cfg = config(n, 2, &mut r);
    let bids = random_bids(&cfg, m, &mut r);
    let run = DmwRunner::new(cfg).run_honest(&bids, &mut r).unwrap();
    let outcome = run.completed().unwrap();
    assert_eq!(outcome.schedule.tasks(), m);
    // Traffic is Theta(m n^2): sanity-check the constant is sane.
    let mn2 = (m * n * n) as u64;
    assert!(run.network.point_to_point > mn2, "at least one mn^2");
    assert!(run.network.point_to_point < 8 * mn2, "within 8x mn^2");
}

#[test]
fn makespan_objective_is_n_approximated_in_practice() {
    // MinWork optimizes total work, paying up to a factor n in makespan;
    // on random instances the factor is small. Compare against the greedy
    // makespan heuristic as a proxy for the optimum at this size.
    let mut r = rng(5002);
    let n = 6;
    let cfg = config(n, 1, &mut r);
    let bids = random_bids(&cfg, 6, &mut r);
    let run = DmwRunner::new(cfg).run_honest(&bids, &mut r).unwrap();
    let outcome = run.completed().unwrap();
    let dmw_makespan = outcome.schedule.makespan(&bids).unwrap();
    let greedy = greedy_makespan(&bids).unwrap();
    assert!(
        dmw_makespan <= (n as u64) * greedy.makespan,
        "makespan {dmw_makespan} beyond n x greedy {}",
        greedy.makespan
    );
}

#[test]
fn repeated_runs_are_reproducible_with_the_same_seed() {
    let build = |seed: u64| {
        let mut r = rng(seed);
        let cfg = config(6, 1, &mut r);
        let bids = random_bids(&cfg, 3, &mut r);
        let run = DmwRunner::new(cfg).run_honest(&bids, &mut r).unwrap();
        let o = run.completed().unwrap().clone();
        (o.schedule, o.payments, run.network.point_to_point)
    };
    assert_eq!(build(7777), build(7777));
}

#[test]
fn every_task_has_exactly_one_winner_and_consistent_prices() {
    let mut r = rng(5003);
    let cfg = config(9, 2, &mut r);
    let bids = random_bids(&cfg, 5, &mut r);
    let run = DmwRunner::new(cfg).run_honest(&bids, &mut r).unwrap();
    let outcome = run.completed().unwrap();
    for j in 0..5 {
        let winner = outcome.schedule.agent_of(TaskId(j)).unwrap();
        // The winner bid the first price.
        assert_eq!(bids.time(winner, TaskId(j)), outcome.first_prices[j]);
        // The second price is the minimum over the others.
        let second = (0..9)
            .filter(|&i| AgentId(i) != winner)
            .map(|i| bids.time(AgentId(i), TaskId(j)))
            .min()
            .unwrap();
        assert_eq!(outcome.second_prices[j], second);
        assert!(outcome.second_prices[j] >= outcome.first_prices[j]);
    }
}
