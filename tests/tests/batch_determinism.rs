//! Determinism contract of the batch engine: for a fixed seed, the
//! schedules, payments, traffic counters and full message traces of every
//! trial are bit-identical whatever the thread count — parallelism is an
//! execution detail, never an observable.

use dmw::batch::{BatchRunner, TrialSpec};
use dmw::runner::{DmwRun, DmwRunner};
use dmw::{Behavior, DmwError};
use dmw_simnet::{FaultPlan, NodeId};
use integration_tests::{config, random_bids, rng};

const SEED: u64 = 20050717;
const WIDTHS: [usize; 3] = [1, 2, 8];

fn assert_identical(a: &[Result<DmwRun, DmwError>], b: &[Result<DmwRun, DmwError>], width: usize) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (Ok(x), Ok(y)) => {
                assert_eq!(
                    x.result, y.result,
                    "trial {i} outcome differs at width {width}"
                );
                assert_eq!(
                    x.network, y.network,
                    "trial {i} traffic differs at width {width}"
                );
                assert_eq!(x.trace, y.trace, "trial {i} trace differs at width {width}");
            }
            (Err(x), Err(y)) => assert_eq!(x, y, "trial {i} error differs at width {width}"),
            _ => panic!("trial {i} ok/err status differs at width {width}"),
        }
    }
}

#[test]
fn honest_batches_are_bit_identical_across_thread_counts() {
    let mut r = rng(SEED);
    let cfg = config(6, 1, &mut r);
    let runner = DmwRunner::new(cfg);
    let instances: Vec<_> = (0..12)
        .map(|_| random_bids(runner.config(), 3, &mut r))
        .collect();

    let reference = BatchRunner::with_threads(WIDTHS[0]).run_honest(&runner, SEED, &instances);
    assert!(reference
        .iter()
        .all(|run| run.as_ref().is_ok_and(DmwRun::is_completed)));
    for width in &WIDTHS[1..] {
        let results = BatchRunner::with_threads(*width).run_honest(&runner, SEED, &instances);
        assert_identical(&reference, &results, *width);
    }
}

#[test]
fn misbehaving_and_faulty_batches_are_bit_identical_across_thread_counts() {
    let mut r = rng(SEED + 1);
    let cfg = config(5, 1, &mut r);
    let runner = DmwRunner::new(cfg);
    let n = runner.config().agents();
    let trials: Vec<TrialSpec> = (0..9)
        .map(|t| {
            let bids = random_bids(runner.config(), 2, &mut r);
            match t % 3 {
                0 => TrialSpec::honest(bids),
                1 => {
                    let mut behaviors = vec![Behavior::Suggested; n];
                    behaviors[t % n] = Behavior::TamperedCommitments;
                    TrialSpec::honest(bids).with_behaviors(behaviors)
                }
                _ => TrialSpec::honest(bids)
                    .with_faults(FaultPlan::none(n).crash_at(NodeId(t % n), 2)),
            }
        })
        .collect();

    let reference = BatchRunner::with_threads(WIDTHS[0]).run_trials(&runner, SEED, &trials);
    for width in &WIDTHS[1..] {
        let results = BatchRunner::with_threads(*width).run_trials(&runner, SEED, &trials);
        assert_identical(&reference, &results, *width);
    }
}

#[test]
fn parallel_share_verification_matches_the_sequential_verdict() {
    // The same seeded replay at verification width 8 and width 1 must
    // agree on everything observable, including abort verdicts.
    let mut r = rng(SEED + 2);
    let cfg = config(6, 1, &mut r);
    let bids = random_bids(&cfg, 2, &mut r);
    let mut behaviors = vec![Behavior::Suggested; 6];
    behaviors[3] = Behavior::TamperedCommitments;

    let sequential = DmwRunner::new(cfg.clone())
        .with_verify_threads(1)
        .run(&bids, &behaviors, FaultPlan::none(6), &mut rng(SEED + 3))
        .expect("valid run");
    let parallel = DmwRunner::new(cfg)
        .with_verify_threads(8)
        .run(&bids, &behaviors, FaultPlan::none(6), &mut rng(SEED + 3))
        .expect("valid run");
    assert_eq!(sequential.result, parallel.result);
    assert_eq!(sequential.network, parallel.network);
    assert_eq!(sequential.trace, parallel.trace);
}
