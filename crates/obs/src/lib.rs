//! # dmw-obs — deterministic observability core
//!
//! Zero-dependency metrics primitives for the DMW workspace: counters,
//! gauges and fixed-bucket histograms keyed by a small structured
//! [`Key`] `(name, phase, agent, peer, task)` and timed exclusively in
//! **logical ticks** — the simulator's round counter — never wall
//! clock. That restriction is what keeps every run bit-replayable: two
//! executions of the same seed produce byte-identical
//! [`MetricsSnapshot`]s regardless of host load, thread count or
//! transport timing model (see `tests/tests/metrics_determinism.rs`).
//! Wall-clock timing exists only in the bench layer, and the static
//! lint rule L7 (`dmw-lint`) denies `std::time::{Instant, SystemTime}`
//! in every crate this one feeds.
//!
//! ## Model
//!
//! * **Counters** are monotone sums (`incr`): messages sent, bytes,
//!   drops, verifications.
//! * **Gauges** are merged by *maximum* (`gauge_max`): run length in
//!   ticks, high-water marks.
//! * **Histograms** bucket a value against a `&'static` bound slice
//!   (`observe`): bucket `i` counts observations `<= bounds[i]`, with a
//!   trailing overflow bucket. Bounds are part of the identity of the
//!   series — merging mismatched bounds is a programming error caught
//!   by a debug assertion.
//!
//! All storage is `BTreeMap`-backed so iteration order, equality and
//! the hand-rolled JSON rendering are deterministic by construction.
//! Aggregation follows the workspace's `NetworkStats` idiom:
//! [`MetricsSnapshot::absorb`] plus `Add`/`AddAssign`/`Sum` impls, so
//! the batch harness can fold per-trial snapshots with the same
//! `.sum()` it already uses for traffic totals.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Bucket bounds (in logical ticks) for message delivery-delay
/// histograms. Lockstep delivery always takes exactly one tick; the
/// delay transport adds its drawn jitter on top.
pub const DELAY_TICK_BUCKETS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16];

/// A structured metric key: a `'static` metric name plus optional
/// phase / agent / peer / task labels.
///
/// Label order in the derived `Ord` (name, phase, agent, peer, task)
/// fixes map iteration order, which in turn fixes JSON output order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Key {
    /// Metric name, e.g. `"link_messages"`.
    pub name: &'static str,
    /// Protocol phase label, e.g. `"bidding"` (see `Phase::label`).
    pub phase: Option<&'static str>,
    /// Acting / sending agent index.
    pub agent: Option<u32>,
    /// Peer (recipient) agent index, for per-link series.
    pub peer: Option<u32>,
    /// Task index, for per-task series.
    pub task: Option<u32>,
}

impl Key {
    /// A bare key with only a metric name.
    pub const fn named(name: &'static str) -> Key {
        Key {
            name,
            phase: None,
            agent: None,
            peer: None,
            task: None,
        }
    }

    /// Sets the phase label.
    #[must_use]
    pub const fn phase(mut self, phase: &'static str) -> Key {
        self.phase = Some(phase);
        self
    }

    /// Sets the acting-agent label.
    #[must_use]
    pub const fn agent(mut self, agent: u32) -> Key {
        self.agent = Some(agent);
        self
    }

    /// Sets the peer (recipient) label.
    #[must_use]
    pub const fn peer(mut self, peer: u32) -> Key {
        self.peer = Some(peer);
        self
    }

    /// Sets the task label.
    #[must_use]
    pub const fn task(mut self, task: u32) -> Key {
        self.task = Some(task);
        self
    }
}

impl fmt::Display for Key {
    /// Renders as `name` or `name{phase=bidding,agent=1,peer=2,task=0}`
    /// with only the present labels, in fixed order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        let mut sep = '{';
        if let Some(p) = self.phase {
            write!(f, "{sep}phase={p}")?;
            sep = ',';
        }
        if let Some(a) = self.agent {
            write!(f, "{sep}agent={a}")?;
            sep = ',';
        }
        if let Some(p) = self.peer {
            write!(f, "{sep}peer={p}")?;
            sep = ',';
        }
        if let Some(t) = self.task {
            write!(f, "{sep}task={t}")?;
            sep = ',';
        }
        if sep == ',' {
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A fixed-bucket histogram: `counts` has one slot per bound plus a
/// trailing overflow bucket. Bucket `i` counts observations
/// `<= bounds[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper-inclusive bucket bounds, smallest first.
    pub bounds: &'static [u64],
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// An empty histogram over `bounds`.
    pub fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            counts: vec![0; bounds.len().saturating_add(1)],
        }
    }

    /// Records one observation of `value`.
    pub fn observe(&mut self, value: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get_mut(slot) {
            *c += 1;
        }
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another histogram's buckets into this one. Bounds must
    /// match — series identity includes its bounds.
    pub fn absorb(&mut self, other: &Histogram) {
        debug_assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bucket bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }
}

/// Where instrumented code publishes measurements. Implemented by
/// [`MetricsSnapshot`]; taking `&mut dyn MetricsSink` (or a generic)
/// lets the transports and the phase state machine stay ignorant of
/// storage.
pub trait MetricsSink {
    /// Adds `by` to the counter at `key`.
    fn incr(&mut self, key: Key, by: u64);

    /// Raises the gauge at `key` to `value` if larger (merge = max).
    fn gauge_max(&mut self, key: Key, value: u64);

    /// Records `value` into the histogram at `key`, creating it over
    /// `bounds` on first use.
    fn observe(&mut self, key: Key, bounds: &'static [u64], value: u64);
}

/// A complete, order-deterministic set of metrics for one run (or an
/// aggregate of many — see [`MetricsSnapshot::absorb`]).
///
/// Merge semantics: counters add, gauges take the maximum, histograms
/// add bucket-wise. Equality is exact, which is what the determinism
/// suite relies on.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone event counts.
    pub counters: BTreeMap<Key, u64>,
    /// High-water marks (merged by max).
    pub gauges: BTreeMap<Key, u64>,
    /// Fixed-bucket distributions.
    pub histograms: BTreeMap<Key, Histogram>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Reads a counter, zero if never incremented.
    pub fn counter(&self, key: &Key) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Reads a gauge, zero if never set.
    pub fn gauge(&self, key: &Key) -> u64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// Reads a histogram, if the series exists.
    pub fn histogram(&self, key: &Key) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Sums every counter whose metric name is `name`, ignoring
    /// labels — e.g. total `link_messages` across all links.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Sums counters named `name` grouped by their phase label;
    /// unlabelled entries are skipped. The map is ordered by phase
    /// string, so rendering is deterministic.
    pub fn counter_by_phase(&self, name: &str) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for (key, value) in &self.counters {
            if key.name == name {
                if let Some(phase) = key.phase {
                    *out.entry(phase).or_insert(0) += value;
                }
            }
        }
        out
    }

    /// Removes every counter, gauge and histogram series whose metric
    /// name is `name`, whatever its labels, returning the filtered
    /// snapshot. Equivalence tests use this to compare snapshots
    /// *modulo* a deliberately engine-dependent series (e.g. the
    /// scheduler's `events_processed` gauge, which counts processed
    /// ticks and therefore legitimately differs between the event
    /// engine and the polling oracle while everything else must stay
    /// bit-identical).
    #[must_use]
    pub fn without_metric(mut self, name: &str) -> MetricsSnapshot {
        self.counters.retain(|k, _| k.name != name);
        self.gauges.retain(|k, _| k.name != name);
        self.histograms.retain(|k, _| k.name != name);
        self
    }

    /// Accumulates another snapshot into this one: counters add,
    /// gauges max, histogram buckets add. Mirrors
    /// `NetworkStats::absorb`, so the batch harness folds snapshots
    /// the same way it folds traffic counters.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (key, value) in &other.counters {
            *self.counters.entry(*key).or_insert(0) += value;
        }
        for (key, value) in &other.gauges {
            let slot = self.gauges.entry(*key).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (key, hist) in &other.histograms {
            self.histograms
                .entry(*key)
                .or_insert_with(|| Histogram::new(hist.bounds))
                .absorb(hist);
        }
    }

    /// Renders the snapshot as a self-contained JSON object with
    /// deterministic key order (the `BTreeMap` order of [`Key`]).
    /// Hand-rolled because the vendored `serde` is a marker-only stub.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let item = " ".repeat(indent + 4);
        let mut out = String::from("{\n");

        let scalar_block = |title: &str, map: &BTreeMap<Key, u64>, trailing: bool| {
            let mut block = format!("{inner}\"{title}\": {{");
            let mut first = true;
            for (key, value) in map {
                if !first {
                    block.push(',');
                }
                first = false;
                block.push_str(&format!("\n{item}\"{key}\": {value}"));
            }
            if !first {
                block.push_str(&format!("\n{inner}"));
            }
            block.push('}');
            if trailing {
                block.push(',');
            }
            block.push('\n');
            block
        };

        out.push_str(&scalar_block("counters", &self.counters, true));
        out.push_str(&scalar_block("gauges", &self.gauges, true));

        out.push_str(&format!("{inner}\"histograms\": {{"));
        let mut first = true;
        for (key, hist) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let bounds: Vec<String> = hist.bounds.iter().map(u64::to_string).collect();
            let counts: Vec<String> = hist.counts.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\n{item}\"{key}\": {{\"bounds\": [{}], \"counts\": [{}]}}",
                bounds.join(", "),
                counts.join(", ")
            ));
        }
        if !first {
            out.push_str(&format!("\n{inner}"));
        }
        out.push_str("}\n");
        out.push_str(&format!("{pad}}}"));
        out
    }
}

impl MetricsSink for MetricsSnapshot {
    fn incr(&mut self, key: Key, by: u64) {
        *self.counters.entry(key).or_insert(0) += by;
    }

    fn gauge_max(&mut self, key: Key, value: u64) {
        let slot = self.gauges.entry(key).or_insert(0);
        *slot = (*slot).max(value);
    }

    fn observe(&mut self, key: Key, bounds: &'static [u64], value: u64) {
        self.histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }
}

impl std::ops::AddAssign for MetricsSnapshot {
    fn add_assign(&mut self, other: MetricsSnapshot) {
        self.absorb(&other);
    }
}

impl std::ops::Add for MetricsSnapshot {
    type Output = MetricsSnapshot;

    fn add(mut self, other: MetricsSnapshot) -> MetricsSnapshot {
        self += other;
        self
    }
}

impl std::iter::Sum for MetricsSnapshot {
    fn sum<I: Iterator<Item = MetricsSnapshot>>(iter: I) -> MetricsSnapshot {
        iter.fold(MetricsSnapshot::default(), std::ops::Add::add)
    }
}

impl<'a> std::iter::Sum<&'a MetricsSnapshot> for MetricsSnapshot {
    fn sum<I: Iterator<Item = &'a MetricsSnapshot>>(iter: I) -> MetricsSnapshot {
        iter.fold(MetricsSnapshot::default(), |mut acc, s| {
            acc.absorb(s);
            acc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_display_renders_only_present_labels() {
        assert_eq!(Key::named("run_ticks").to_string(), "run_ticks");
        assert_eq!(
            Key::named("phase_messages")
                .phase("bidding")
                .agent(1)
                .task(0)
                .to_string(),
            "phase_messages{phase=bidding,agent=1,task=0}"
        );
        assert_eq!(
            Key::named("link_bytes").agent(2).peer(4).to_string(),
            "link_bytes{agent=2,peer=4}"
        );
    }

    #[test]
    fn key_order_is_name_then_labels() {
        let a = Key::named("a").agent(9);
        let b = Key::named("b");
        let b0 = Key::named("b").agent(0);
        assert!(a < b);
        assert!(b < b0, "labelled key sorts after its bare name");
    }

    #[test]
    fn histogram_buckets_are_upper_inclusive_with_overflow() {
        let mut h = Histogram::new(&[1, 2, 4]);
        for v in [0, 1, 2, 3, 4, 5, 100] {
            h.observe(v);
        }
        // <=1: {0,1}; <=2: {2}; <=4: {3,4}; overflow: {5,100}.
        assert_eq!(h.counts, vec![2, 1, 2, 2]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn merge_semantics_counters_add_gauges_max_histograms_add() {
        let mut a = MetricsSnapshot::new();
        a.incr(Key::named("msgs"), 3);
        a.gauge_max(Key::named("run_ticks"), 6);
        a.observe(Key::named("delay"), &[1, 2], 1);

        let mut b = MetricsSnapshot::new();
        b.incr(Key::named("msgs"), 4);
        b.incr(Key::named("drops"), 1);
        b.gauge_max(Key::named("run_ticks"), 9);
        b.observe(Key::named("delay"), &[1, 2], 5);

        let total: MetricsSnapshot = [a.clone(), b.clone()].iter().sum();
        assert_eq!(total.counter(&Key::named("msgs")), 7);
        assert_eq!(total.counter(&Key::named("drops")), 1);
        assert_eq!(total.gauge(&Key::named("run_ticks")), 9);
        let h = total.histogram(&Key::named("delay")).expect("series");
        assert_eq!(h.counts, vec![1, 0, 1]);
        assert_eq!(a.clone() + b.clone(), total);
        let mut acc = a;
        acc += b;
        assert_eq!(acc, total);
    }

    #[test]
    fn query_helpers_group_by_name_and_phase() {
        let mut m = MetricsSnapshot::new();
        m.incr(Key::named("phase_messages").phase("bidding").agent(0), 2);
        m.incr(Key::named("phase_messages").phase("bidding").agent(1), 3);
        m.incr(Key::named("phase_messages").phase("claimed").agent(0), 1);
        m.incr(Key::named("other"), 50);
        assert_eq!(m.counter_total("phase_messages"), 6);
        let by_phase = m.counter_by_phase("phase_messages");
        assert_eq!(by_phase.get("bidding"), Some(&5));
        assert_eq!(by_phase.get("claimed"), Some(&1));
        assert_eq!(by_phase.len(), 2);
    }

    #[test]
    fn without_metric_strips_a_series_across_all_stores() {
        let mut m = MetricsSnapshot::new();
        m.incr(Key::named("events_processed").agent(0), 2);
        m.gauge_max(Key::named("events_processed"), 9);
        m.gauge_max(Key::named("run_ticks"), 6);
        m.observe(Key::named("events_processed"), &[1, 2], 1);
        m.observe(Key::named("delay"), &[1, 2], 1);
        let filtered = m.without_metric("events_processed");
        assert_eq!(filtered.counter_total("events_processed"), 0);
        assert_eq!(filtered.gauge(&Key::named("events_processed")), 0);
        assert!(filtered
            .histogram(&Key::named("events_processed"))
            .is_none());
        assert_eq!(filtered.gauge(&Key::named("run_ticks")), 6);
        assert!(filtered.histogram(&Key::named("delay")).is_some());
    }

    #[test]
    fn json_is_deterministic_and_shaped() {
        let mut m = MetricsSnapshot::new();
        m.incr(Key::named("msgs").agent(1), 2);
        m.gauge_max(Key::named("run_ticks"), 6);
        m.observe(Key::named("delay"), &[1, 2], 1);
        let json = m.to_json(0);
        assert_eq!(json, m.clone().to_json(0), "rendering is a pure function");
        assert!(json.contains("\"msgs{agent=1}\": 2"));
        assert!(json.contains("\"run_ticks\": 6"));
        assert!(json.contains("\"delay\": {\"bounds\": [1, 2], \"counts\": [1, 0, 0]}"));
    }

    #[test]
    fn empty_snapshot_renders_empty_objects() {
        let json = MetricsSnapshot::new().to_json(0);
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }
}
