//! L6 fixture: raw round-number dispatch in a protocol phase module.
//! Every `round`-keyed construct here must be caught when linted under a
//! `crates/core/src/phases/` path.

pub fn dispatch(round: u64) -> u32 {
    match round {
        0 => 1,
        other => u32::from(other > 10),
    }
}

pub fn late_enough(round: u64) -> bool {
    round >= 4
}

pub fn is_third(round: u64) -> bool {
    3 == round
}
