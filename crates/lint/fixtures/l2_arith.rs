// Fixture: every L2 shape. Never compiled; scanned by tests/fixtures.rs
// as if it lived at crates/crypto/src/fixture.rs.

fn raw_field_arithmetic(zp: &Zp, a: u64, b: u64, p: u64) -> u64 {
    let reduced = (a * b) % p;
    let powed = a.pow(3);
    let wrapped = a.wrapping_mul(b);
    let off_by_one = zp.mul(a, b) + 1;
    reduced + powed + wrapped + off_by_one
}
