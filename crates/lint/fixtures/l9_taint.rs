//! L9 fixture: secret values reaching serialization sinks.
//!
//! Never compiled — linted via `lint_source` under synthetic paths.
//! Expected in scope: three L9 findings (direct, let-propagated,
//! source-call) with the sanitized and waived cases staying silent.

// A raw secret parameter reaching a sink constructor.
fn leak_direct(bid: u64, task: usize) -> Body {
    Body::Disclose { task, f_values: vec![bid] }
}

// Taint propagates through a let chain into a sink call.
fn leak_derived(bid: u64, w: &mut Writer) {
    let doubled = bid + bid;
    let boxed = vec![doubled];
    w.encode(&boxed);
}

// A declared source *call* feeding a sink call.
fn leak_source_call(poly: &Poly, w: &mut Writer) {
    let value = poly.e(3);
    w.encode(value);
}

// Sanitized: only committed/masked forms may be serialized, and
// `share_for` is an approved masking API.
fn clean_sanitized(polys: &BidPolynomials, zq: &Zq, alpha: u64, task: usize) -> Body {
    let bundle = polys.share_for(zq, alpha);
    Body::Shares { task, bundle }
}

// Public metadata flows to sinks freely.
fn clean_metadata(task: usize, w: &mut Writer) {
    let header = task + 1;
    w.encode(header);
}

// The justified escape hatch (L9 is waivable).
fn waived(bid: u64, task: usize) -> Body {
    // dmw-lint: allow(L9): fixture demonstrates the justified escape hatch
    Body::Disclose { task, f_values: vec![bid] }
}
