// Fixture: every L7 shape. Never compiled; scanned by tests/fixtures.rs
// under a deterministic-crate path (L7 scopes to crates/{core,simnet,
// crypto,obs}/src/). `SystemTime` also trips L4, which applies
// everywhere; `Instant` is L7's own catch.

fn wall_clock_reads() -> u64 {
    let started = std::time::Instant::now();
    let epoch = SystemTime::now();
    started.elapsed().as_nanos() as u64
}
