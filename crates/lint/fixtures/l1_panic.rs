// Fixture: every L1 shape. Never compiled; scanned by tests/fixtures.rs
// as if it lived at crates/crypto/src/fixture.rs.

fn panic_paths(x: Option<u64>, v: &[u64]) -> u64 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a == 0 {
        panic!("zero");
    }
    if b == 1 {
        unreachable!();
    }
    a + v[0]
}
