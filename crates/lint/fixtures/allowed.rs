// Fixture: justified allowlist escapes. Never compiled; scanned by
// tests/fixtures.rs as if it lived at crates/crypto/src/fixture.rs.
// dmw-lint: allow-file(L1-index): fixture exercising the file-wide escape

fn with_escapes(x: Option<u64>, v: &[u64]) -> u64 {
    // dmw-lint: allow(L1): construction guarantees presence in this fixture
    let a = x.unwrap();
    let b = v[0]; // suppressed by the allow-file directive above
    a + b
}

fn trailing() -> u64 {
    let mut rng = thread_rng(); // dmw-lint: allow(L4): fixture demonstrating a trailing allow
    rng.gen()
}
