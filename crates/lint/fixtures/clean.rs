// Fixture: protocol-critical code that satisfies every rule. Never
// compiled; scanned by tests/fixtures.rs as if it lived at
// crates/crypto/src/fixture.rs.

fn well_behaved(zp: &Zp, zq: &Zq, shares: &[u64], i: usize) -> Result<u64, Error> {
    // "unwrap" and panic! in strings and comments are invisible.
    let label = "do not unwrap or panic! here";
    let value = shares.get(i).copied().ok_or(Error::Missing)?;
    let product = zp.mul(value, zp.pow(value, 3));
    let sum = zq.add(product, value);
    match classify(sum) {
        Class::Low => Ok(sum),
        Class::High => Err(Error::TooHigh),
    }
}

#[cfg(test)]
mod tests {
    // Tests may unwrap freely; the rules skip test modules.
    fn in_tests() {
        let x: Option<u64> = Some(1);
        let _ = x.unwrap();
        let v = [1, 2, 3];
        let _ = v[0];
        panic!("fine in tests");
    }
}
