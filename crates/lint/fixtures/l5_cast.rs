// Fixture: L5 truncating casts. Never compiled; scanned by
// tests/fixtures.rs as if it lived at crates/modmath/src/fixture.rs.

fn narrow(residue: u64) -> usize {
    let small = residue as u32;
    let index = residue as usize;
    let wide = residue as u128; // widening: legal
    index + small as usize
}
