// Fixture: every L4 shape. Never compiled; scanned by tests/fixtures.rs
// under an arbitrary path (L4 applies everywhere).

fn ambient_entropy() -> u64 {
    let mut rng = rand::thread_rng();
    let other = StdRng::from_entropy();
    let now = SystemTime::now();
    rng.gen()
}
