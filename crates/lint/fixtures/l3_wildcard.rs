// Fixture: L3 wildcard dispatch. Never compiled; scanned by
// tests/fixtures.rs as if it lived at crates/core/src/codec.rs.

fn dispatch(m: Message) -> u8 {
    match m {
        Message::Shares { .. } => 1,
        Message::Commit { .. } => 2,
        _ => 0,
    }
}
