//! L8 fixture: naked retry/resend loops in a reliability-bearing module.
//! Never compiled; scanned by tests/fixtures.rs as if it lived at
//! `crates/core/src/reliable.rs`. The three unbudgeted loops must be
//! caught; the budget-gated sweep at the bottom must stay clean.

pub fn spin_until_acked(msg: &Msg) {
    loop {
        resend(msg);
    }
}

pub fn nag(msg: &Msg, acked: &bool) {
    while !*acked {
        retransmit(msg);
    }
}

pub fn reschedule(pending: &mut [Pending], now: u64, timeout: u64) {
    for p in pending {
        p.next_retry = now + timeout;
    }
}

pub fn budgeted_sweep(pending: &mut [Pending], now: u64, budget: u32) {
    for p in pending.iter_mut() {
        if p.attempts >= budget {
            break;
        }
        p.next_retry = now + (4 << p.attempts);
        p.attempts += 1;
    }
}
