//! L8 fixture: naked retry/resend/nack loops in a reliability-bearing
//! module. Never compiled; scanned by tests/fixtures.rs as if it lived
//! at `crates/core/src/reliable.rs`. The five unbudgeted loops must be
//! caught; the budget-gated sweeps at the bottom must stay clean.

pub fn spin_until_acked(msg: &Msg) {
    loop {
        resend(msg);
    }
}

pub fn nag(msg: &Msg, acked: &bool) {
    while !*acked {
        retransmit(msg);
    }
}

pub fn reschedule(pending: &mut [Pending], now: u64, timeout: u64) {
    for p in pending {
        p.next_retry = now + timeout;
    }
}

pub fn beg_for_gap(gap: &Gap, closed: &bool) {
    while !*closed {
        send_nack(gap.lo, gap.hi);
    }
}

pub fn mute_peers(links: &mut [Link]) {
    for link in links {
        link.suppress_sends = true;
    }
}

pub fn budgeted_sweep(pending: &mut [Pending], now: u64, budget: u32) {
    for p in pending.iter_mut() {
        if p.attempts >= budget {
            break;
        }
        p.next_retry = now + (4 << p.attempts);
        p.attempts += 1;
    }
}

pub fn budgeted_nack_path(pending: &mut [Pending], lo: u64, hi: u64, budget: u32) {
    for p in pending.iter_mut() {
        if p.seq >= lo && p.seq <= hi && p.nack_retx < budget {
            p.nack_retx += 1;
            p.fast_retx = true;
        }
    }
}
