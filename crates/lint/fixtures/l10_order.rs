//! L10 fixture: iteration over hash-ordered collections.
//!
//! Never compiled — linted via `lint_source` under synthetic paths.
//! Expected in scope: two L10 findings (method-chain iteration and a
//! bare `for` loop over a hash-typed field) with membership probes and
//! the waived case staying silent.

// Iteration over a hash-ordered local tally.
fn tally(claims: &[Vec<u64>]) -> Option<(u64, usize)> {
    let mut votes: HashMap<u64, usize> = HashMap::new();
    for &v in claims.iter().flat_map(|c| c.iter()) {
        *votes.entry(v).or_insert(0) += 1;
    }
    votes.into_iter().max_by_key(|&(_, count)| count)
}

struct Plan {
    links: HashSet<(usize, usize)>,
}

impl Plan {
    // A bare `for` loop over a hash-typed field.
    fn render(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for l in &self.links {
            out.push(*l);
        }
        out
    }

    // Membership probes stay legal: only iteration observes order.
    fn contains(&self, l: (usize, usize)) -> bool {
        self.links.contains(&l)
    }

    // The justified escape hatch (L10 is waivable).
    fn waived(&self) -> usize {
        // dmw-lint: allow(L10): fixture demonstrates the justified escape hatch
        self.links.iter().count()
    }
}
