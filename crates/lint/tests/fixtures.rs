//! Fixture tests: each rule catches its seeded violation file, the clean
//! fixture produces nothing, and the allowlist escapes work end to end.
//!
//! The fixtures live in `crates/lint/fixtures/` (a directory the
//! workspace walker skips) and are linted via [`dmw_lint::lint_source`]
//! under synthetic in-scope paths, so these tests pin both the rule
//! logic and the path scoping.

use dmw_lint::{lint_source, Finding};

fn lint_fixture(synthetic_path: &str, source: &str) -> Vec<Finding> {
    lint_source(synthetic_path, source)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn l1_fixture_catches_every_panic_shape() {
    let findings = lint_fixture(
        "crates/crypto/src/fixture.rs",
        include_str!("../fixtures/l1_panic.rs"),
    );
    let rules = rules_of(&findings);
    assert_eq!(
        rules.iter().filter(|r| **r == "L1").count(),
        5,
        "unwrap + expect + panic! + unreachable! + v[0]: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.allow_key == "L1-index"),
        "indexing reports under the L1-index allow key: {findings:?}"
    );
}

#[test]
fn l2_fixture_catches_raw_field_arithmetic() {
    let findings = lint_fixture(
        "crates/crypto/src/fixture.rs",
        include_str!("../fixtures/l2_arith.rs"),
    );
    assert_eq!(
        rules_of(&findings),
        vec!["L2"; 4],
        "% + raw pow + wrapping_mul + op-adjacent field call: {findings:?}"
    );
}

#[test]
fn l3_fixture_catches_wildcard_arm() {
    let findings = lint_fixture(
        "crates/core/src/codec.rs",
        include_str!("../fixtures/l3_wildcard.rs"),
    );
    assert_eq!(rules_of(&findings), vec!["L3"], "{findings:?}");
}

#[test]
fn l4_fixture_catches_ambient_entropy() {
    // In a deterministic crate the `SystemTime` read trips L7 as well
    // (overlapping coverage is deliberate: L4 is waivable, L7 is not).
    let findings = lint_fixture(
        "crates/simnet/src/fixture.rs",
        include_str!("../fixtures/l4_entropy.rs"),
    );
    assert_eq!(
        rules_of(&findings),
        vec!["L4", "L4", "L4", "L7"],
        "thread_rng + from_entropy + SystemTime (+L7 overlap): {findings:?}"
    );
    // Outside the deterministic crates only L4 applies.
    let findings = lint_fixture(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/l4_entropy.rs"),
    );
    assert_eq!(
        rules_of(&findings),
        vec!["L4"; 3],
        "thread_rng + from_entropy + SystemTime: {findings:?}"
    );
}

#[test]
fn l7_fixture_catches_wall_clock_in_deterministic_crates_only() {
    let source = include_str!("../fixtures/l7_wallclock.rs");
    for path in [
        "crates/core/src/fixture.rs",
        "crates/simnet/src/fixture.rs",
        "crates/crypto/src/fixture.rs",
        "crates/obs/src/fixture.rs",
    ] {
        let findings = lint_fixture(path, source);
        assert_eq!(
            findings.iter().filter(|f| f.rule == "L7").count(),
            2,
            "{path}: Instant + SystemTime: {findings:?}"
        );
    }
    // The bench harness times wall clock by design: no L7 there (the
    // fixture's `SystemTime` still trips the everywhere-scoped L4).
    let findings = lint_fixture("crates/bench/src/fixture.rs", source);
    assert!(
        findings.iter().all(|f| f.rule != "L7"),
        "L7 must not police the bench harness: {findings:?}"
    );
}

#[test]
fn l7_allows_are_rejected_even_with_justification() {
    let source = "// dmw-lint: allow(L7): very good reason\nlet t = Instant::now();\n";
    let findings = lint_fixture("crates/obs/src/fixture.rs", source);
    assert!(
        findings.iter().any(|f| f.rule == "L7"),
        "the violation survives: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "allowlist" && f.message.contains("cannot be allowlisted")),
        "{findings:?}"
    );
}

#[test]
fn l5_fixture_catches_narrowing_casts_only() {
    let findings = lint_fixture(
        "crates/modmath/src/fixture.rs",
        include_str!("../fixtures/l5_cast.rs"),
    );
    assert_eq!(
        rules_of(&findings),
        vec!["L5"; 3],
        "as u32 / as usize twice; as u128 stays legal: {findings:?}"
    );
}

#[test]
fn l6_fixture_catches_round_dispatch_in_phase_modules() {
    let source = include_str!("../fixtures/l6_round.rs");
    let findings = lint_fixture("crates/core/src/phases/fixture.rs", source);
    assert_eq!(
        rules_of(&findings),
        vec!["L6"; 3],
        "match round + round >= 4 + 3 == round: {findings:?}"
    );
    // The same source is legal in the scheduler, where round numbers are
    // the scheduler's own business.
    assert!(
        lint_fixture("crates/core/src/runner.rs", source).is_empty(),
        "L6 must not police the scheduler"
    );
}

#[test]
fn l8_fixture_catches_naked_retry_loops_in_reliability_modules() {
    let source = include_str!("../fixtures/l8_retry.rs");
    for path in [
        "crates/core/src/reliable.rs",
        "crates/core/src/agent.rs",
        "crates/core/src/phases/fixture.rs",
    ] {
        let findings = lint_fixture(path, source);
        assert_eq!(
            findings.iter().filter(|f| f.rule == "L8").count(),
            5,
            "{path}: bare loop + while + retry-bookkeeping for + nack \
             begging while + suppressor for; the budgeted sweeps stay \
             clean: {findings:?}"
        );
    }
    // The scheduler and the transports drive no resends themselves:
    // L8 is scoped out there.
    assert!(
        lint_fixture("crates/core/src/runner.rs", source).is_empty(),
        "L8 must not police the scheduler"
    );
}

#[test]
fn l8_allows_are_rejected_even_with_justification() {
    let source = "// dmw-lint: allow(L8): very good reason\nloop { resend(m); }\n";
    let findings = lint_fixture("crates/core/src/reliable.rs", source);
    assert!(
        findings.iter().any(|f| f.rule == "L8"),
        "the violation survives: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "allowlist" && f.message.contains("cannot be allowlisted")),
        "{findings:?}"
    );
}

#[test]
fn clean_fixture_is_clean_under_the_strictest_scope() {
    let findings = lint_fixture(
        "crates/crypto/src/fixture.rs",
        include_str!("../fixtures/clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn allowlist_escapes_suppress_with_justification() {
    let findings = lint_fixture(
        "crates/crypto/src/fixture.rs",
        include_str!("../fixtures/allowed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn stripping_the_justification_revives_the_finding() {
    let source = include_str!("../fixtures/allowed.rs")
        .replace(": construction guarantees presence in this fixture", "");
    let findings = lint_fixture("crates/crypto/src/fixture.rs", &source);
    assert!(
        findings.iter().any(|f| f.rule == "L1"),
        "unjustified allow must not suppress: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.rule == "allowlist"),
        "and is itself reported: {findings:?}"
    );
}

// ---------------------------------------------------------------------
// The flow-sensitive families: L9, L10 and L11.
// ---------------------------------------------------------------------

#[test]
fn l9_fixture_catches_direct_derived_and_source_call_leaks() {
    let findings = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/l9_taint.rs"),
    );
    assert_eq!(
        findings.iter().filter(|f| f.rule == "L9").count(),
        3,
        "direct + let-propagated + source-call; sanitized and waived \
         stay silent: {findings:?}"
    );
}

#[test]
fn l9_scope_pins_the_secrecy_crates() {
    let source = include_str!("../fixtures/l9_taint.rs");
    // In scope: the protocol core and the crypto layer.
    for path in ["crates/core/src/fixture.rs", "crates/crypto/src/fixture.rs"] {
        let findings = lint_fixture(path, source);
        assert_eq!(
            findings.iter().filter(|f| f.rule == "L9").count(),
            3,
            "{path}: {findings:?}"
        );
    }
    // Out of scope: simnet (L10-only territory) and the bench harness.
    // The fixture's allow(L9) then goes unused, which is itself reported.
    for path in [
        "crates/simnet/src/fixture.rs",
        "crates/bench/src/fixture.rs",
    ] {
        let findings = lint_fixture(path, source);
        assert!(
            findings.iter().all(|f| f.rule != "L9"),
            "{path}: L9 must not fire out of scope: {findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "allowlist" && f.message.contains("unused")),
            "{path}: the unused allow is reported: {findings:?}"
        );
    }
}

#[test]
fn l10_fixture_catches_iteration_not_membership() {
    let findings = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/l10_order.rs"),
    );
    assert_eq!(
        findings.iter().filter(|f| f.rule == "L10").count(),
        2,
        "method-chain + for-loop; membership and waived stay silent: {findings:?}"
    );
}

#[test]
fn l10_scope_pins_the_deterministic_crates() {
    let source = include_str!("../fixtures/l10_order.rs");
    for path in [
        "crates/core/src/fixture.rs",
        "crates/crypto/src/fixture.rs",
        "crates/simnet/src/fixture.rs",
        "crates/obs/src/fixture.rs",
    ] {
        let findings = lint_fixture(path, source);
        assert_eq!(
            findings.iter().filter(|f| f.rule == "L10").count(),
            2,
            "{path}: {findings:?}"
        );
    }
    for path in [
        "crates/bench/src/fixture.rs",
        "crates/modmath/src/fixture.rs",
    ] {
        let findings = lint_fixture(path, source);
        assert!(
            findings.iter().all(|f| f.rule != "L10"),
            "{path}: L10 must not fire out of scope: {findings:?}"
        );
    }
}

#[test]
fn l11_real_spec_matches_the_real_phase_machine() {
    let out = dmw_lint::phase_graph::check_sources(
        "docs/phase_graph.toml",
        Some(include_str!("../../../docs/phase_graph.toml")),
        &[(
            "crates/core/src/phases/mod.rs".to_owned(),
            include_str!("../../core/src/phases/mod.rs").to_owned(),
        )],
    );
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn l11_denies_an_undeclared_transition_injected_into_the_real_code() {
    let drifted = include_str!("../../core/src/phases/mod.rs").replace(
        "Phase::SecondPrice => Phase::Claimed,",
        "Phase::SecondPrice => Phase::Bidding,",
    );
    assert_ne!(drifted, include_str!("../../core/src/phases/mod.rs"));
    let out = dmw_lint::phase_graph::check_sources(
        "docs/phase_graph.toml",
        Some(include_str!("../../../docs/phase_graph.toml")),
        &[("crates/core/src/phases/mod.rs".to_owned(), drifted)],
    );
    assert!(
        out.iter()
            .any(|f| f.finding.message.contains("undeclared transition")),
        "{out:?}"
    );
    assert!(
        out.iter().any(|f| f.finding.message.contains("spec drift")),
        "the removed edge is reported from the spec side too: {out:?}"
    );
}

#[test]
fn l11_allows_are_rejected_even_with_justification() {
    // L11 is unwaivable: the spec file is the escape hatch, so an allow
    // directive is itself a finding wherever it appears.
    let source = "// dmw-lint: allow(L11): very good reason\nfn f() {}\n";
    let findings = lint_fixture("crates/core/src/phases/fixture.rs", source);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "allowlist" && f.message.contains("cannot be allowlisted")),
        "{findings:?}"
    );
}

#[test]
fn l2_and_l3_allows_are_rejected_even_with_justification() {
    let source = "// dmw-lint: allow(L2): very good reason\nlet x = a % b;\n";
    let findings = lint_fixture("crates/crypto/src/fixture.rs", source);
    assert!(
        findings.iter().any(|f| f.rule == "L2"),
        "the violation survives: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "allowlist" && f.message.contains("cannot be allowlisted")),
        "{findings:?}"
    );
}
