//! A minimal TOML subset reader for the lint's own config files.
//!
//! The build environment is offline (no `toml` crate), and the two files
//! this lint reads — `lint.toml` and `docs/phase_graph.toml` — need only
//! a tiny grammar: `[table]` headers, `key = "string"` and
//! `key = ["a", "b", …]` entries (arrays may span lines), comments and
//! blanks. Anything outside that subset is a hard parse error, not a
//! silent skip: a config typo must fail the lint run, never relax it.

use std::collections::BTreeMap;

/// One parsed file: table name → key → value. Top-level keys live under
/// the table name `""`.
#[derive(Debug, Clone, Default)]
pub struct TomlDoc {
    tables: BTreeMap<String, BTreeMap<String, Value>>,
}

/// A value: the subset has only strings and string arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An array of quoted strings.
    List(Vec<String>),
}

impl TomlDoc {
    /// The string value at `table.key`, if present and a string.
    pub fn str(&self, table: &str, key: &str) -> Option<&str> {
        match self.tables.get(table)?.get(key)? {
            Value::Str(s) => Some(s),
            Value::List(_) => None,
        }
    }

    /// The array value at `table.key`, if present and an array.
    pub fn list(&self, table: &str, key: &str) -> Option<&[String]> {
        match self.tables.get(table)?.get(key)? {
            Value::List(v) => Some(v),
            Value::Str(_) => None,
        }
    }

    /// True when the table exists (even if empty).
    pub fn has_table(&self, table: &str) -> bool {
        self.tables.contains_key(table)
    }
}

/// Parses `src`; on failure returns a message with a 1-based line number.
pub fn parse(src: &str) -> Result<TomlDoc, String> {
    let mut doc = TomlDoc::default();
    doc.tables.entry(String::new()).or_default();
    let mut table = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unclosed table header"))?;
            if name.starts_with('[') {
                return Err(format!(
                    "line {lineno}: array-of-tables is outside the supported subset"
                ));
            }
            table = name.trim().to_owned();
            doc.tables.entry(table.clone()).or_default();
            continue;
        }
        let (key, value_src) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim().to_owned();
        let mut value_src = value_src.trim().to_owned();
        // Multi-line array: keep consuming lines until the bracket closes.
        if value_src.starts_with('[') {
            while !closes_bracket(&value_src) {
                let (_, next) = lines
                    .next()
                    .ok_or_else(|| format!("line {lineno}: unclosed array"))?;
                value_src.push(' ');
                value_src.push_str(strip_comment(next).trim());
            }
        }
        let value = parse_value(&value_src).map_err(|e| format!("line {lineno}: {e}"))?;
        doc.tables
            .entry(table.clone())
            .or_default()
            .insert(key, value);
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// True once every `[` in `src` outside strings has a matching `]`.
fn closes_bracket(src: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in src.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(src: &str) -> Result<Value, String> {
    if let Some(inner) = src.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unclosed array".to_owned())?;
        let mut items = Vec::new();
        for part in split_top_commas(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                Value::List(_) => return Err("nested arrays are unsupported".to_owned()),
            }
        }
        return Ok(Value::List(items));
    }
    let s = src
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("unsupported value `{src}` — only strings and string arrays"))?;
    if s.contains('"') || s.contains('\\') {
        return Err("escapes inside strings are unsupported".to_owned());
    }
    Ok(Value::Str(s.to_owned()))
}

/// Splits on commas outside quotes.
fn split_top_commas(src: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in src.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&src[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&src[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_strings_and_arrays_parse() {
        let doc = parse(
            "top = \"a\"\n\
             [l9]\n\
             # comment\n\
             scope = [\"crates/core/src/\", \"crates/crypto/src/\"]\n\
             name = \"taint\" # trailing\n",
        )
        .unwrap();
        assert_eq!(doc.str("", "top"), Some("a"));
        assert_eq!(doc.str("l9", "name"), Some("taint"));
        assert_eq!(doc.list("l9", "scope").unwrap().len(), 2);
        assert!(doc.has_table("l9"));
        assert!(!doc.has_table("l12"));
    }

    #[test]
    fn multiline_arrays_with_trailing_commas_parse() {
        let doc = parse(
            "edges = [\n\
             \"Bidding -> Commitments\",   # first hop\n\
             \"Commitments -> Resolution\",\n\
             ]\n",
        )
        .unwrap();
        assert_eq!(doc.list("", "edges").unwrap().len(), 2);
        assert_eq!(doc.list("", "edges").unwrap()[0], "Bidding -> Commitments");
    }

    #[test]
    fn out_of_subset_constructs_are_hard_errors() {
        assert!(parse("x = 3").is_err());
        assert!(parse("[[edge]]\nfrom = \"A\"").is_err());
        assert!(parse("x = [\"a\"").is_err());
        assert!(parse("[t\nx = \"a\"").is_err());
        assert!(parse("just a line").is_err());
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let doc = parse("x = \"a#b\"").unwrap();
        assert_eq!(doc.str("", "x"), Some("a#b"));
    }
}
