//! `dmw-lint` — workspace-wide protocol-invariant static analysis.
//!
//! The DMW protocol's safety rests on a handful of code-level invariants
//! that the type system cannot express: no panic paths in protocol
//! dispatch, no raw machine arithmetic on field residues, no wildcard
//! dispatch over protocol enums, no ambient entropy, no truncating casts
//! in the arithmetic core, no wall-clock reads in the deterministic
//! crates, no unbudgeted retry loops in the reliability sublayer. This
//! crate enforces them in two layers:
//!
//! * **lexical** — a small Rust lexer ([`lexer`]), eight token-pattern
//!   rules L1–L8 ([`rules`]) scoped to the modules where they are
//!   unambiguous;
//! * **flow-sensitive** — a token-tree parser ([`parse`]) feeding the
//!   L9 secrecy-taint and L10 determinism-order passes ([`flow`],
//!   configured by the checked-in `lint.toml`, see [`config`]) and the
//!   L11 phase-graph conformance check ([`phase_graph`], against
//!   `docs/phase_graph.toml`).
//!
//! A justified-allowlist escape hatch ([`allow`]) covers the waivable
//! rules; findings render as human diagnostics or as a stable JSON
//! report ([`report`]). See `docs/static_analysis.md` for the rule
//! catalogue and rationale.
//!
//! Entry points: [`lint_source`] for one file (used by the fixture
//! tests), [`lint_workspace`] for the tree walk plus the crate-level
//! passes (used by the CLI and the tier-1 integration test).

pub mod allow;
pub mod config;
pub mod flow;
pub mod lexer;
pub mod parse;
pub mod phase_graph;
pub mod report;
pub mod rules;
pub mod toml_lite;

pub use config::LintConfig;
pub use rules::Finding;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never scanned: build output, vendored stubs (external
/// idiom, not protocol code) and the lint's own deliberately-dirty
/// fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Protocol-critical files inside `crates/core` (L1 scope).
const CORE_CRITICAL: &[&str] = &[
    "crates/core/src/codec.rs",
    "crates/core/src/runner.rs",
    "crates/core/src/agent.rs",
    "crates/core/src/payment.rs",
];

/// A rule pass: tokens in, findings out.
type Rule = fn(&[lexer::Token]) -> Vec<Finding>;

/// Which rules police `path` (workspace-relative, `/`-separated).
fn rules_for_path(path: &str) -> Vec<Rule> {
    let mut out: Vec<Rule> = Vec::new();
    let in_crypto = path.starts_with("crates/crypto/src/");
    let in_modmath = path.starts_with("crates/modmath/src/");
    // The typed phase state machine: the protocol equations moved here
    // from agent.rs, and its round-independence is what L6 protects.
    let in_phases = path.starts_with("crates/core/src/phases/");

    if in_crypto || in_phases || CORE_CRITICAL.contains(&path) {
        out.push(rules::l1);
    }
    // codec.rs is excluded from L2: byte/bit packing legitimately uses
    // `%` and shifts on lengths, never on field values.
    if in_crypto
        || in_phases
        || [
            "crates/core/src/agent.rs",
            "crates/core/src/payment.rs",
            "crates/core/src/runner.rs",
        ]
        .contains(&path)
    {
        out.push(rules::l2);
    }
    if ["crates/core/src/codec.rs", "crates/core/src/runner.rs"].contains(&path) {
        out.push(rules::l3);
    }
    out.push(rules::l4); // everywhere
    if in_modmath || in_crypto {
        out.push(rules::l5);
    }
    // The scheduler (runner.rs) is the only module allowed to reason
    // about round numbers; the agent and its phases must not.
    if in_phases || path == "crates/core/src/agent.rs" {
        out.push(rules::l6);
    }
    // The deterministic crates: protocol, simulated network, crypto and
    // the metrics core all time themselves in logical ticks, so any
    // wall-clock read there breaks replay. The bench harness is
    // deliberately outside this scope — timing is its whole job.
    let in_deterministic = [
        "crates/core/src/",
        "crates/simnet/src/",
        "crates/crypto/src/",
        "crates/obs/src/",
    ]
    .iter()
    .any(|prefix| path.starts_with(prefix));
    if in_deterministic {
        out.push(rules::l7);
    }
    // The modules that may legitimately drive resends: the agent, its
    // phases, and the reliable-delivery sublayer itself. Every retry
    // loop there must be visibly bounded by a budget (L8).
    if in_phases || ["crates/core/src/agent.rs", "crates/core/src/reliable.rs"].contains(&path) {
        out.push(rules::l8);
    }
    out
}

/// Lints one file's source as if it lived at `path` (workspace-relative),
/// under the embedded `lint.toml` and without the crate-level L9 sink
/// summaries. Returns surviving findings, including allowlist-misuse
/// findings.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    lint_source_with(
        path,
        source,
        LintConfig::embedded(),
        &flow::SinkSummaries::new(),
    )
}

/// [`lint_source`] with an explicit configuration and the sink-like
/// function summaries derived by the crate-level pass
/// ([`flow::sink_summaries`]).
pub fn lint_source_with(
    path: &str,
    source: &str,
    cfg: &LintConfig,
    extra_sinks: &flow::SinkSummaries,
) -> Vec<Finding> {
    let (tokens, comments) = lexer::lex(source);
    let tokens = rules::strip_test_regions(&tokens);
    let mut findings = Vec::new();
    for rule in rules_for_path(path) {
        findings.extend(rule(&tokens));
    }
    let in_l9 = LintConfig::in_scope(&cfg.l9_scope, path);
    let in_l10 = LintConfig::in_scope(&cfg.l10_scope, path);
    if in_l9 || in_l10 {
        let parsed = parse::parse(&tokens);
        if in_l9 {
            findings.extend(flow::l9(&tokens, &parsed, cfg, extra_sinks));
        }
        if in_l10 {
            findings.extend(flow::l10(&tokens, &parsed));
        }
    }
    let mut parse_errors = Vec::new();
    let directives = allow::parse_directives(&comments, &mut parse_errors);
    let mut out = allow::apply(&directives, findings);
    out.extend(parse_errors);
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// A finding located in a specific file.
#[derive(Debug, Clone)]
pub struct FileFinding {
    /// Workspace-relative path.
    pub path: String,
    /// The finding itself.
    pub finding: Finding,
}

impl std::fmt::Display for FileFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.finding.line, self.finding.rule, self.finding.message
        )
    }
}

/// Lints every `.rs` file under `root` (skipping `SKIP_DIRS`), sorted
/// by path then line, plus the crate-level passes: L9 sink
/// summarization across the in-scope crates and the L11 phase-graph
/// conformance check. A `lint.toml` at `root` overrides the embedded
/// configuration; a malformed one is a hard error.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<FileFinding>> {
    let cfg = match fs::read_to_string(root.join("lint.toml")) {
        Ok(src) => {
            LintConfig::parse(&src).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        }
        Err(_) => LintConfig::embedded().clone(),
    };
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut sources = Vec::new();
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_default();
        sources.push((rel_str, source));
    }

    // Crate-level L9: derive sink-like functions across every in-scope
    // file, so taint is caught one call away from the literal sink.
    let parsed_in_scope: Vec<(parse::ParsedFile, Vec<lexer::Token>)> = sources
        .iter()
        .filter(|(path, _)| LintConfig::in_scope(&cfg.l9_scope, path))
        .map(|(_, src)| {
            let (tokens, _) = lexer::lex(src);
            let tokens = rules::strip_test_regions(&tokens);
            (parse::parse(&tokens), tokens)
        })
        .collect();
    let extra_sinks = flow::sink_summaries(&parsed_in_scope, &cfg);

    let mut out = Vec::new();
    for (rel_str, source) in &sources {
        for finding in lint_source_with(rel_str, source, &cfg, &extra_sinks) {
            out.push(FileFinding {
                path: rel_str.clone(),
                finding,
            });
        }
    }

    // Crate-level L11: the phase graph against its spec.
    let spec_src = fs::read_to_string(root.join(&cfg.l11_spec)).ok();
    let phase_files: Vec<(String, String)> = sources
        .iter()
        .filter(|(path, _)| path.starts_with("crates/core/src/phases/"))
        .cloned()
        .collect();
    out.extend(phase_graph::check_sources(
        &cfg.l11_spec,
        spec_src.as_deref(),
        &phase_files,
    ));

    out.sort_by(|a, b| {
        (&a.path, a.finding.line, a.finding.rule).cmp(&(&b.path, b.finding.line, b.finding.rule))
    });
    Ok(out)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_selects_the_documented_rule_sets() {
        // L2 fires in agent.rs but not codec.rs or modmath for raw `%`.
        let modsrc = "fn f(a: u64, b: u64) -> u64 { a % b }";
        assert!(lint_source("crates/modmath/src/field.rs", modsrc).is_empty());
        assert_eq!(lint_source("crates/core/src/agent.rs", modsrc).len(), 1);
        assert!(lint_source("crates/core/src/codec.rs", modsrc).is_empty());

        let wild = "fn g(m: M) -> u8 { match m { M::A => 1, _ => 2 } }";
        assert_eq!(lint_source("crates/core/src/codec.rs", wild).len(), 1);
        assert!(lint_source("crates/core/src/messages.rs", wild).is_empty());
    }

    #[test]
    fn l4_applies_everywhere() {
        let src = "fn f() { let r = thread_rng(); }";
        assert_eq!(lint_source("tests/src/lib.rs", src).len(), 1);
        assert_eq!(lint_source("crates/simnet/src/net.rs", src).len(), 1);
    }

    #[test]
    fn findings_are_line_sorted() {
        let src = "fn f() { x.unwrap();\n y.expect(\"z\"); }";
        let out = lint_source("crates/crypto/src/shares.rs", src);
        assert_eq!(out.len(), 2);
        assert!(out[0].line < out[1].line);
    }
}
