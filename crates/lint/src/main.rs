//! CLI for the workspace lint: `cargo run -p dmw-lint [ROOT] [FLAGS]`.
//!
//! Human mode prints `path:line: [rule] message` for every violation;
//! `--format json` emits the stable report of `dmw_lint::report`
//! (to stdout, or to `--out PATH`). Either way the exit code is
//! non-zero when any finding exists, so both modes slot directly into
//! `scripts/check.sh` and CI.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: None,
        json: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => return Ok(None),
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => {
                    return Err(format!(
                        "--format expects `human` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--out" => {
                args.out = Some(PathBuf::from(it.next().ok_or("--out expects a file path")?));
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            root if args.root.is_none() => args.root = Some(PathBuf::from(root)),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    if args.out.is_some() && !args.json {
        return Err("--out requires --format json".to_owned());
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!(
                "dmw-lint — protocol-invariant static analysis for the DMW workspace\n\n\
                 USAGE: dmw-lint [ROOT] [--format human|json] [--out PATH]\n\n\
                 ROOT defaults to the workspace root found by walking up from\n\
                 the current directory to the first Cargo.toml containing\n\
                 `[workspace]`. `--format json` emits the stable report schema\n\
                 (`dmw-lint-report/v1`); `--out` writes it to a file instead of\n\
                 stdout. Rules and allowlist conventions are documented in\n\
                 docs/static_analysis.md."
            );
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("dmw-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let root = match args.root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("dmw-lint: no workspace root found (run inside the repo or pass ROOT)");
            return ExitCode::FAILURE;
        }
    };

    let findings = match dmw_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dmw-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.json {
        let json = dmw_lint::report::to_json(&findings);
        match &args.out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("dmw-lint: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "dmw-lint: wrote {} ({} finding(s))",
                    path.display(),
                    findings.len()
                );
            }
            None => print!("{json}"),
        }
    } else if findings.is_empty() {
        println!("dmw-lint: clean ({})", root.display());
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!("dmw-lint: {} violation(s)", findings.len());
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        dir = Path::new(&dir).parent()?.to_path_buf();
    }
}
