//! CLI for the workspace lint: `cargo run -p dmw-lint [ROOT]`.
//!
//! Prints `path:line: [rule] message` for every violation and exits
//! non-zero when any exist, so it slots directly into `scripts/check.sh`
//! and CI.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    if matches!(arg.as_deref(), Some("--help" | "-h")) {
        println!(
            "dmw-lint — protocol-invariant static analysis for the DMW workspace\n\n\
             USAGE: dmw-lint [ROOT]\n\n\
             ROOT defaults to the workspace root found by walking up from\n\
             the current directory to the first Cargo.toml containing\n\
             `[workspace]`. Rules and allowlist conventions are documented\n\
             in docs/static_analysis.md."
        );
        return ExitCode::SUCCESS;
    }

    let root = match arg.map(PathBuf::from).or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("dmw-lint: no workspace root found (run inside the repo or pass ROOT)");
            return ExitCode::FAILURE;
        }
    };

    match dmw_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("dmw-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("dmw-lint: {} violation(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("dmw-lint: io error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        dir = Path::new(&dir).parent()?.to_path_buf();
    }
}
