//! L11 — phase-graph conformance.
//!
//! The `Phase` state machine in `crates/core/src/phases/` is the
//! protocol's documented control skeleton. This rule keeps the code and
//! the machine-readable spec (`docs/phase_graph.toml`) from drifting
//! apart silently, in both directions:
//!
//! * variant set: the spec's `phases` list must equal the `Phase` enum;
//! * edge set: every `Phase::A => Phase::B` transition arm found under
//!   `phases/` must be declared in the spec, and every declared edge
//!   must exist in code;
//! * shape: every phase must be reachable from `initial` along spec
//!   edges, and `terminal` must be absorbing (no outgoing edge except
//!   its self-loop).
//!
//! L11 is unwaivable by design: the spec file *is* the escape hatch. An
//! intended new transition is a one-line spec edit reviewed next to the
//! code change; an allow comment would hide exactly the drift this rule
//! exists to catch.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{strip_test_regions, Finding};
use crate::toml_lite;
use crate::FileFinding;
use std::collections::{BTreeMap, BTreeSet};

/// The parsed `docs/phase_graph.toml`.
#[derive(Debug, Clone)]
pub struct PhaseGraphSpec {
    /// Declared phase names.
    pub phases: Vec<String>,
    /// Entry phase.
    pub initial: String,
    /// Absorbing terminal phase.
    pub terminal: String,
    /// Declared transition edges.
    pub edges: Vec<(String, String)>,
}

impl PhaseGraphSpec {
    /// Parses the spec file. Edges use the `"From -> To"` form so the
    /// file stays within the lint's TOML subset and diffs one edge per
    /// line.
    pub fn parse(src: &str) -> Result<PhaseGraphSpec, String> {
        let doc = toml_lite::parse(src)?;
        let phases = doc
            .list("", "phases")
            .ok_or("phase_graph.toml: missing `phases` array")?
            .to_vec();
        let initial = doc
            .str("", "initial")
            .ok_or("phase_graph.toml: missing `initial`")?
            .to_owned();
        let terminal = doc
            .str("", "terminal")
            .ok_or("phase_graph.toml: missing `terminal`")?
            .to_owned();
        let mut edges = Vec::new();
        for e in doc
            .list("", "edges")
            .ok_or("phase_graph.toml: missing `edges` array")?
        {
            let (from, to) = e
                .split_once("->")
                .ok_or_else(|| format!("phase_graph.toml: edge `{e}` is not `From -> To`"))?;
            edges.push((from.trim().to_owned(), to.trim().to_owned()));
        }
        Ok(PhaseGraphSpec {
            phases,
            initial,
            terminal,
            edges,
        })
    }
}

/// One transition arm found in code.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CodeEdge {
    /// Source phase.
    pub from: String,
    /// Target phase.
    pub to: String,
    /// 1-based line of the arm.
    pub line: u32,
}

/// Extracts `Phase::A => Phase::B` arms from one token stream.
pub fn extract_edges(tokens: &[Token]) -> Vec<CodeEdge> {
    let mut out = Vec::new();
    let is = |t: Option<&Token>, c: char| t.map(|t| t.kind) == Some(TokenKind::Punct(c));
    fn ident(t: Option<&Token>) -> Option<&str> {
        t.and_then(|t| (t.kind == TokenKind::Ident).then_some(t.text.as_str()))
    }
    for i in 0..tokens.len() {
        // Pattern: Phase :: A = > Phase :: B
        if ident(tokens.get(i)) == Some("Phase")
            && is(tokens.get(i + 1), ':')
            && is(tokens.get(i + 2), ':')
            && is(tokens.get(i + 4), '=')
            && is(tokens.get(i + 5), '>')
            && ident(tokens.get(i + 6)) == Some("Phase")
            && is(tokens.get(i + 7), ':')
            && is(tokens.get(i + 8), ':')
        {
            if let (Some(from), Some(to)) = (ident(tokens.get(i + 3)), ident(tokens.get(i + 9))) {
                out.push(CodeEdge {
                    from: from.to_owned(),
                    to: to.to_owned(),
                    line: tokens[i].line,
                });
            }
        }
    }
    out
}

/// Runs the full conformance check over in-memory sources: the spec text
/// and every `(path, source)` under `phases/`. Separated from the disk
/// walk so fixture tests can inject drifted copies of either side.
pub fn check_sources(
    spec_path: &str,
    spec_src: Option<&str>,
    phase_files: &[(String, String)],
) -> Vec<FileFinding> {
    let at = |path: &str, line: u32, message: String| FileFinding {
        path: path.to_owned(),
        finding: Finding {
            rule: "L11",
            allow_key: "L11",
            line,
            message,
        },
    };
    let mut out = Vec::new();

    let Some(spec_src) = spec_src else {
        out.push(at(
            spec_path,
            1,
            "phase-graph spec is missing — every `Phase` transition must be declared here"
                .to_owned(),
        ));
        return out;
    };
    let spec = match PhaseGraphSpec::parse(spec_src) {
        Ok(s) => s,
        Err(e) => {
            out.push(at(spec_path, 1, e));
            return out;
        }
    };

    // Gather the code side: the Phase enum and every transition arm.
    let mut variants: Option<(String, u32, Vec<String>)> = None; // (path, line, names)
    let mut code_edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (path, src) in phase_files {
        let (tokens, _) = lex(src);
        let tokens = strip_test_regions(&tokens);
        for e in extract_edges(&tokens) {
            code_edges
                .entry((e.from, e.to))
                .or_insert_with(|| (path.clone(), e.line));
        }
        let parsed = crate::parse::parse(&tokens);
        for en in &parsed.enums {
            if en.name == "Phase" {
                variants = Some((path.clone(), en.line, en.variants.clone()));
            }
        }
    }
    let Some((enum_path, enum_line, variants)) = variants else {
        out.push(at(
            spec_path,
            1,
            "no `Phase` enum found under phases/ — cannot check the transition graph".to_owned(),
        ));
        return out;
    };

    // Variant-set conformance, both directions.
    let spec_set: BTreeSet<&str> = spec.phases.iter().map(String::as_str).collect();
    let code_set: BTreeSet<&str> = variants.iter().map(String::as_str).collect();
    for missing in code_set.difference(&spec_set) {
        out.push(at(
            &enum_path,
            enum_line,
            format!("phase `{missing}` is not declared in the spec's `phases` list"),
        ));
    }
    for ghost in spec_set.difference(&code_set) {
        out.push(at(
            spec_path,
            1,
            format!("spec declares phase `{ghost}` which does not exist in the `Phase` enum"),
        ));
    }

    // Edge-set conformance, both directions.
    let spec_edges: BTreeSet<(&str, &str)> = spec
        .edges
        .iter()
        .map(|(f, t)| (f.as_str(), t.as_str()))
        .collect();
    for ((from, to), (path, line)) in &code_edges {
        if !spec_edges.contains(&(from.as_str(), to.as_str())) {
            out.push(at(
                path,
                *line,
                format!(
                    "undeclared transition `{from} -> {to}` — add it to the spec \
                     (docs/phase_graph.toml) if intended"
                ),
            ));
        }
    }
    for (from, to) in &spec_edges {
        if !code_edges.contains_key(&((*from).to_owned(), (*to).to_owned())) {
            out.push(at(
                spec_path,
                1,
                format!("spec drift: declared transition `{from} -> {to}` is not implemented"),
            ));
        }
    }

    // Spec-shape checks: endpoints declared, initial/terminal declared,
    // reachability, absorbing terminal.
    for name in [&spec.initial, &spec.terminal] {
        if !spec_set.contains(name.as_str()) {
            out.push(at(
                spec_path,
                1,
                format!("`{name}` is named initial/terminal but missing from `phases`"),
            ));
        }
    }
    for (from, to) in &spec.edges {
        for end in [from, to] {
            if !spec_set.contains(end.as_str()) {
                out.push(at(
                    spec_path,
                    1,
                    format!("edge endpoint `{end}` is not a declared phase"),
                ));
            }
        }
    }
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    let mut frontier = vec![spec.initial.as_str()];
    while let Some(p) = frontier.pop() {
        if !reachable.insert(p) {
            continue;
        }
        for (from, to) in &spec_edges {
            if *from == p {
                frontier.push(to);
            }
        }
    }
    for phase in &spec.phases {
        if !reachable.contains(phase.as_str()) {
            out.push(at(
                spec_path,
                1,
                format!("phase `{phase}` is unreachable from `{}`", spec.initial),
            ));
        }
    }
    for (from, to) in &spec_edges {
        if *from == spec.terminal && to != from {
            out.push(at(
                spec_path,
                1,
                format!(
                    "terminal `{}` must be absorbing but has edge to `{to}`",
                    spec.terminal
                ),
            ));
        }
    }

    out.sort_by(|a, b| (&a.path, a.finding.line).cmp(&(&b.path, b.finding.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
phases = ["Bidding", "Commitments", "Claimed"]
initial = "Bidding"
terminal = "Claimed"
edges = [
  "Bidding -> Commitments",
  "Commitments -> Claimed",
  "Claimed -> Claimed",
]
"#;

    const CODE: &str = "pub enum Phase { Bidding, Commitments, Claimed }\n\
        impl Phase { pub fn next(self) -> Phase { match self {\n\
        Phase::Bidding => Phase::Commitments,\n\
        Phase::Commitments => Phase::Claimed,\n\
        Phase::Claimed => Phase::Claimed,\n\
        } } }";

    fn run(spec: &str, code: &str) -> Vec<FileFinding> {
        check_sources(
            "docs/phase_graph.toml",
            Some(spec),
            &[("crates/core/src/phases/mod.rs".to_owned(), code.to_owned())],
        )
    }

    #[test]
    fn conforming_code_and_spec_are_clean() {
        assert!(run(SPEC, CODE).is_empty(), "{:?}", run(SPEC, CODE));
    }

    #[test]
    fn an_undeclared_transition_is_denied() {
        let drifted = CODE.replace(
            "Phase::Claimed => Phase::Claimed",
            "Phase::Claimed => Phase::Bidding",
        );
        let out = run(SPEC, &drifted);
        assert!(
            out.iter()
                .any(|f| f.finding.message.contains("undeclared transition")),
            "{out:?}"
        );
        // The removed self-loop also shows up as spec drift.
        assert!(out.iter().any(|f| f.finding.message.contains("spec drift")));
    }

    #[test]
    fn spec_only_phases_and_unreachable_phases_are_denied() {
        let ghost = SPEC.replace(
            "\"Bidding\", \"Commitments\", \"Claimed\"",
            "\"Bidding\", \"Commitments\", \"Claimed\", \"Limbo\"",
        );
        let out = run(&ghost, CODE);
        assert!(out.iter().any(|f| f
            .finding
            .message
            .contains("does not exist in the `Phase` enum")));
        assert!(out
            .iter()
            .any(|f| f.finding.message.contains("unreachable")));
    }

    #[test]
    fn a_missing_spec_is_itself_a_finding() {
        let out = check_sources("docs/phase_graph.toml", None, &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].finding.rule, "L11");
    }

    #[test]
    fn a_non_absorbing_terminal_is_denied() {
        let spec = SPEC.replace(
            "\"Claimed -> Claimed\"",
            "\"Claimed -> Claimed\", \"Claimed -> Bidding\"",
        );
        let code = CODE.replace(
            "Phase::Claimed => Phase::Claimed,",
            "Phase::Claimed => Phase::Claimed,\nPhase::Claimed => Phase::Bidding,",
        );
        let out = run(&spec, &code);
        assert!(
            out.iter()
                .any(|f| f.finding.message.contains("must be absorbing")),
            "{out:?}"
        );
    }
}
