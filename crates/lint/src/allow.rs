//! Allowlist directives — the escape hatch, and the rules *about* the
//! escape hatch.
//!
//! Grammar (line comments only):
//!
//! ```text
//! // dmw-lint: allow(L1): justification text
//! // dmw-lint: allow-file(L1-index): justification text
//! ```
//!
//! A plain `allow` suppresses matching findings on its own line and the
//! line below (so the directive can sit above the offending statement or
//! trail it). `allow-file` suppresses for the whole file and is accepted
//! only for `L1-index`, where per-site annotation of structurally bounded
//! indexing would drown the code in noise.
//!
//! Directive misuse is itself reported as findings under the `allowlist`
//! rule: unknown rule keys, `allow`s that suppress nothing, missing
//! justifications, any attempt to allow `L2`/`L3`/`L6`/`L7`/`L8` (which
//! are unconditional), and malformed `dmw-lint:` comments.

use crate::lexer::Comment;
use crate::rules::Finding;

/// Rule keys an `allow(...)` may name. L9/L10 are waivable because both
/// are flow heuristics over token shapes: a justified annotation at a
/// genuinely-safe site (e.g. a set iterated only for membership counting)
/// is better than weakening the rule for everyone.
const ALLOWED_KEYS: &[&str] = &["L1", "L1-index", "L4", "L5", "L9", "L10"];

/// Rule keys that exist but must never be allowlisted. L11 is here
/// because the phase-graph spec (`docs/phase_graph.toml`) *is* the escape
/// hatch: an intended new transition belongs in the spec, not behind an
/// allow comment.
const UNWAIVABLE_KEYS: &[&str] = &["L2", "L3", "L6", "L7", "L8", "L11"];

/// Keys `allow-file(...)` may name.
const FILE_SCOPE_KEYS: &[&str] = &["L1-index"];

/// A parsed `// dmw-lint: …` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule keys inside the parentheses.
    pub keys: Vec<String>,
    /// Justification text after the trailing `:` (trimmed), if any.
    pub justification: Option<String>,
    /// True for `allow-file`.
    pub file_scope: bool,
}

/// Extracts directives from a file's comments; malformed `dmw-lint:`
/// comments are reported straight into `errors`.
pub fn parse_directives(comments: &[Comment], errors: &mut Vec<Finding>) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("dmw-lint:") else {
            continue;
        };
        if !c.is_line {
            errors.push(misuse(
                c.line,
                "dmw-lint directives must be `//` line comments",
            ));
            continue;
        }
        let rest = rest.trim();
        let (file_scope, rest) = match rest.strip_prefix("allow-file") {
            Some(r) => (true, r),
            None => match rest.strip_prefix("allow") {
                Some(r) => (false, r),
                None => {
                    errors.push(misuse(
                        c.line,
                        "unknown dmw-lint directive — expected `allow(…)` or `allow-file(…)`",
                    ));
                    continue;
                }
            },
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            errors.push(misuse(c.line, "expected `(` after `allow`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            errors.push(misuse(c.line, "unclosed `(` in dmw-lint directive"));
            continue;
        };
        let keys: Vec<String> = rest[..close]
            .split(',')
            .map(|k| k.trim().to_owned())
            .filter(|k| !k.is_empty())
            .collect();
        if keys.is_empty() {
            errors.push(misuse(c.line, "empty rule list in dmw-lint directive"));
            continue;
        }
        let tail = rest[close + 1..].trim();
        let justification = tail
            .strip_prefix(':')
            .map(|j| j.trim().to_owned())
            .filter(|j| !j.is_empty());
        out.push(Directive {
            line: c.line,
            keys,
            justification,
            file_scope,
        });
    }
    out
}

/// Validates directives and applies them to `findings`, returning the
/// surviving findings plus any directive-misuse findings.
pub fn apply(directives: &[Directive], findings: Vec<Finding>) -> Vec<Finding> {
    let mut errors = Vec::new();
    let mut used = vec![false; directives.len()];
    let mut kept = Vec::new();

    for d in directives {
        for key in &d.keys {
            if UNWAIVABLE_KEYS.contains(&key.as_str()) {
                errors.push(misuse(
                    d.line,
                    &format!("`{key}` findings cannot be allowlisted — fix the code"),
                ));
            } else if !ALLOWED_KEYS.contains(&key.as_str()) {
                errors.push(misuse(d.line, &format!("unknown rule `{key}`")));
            } else if d.file_scope && !FILE_SCOPE_KEYS.contains(&key.as_str()) {
                errors.push(misuse(
                    d.line,
                    &format!("`allow-file` is only accepted for `L1-index`, not `{key}`"),
                ));
            }
        }
        if d.justification.is_none() {
            errors.push(misuse(
                d.line,
                "allow directive without a justification — append `: why this is safe`",
            ));
        }
    }

    for f in findings {
        let suppressed = directives.iter().enumerate().find(|(_, d)| {
            let key_matches = d
                .keys
                .iter()
                .any(|k| k == f.allow_key || (k == "L1" && f.allow_key == "L1-index"));
            let valid = key_matches
                && d.justification.is_some()
                && d.keys.iter().all(|k| {
                    ALLOWED_KEYS.contains(&k.as_str())
                        && (!d.file_scope || FILE_SCOPE_KEYS.contains(&k.as_str()))
                });
            valid && (d.file_scope || d.line == f.line || d.line + 1 == f.line)
        });
        match suppressed {
            Some((idx, _)) => used[idx] = true,
            None => kept.push(f),
        }
    }

    for (d, was_used) in directives.iter().zip(&used) {
        let well_formed = d.justification.is_some()
            && d.keys.iter().all(|k| {
                ALLOWED_KEYS.contains(&k.as_str())
                    && (!d.file_scope || FILE_SCOPE_KEYS.contains(&k.as_str()))
            });
        if well_formed && !was_used {
            errors.push(misuse(
                d.line,
                "unused allow directive — delete it (stale allows hide future regressions)",
            ));
        }
    }

    kept.extend(errors);
    kept
}

fn misuse(line: u32, message: &str) -> Finding {
    Finding {
        rule: "allowlist",
        allow_key: "allowlist",
        line,
        message: message.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(src: &str, findings: Vec<Finding>) -> Vec<Finding> {
        let (_, comments) = lex(src);
        let mut errors = Vec::new();
        let directives = parse_directives(&comments, &mut errors);
        let mut out = apply(&directives, findings);
        out.extend(errors);
        out
    }

    fn l1_at(line: u32) -> Finding {
        Finding {
            rule: "L1",
            allow_key: "L1",
            line,
            message: "x".into(),
        }
    }

    #[test]
    fn justified_allow_suppresses_same_and_next_line() {
        let src = "// dmw-lint: allow(L1): startup-only invariant\nx.unwrap();";
        assert!(check(src, vec![l1_at(2)]).is_empty());
        let trailing = "x.unwrap(); // dmw-lint: allow(L1): startup-only invariant";
        assert!(check(trailing, vec![l1_at(1)]).is_empty());
    }

    #[test]
    fn allow_without_justification_is_an_error_and_does_not_suppress() {
        let src = "// dmw-lint: allow(L1)\nx.unwrap();";
        let out = check(src, vec![l1_at(2)]);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|f| f.rule == "allowlist"));
        assert!(out.iter().any(|f| f.rule == "L1"));
    }

    #[test]
    fn l2_and_l3_cannot_be_allowed() {
        for key in ["L2", "L3", "L6", "L7", "L8", "L11"] {
            let src = format!("// dmw-lint: allow({key}): please\nlet x = a % b;");
            let out = check(&src, vec![]);
            assert!(
                out.iter()
                    .any(|f| f.message.contains("cannot be allowlisted")),
                "{key}: {out:?}"
            );
        }
    }

    #[test]
    fn unused_and_unknown_allows_are_errors() {
        let unused = "// dmw-lint: allow(L4): no finding here\nlet x = 1;";
        assert!(check(unused, vec![])
            .iter()
            .any(|f| f.message.contains("unused")));
        let unknown = "// dmw-lint: allow(L99): what\nlet x = 1;";
        assert!(check(unknown, vec![])
            .iter()
            .any(|f| f.message.contains("unknown rule")));
    }

    #[test]
    fn allow_file_is_l1_index_only_and_file_wide() {
        let src = "// dmw-lint: allow-file(L1-index): bounds checked at entry\n";
        let far = Finding {
            rule: "L1",
            allow_key: "L1-index",
            line: 400,
            message: "x".into(),
        };
        assert!(check(src, vec![far]).is_empty());
        let bad = "// dmw-lint: allow-file(L1): nope\n";
        assert!(check(bad, vec![])
            .iter()
            .any(|f| f.message.contains("only accepted for")));
    }
}
