//! A minimal Rust lexer, just deep enough for the lint rules.
//!
//! The build environment is offline, so a full parser (`syn`) is not
//! available; the rules in [`crate::rules`] only need token shapes with
//! line numbers, which a hand-rolled lexer delivers reliably. The lexer's
//! one hard job is *never* to misread code inside comments, strings, char
//! literals or raw strings as live tokens — every rule's soundness rests
//! on that, so the literal grammar below is implemented in full:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments;
//! * string, byte-string, raw-string (`r"…"`, `r#"…"#`, any `#` depth)
//!   and C-string literals, with escape sequences;
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * numeric literals including type suffixes (`4u64`, `0x1f`, `1_000`).
//!
//! Comments are returned separately so the allowlist directives of
//! [`crate::allow`] can be parsed from them.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including the wildcard pattern `_`).
    Ident,
    /// Numeric, string, char or byte literal.
    Literal,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
    /// A single punctuation character (`.`, `[`, `%`, …). Multi-character
    /// operators appear as consecutive punct tokens; rules that need
    /// `=>`-style pairs check adjacency themselves.
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text for identifiers; empty for literals and puncts (the
    /// rules never need literal contents, and dropping them keeps rule
    /// string-matching from ever seeing quoted text).
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

/// One comment (line or block) with the line it starts on. Block comments
/// keep their full text; directives are only recognized in line comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line number of the comment's start.
    pub line: u32,
    /// True for `//…` comments (directives live only in these).
    pub is_line: bool,
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: &str, line: u32) {
        self.tokens.push(Token {
            kind,
            text: text.to_owned(),
            line,
        });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' | 'c' if self.raw_or_byte_prefix() => { /* consumed */ }
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                '\'' => self.quote(),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), "", line);
                }
            }
        }
        (self.tokens, self.comments)
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment {
            text,
            line,
            is_line: true,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.comments.push(Comment {
            text,
            line,
            is_line: false,
        });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, `c"…"` and
    /// plain identifiers starting with those letters. Returns true when it
    /// consumed something.
    fn raw_or_byte_prefix(&mut self) -> bool {
        // Collect the prefix letters (at most two of r/b/c).
        let mut prefix = String::new();
        for ahead in 0..2 {
            match self.peek(ahead) {
                Some(c @ ('r' | 'b' | 'c')) => prefix.push(c),
                _ => break,
            }
        }
        let after = self.peek(prefix.len());
        match after {
            Some('"') => {
                for _ in 0..prefix.len() {
                    self.bump();
                }
                if prefix.contains('r') {
                    self.raw_string();
                } else {
                    self.string();
                }
                true
            }
            Some('#') if prefix.contains('r') => {
                // Could be r#"…"# or a raw identifier r#foo.
                let mut hashes = 0usize;
                while self.peek(prefix.len() + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(prefix.len() + hashes) == Some('"') {
                    for _ in 0..prefix.len() {
                        self.bump();
                    }
                    self.raw_string();
                    true
                } else {
                    false // raw identifier; lex as ident below
                }
            }
            Some('\'') if prefix == "b" => {
                self.bump();
                self.quote();
                true
            }
            _ => false,
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, "", line);
    }

    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Literal, "", line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Raw identifier prefix r# — consume silently.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, &text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Fractional part — but not a `1..n` range.
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, "", line);
    }

    /// Disambiguates char literals from lifetimes at a `'`.
    fn quote(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        let first = self.peek(0);
        let second = self.peek(1);
        let is_lifetime =
            matches!(first, Some(c) if c.is_alphabetic() || c == '_') && second != Some('\'');
        if is_lifetime {
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, &text, line);
        } else {
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::Literal, "", line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn code_inside_literals_and_comments_is_invisible() {
        let src = r###"
            // thread_rng in a comment
            /* nested /* thread_rng */ here */
            let a = "thread_rng";
            let b = r#"thread_rng"#;
            let c = 'x';
            let d = b"thread_rng";
            real_ident();
        "###;
        let names = idents(src);
        assert!(!names.iter().any(|n| n == "thread_rng"), "{names:?}");
        assert!(names.iter().any(|n| n == "real_ident"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (tokens, _) = lex("fn f<'a>(x: &'a str) -> char { 'b' }");
        let lifetimes: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(
            tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn lines_are_tracked() {
        let (tokens, comments) = lex("a\nb // note\nc");
        let line_of = |name: &str| tokens.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 2);
        assert_eq!(line_of("c"), 3);
        assert_eq!(comments[0].line, 2);
        assert_eq!(comments[0].text, " note");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let names = idents(r#"let x = "a \" unwrap \" b"; tail"#);
        assert_eq!(names, ["let", "x", "tail"]);
    }

    #[test]
    fn numeric_suffixes_and_ranges_lex_cleanly() {
        let (tokens, _) = lex("0..n, 4u64, 0x1f, 1_000, 2.5");
        let puncts: Vec<char> = tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        // The `..` of the range survives as two dots; 2.5 keeps its dot
        // inside the literal.
        assert_eq!(puncts.iter().filter(|&&c| c == '.').count(), 2);
    }
}
