//! The eight protocol-invariant rules (L1–L8).
//!
//! Each rule is a pure function over the token stream of one file (test
//! modules already stripped) and reports [`Finding`]s with 1-based lines.
//! The rules are deliberately lexical: they cannot type-check, so each one
//! is scoped (by `crate::rules_for_path`) to modules where its token
//! pattern is unambiguous, and the precise semantics are documented in
//! `docs/static_analysis.md`. Rules must never read literal contents —
//! the lexer blanks them — so quoted text cannot trip a rule.

use crate::lexer::{Token, TokenKind};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`L1` … `L8`, or `allowlist` for directive misuse).
    pub rule: &'static str,
    /// Key an allow directive must name to suppress this finding (`L1`
    /// findings for slice indexing use the narrower `L1-index`).
    pub allow_key: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description with a remediation hint.
    pub message: String,
}

fn finding(rule: &'static str, allow_key: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        allow_key,
        line,
        message,
    }
}

/// Removes token ranges under `#[cfg(test)]` (and any attribute whose
/// arguments mention `test`, e.g. `#[cfg(all(test, …))]`): the rules police
/// protocol code, not tests, which unwrap freely by design.
pub fn strip_test_regions(tokens: &[Token]) -> Vec<Token> {
    let mut keep = vec![true; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Punct('#')
            && tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('['))
        {
            let close = match matching(tokens, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            let is_cfg_test = tokens[i + 2..close]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == "cfg")
                && tokens[i + 2..close]
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text == "test");
            if !is_cfg_test {
                i = close + 1;
                continue;
            }
            // Strip from the attribute through the annotated item: up to
            // the matching `}` of its body, or the `;` of a bodiless item.
            let mut j = close + 1;
            let mut end = tokens.len() - 1;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokenKind::Punct('{') => {
                        end = matching(tokens, j, '{', '}').unwrap_or(tokens.len() - 1);
                        break;
                    }
                    TokenKind::Punct(';') => {
                        end = j;
                        break;
                    }
                    _ => j += 1,
                }
            }
            for flag in keep.iter_mut().take(end + 1).skip(i) {
                *flag = false;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    tokens
        .iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(t, _)| t.clone())
        .collect()
}

/// Index of the token matching `open` at `start` (which must hold `open`).
fn matching(tokens: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(start) {
        if t.kind == TokenKind::Punct(open) {
            depth += 1;
        } else if t.kind == TokenKind::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the token matching a closing `close` at `end`, scanning back.
fn matching_back(tokens: &[Token], end: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for i in (0..=end).rev() {
        if tokens[i].kind == TokenKind::Punct(close) {
            depth += 1;
        } else if tokens[i].kind == TokenKind::Punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

fn is_ident(t: &Token, name: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == name
}

/// Keywords that can precede `[` without forming an index expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "super", "trait", "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// L1 — no panic paths in protocol-critical modules: `.unwrap()`,
/// `.expect(…)`, `panic!`/`unreachable!`/`todo!`/`unimplemented!`, and
/// slice/array indexing (`x[i]`, `x[..n]`), which panics out-of-bounds.
pub fn l1(tokens: &[Token]) -> Vec<Finding> {
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    const METHODS: &[&str] = &["unwrap", "expect"];
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        let next = tokens.get(i + 1);
        if METHODS.contains(&t.text.as_str())
            && prev.is_some_and(|p| p.kind == TokenKind::Punct('.'))
            && next.is_some_and(|n| n.kind == TokenKind::Punct('('))
        {
            out.push(finding(
                "L1",
                "L1",
                t.line,
                format!(
                    "`.{}()` in protocol-critical code — return a typed error \
                     or route the invariant through a single documented funnel",
                    t.text
                ),
            ));
        }
        if MACROS.contains(&t.text.as_str())
            && next.is_some_and(|n| n.kind == TokenKind::Punct('!'))
        {
            out.push(finding(
                "L1",
                "L1",
                t.line,
                format!(
                    "`{}!` in protocol-critical code — abort via the protocol's \
                     error path instead of crashing the process",
                    t.text
                ),
            ));
        }
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct('[') || i == 0 {
            continue;
        }
        let prev = &tokens[i - 1];
        let indexes = match prev.kind {
            TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('?') => true,
            _ => false,
        };
        if indexes {
            out.push(finding(
                "L1",
                "L1-index",
                t.line,
                "slice/array indexing in protocol-critical code — prefer \
                 `.get(…)`, iterators, or pattern matching"
                    .to_owned(),
            ));
        }
    }
    out
}

/// Receivers on which `.pow(…)` and friends are the *modmath* field API
/// rather than raw machine arithmetic.
const FIELD_HANDLES: &[&str] = &["zp", "zq", "group"];

/// Field-API method names whose `u64` results must not feed raw operators.
const FIELD_METHODS: &[&str] = &[
    "add", "sub", "mul", "neg", "inv", "pow", "commit", "pow_z1", "pow_z2",
];

/// L2 — no raw arithmetic on field values outside `crates/modmath`:
/// `%` anywhere (reduction must use the field API), integer `.pow`-family
/// methods off a non-field receiver, machine-arithmetic wrappers
/// (`wrapping_*`/`checked_*`/…), and `+ - * %` directly adjacent to a
/// field-API call result.
pub fn l2(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Punct('%') {
            out.push(finding(
                "L2",
                "L2",
                t.line,
                "raw `%` reduction — field values are reduced by the \
                 `dmw_modmath` API (`zq.add`/`zp.mul`/…), never by hand"
                    .to_owned(),
            ));
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        let is_method_call = i > 0
            && tokens[i - 1].kind == TokenKind::Punct('.')
            && tokens.get(i + 1).map(|n| n.kind) == Some(TokenKind::Punct('('));
        if t.text == "pow" {
            let field_receiver = is_method_call && i >= 2 && receiver_is_field(tokens, i - 2);
            // `u64::pow(..)` and `x.pow(..)` on a raw integer are both
            // banned; `zp.pow(..)` / `self.zq().pow(..)` are the API.
            let path_call = i >= 2
                && tokens[i - 1].kind == TokenKind::Punct(':')
                && tokens[i - 2].kind == TokenKind::Punct(':');
            if (is_method_call && !field_receiver) || path_call {
                out.push(finding(
                    "L2",
                    "L2",
                    t.line,
                    "integer `pow` on a raw value — exponentiation of field \
                     elements must go through `zp.pow`/`zq.pow`"
                        .to_owned(),
                ));
            }
        }
        let wrapper = ["wrapping_", "checked_", "overflowing_", "saturating_"]
            .iter()
            .any(|p| t.text.starts_with(p));
        let arith_tail = ["add", "sub", "mul", "pow", "neg", "rem", "div"]
            .iter()
            .any(|s| t.text.ends_with(s));
        if wrapper && arith_tail && is_method_call {
            out.push(finding(
                "L2",
                "L2",
                t.line,
                format!(
                    "`.{}()` machine arithmetic — field values wrap at the \
                     modulus via the `dmw_modmath` API, not at 2^64",
                    t.text
                ),
            ));
        }
    }
    // `+ - *` directly against a field-API call: `zp.mul(a, b) + 1` or
    // `1 + zp.mul(a, b)` bypasses reduction.
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !FIELD_HANDLES.contains(&t.text.as_str())
            || tokens.get(i + 1).map(|n| n.kind) != Some(TokenKind::Punct('.'))
        {
            continue;
        }
        let Some(method) = tokens.get(i + 2) else {
            continue;
        };
        if method.kind != TokenKind::Ident
            || !FIELD_METHODS.contains(&method.text.as_str())
            || tokens.get(i + 3).map(|n| n.kind) != Some(TokenKind::Punct('('))
        {
            continue;
        }
        let raw_op = |tok: Option<&Token>| {
            matches!(
                tok.map(|x| x.kind),
                Some(TokenKind::Punct('+') | TokenKind::Punct('-') | TokenKind::Punct('*'))
            )
        };
        // Operator before the receiver (skipping a leading `-` of `->`).
        if i > 0
            && raw_op(Some(&tokens[i - 1]))
            && !(tokens[i - 1].kind == TokenKind::Punct('-')
                && i >= 2
                && tokens[i - 2].kind == TokenKind::Punct('-'))
        {
            let arrow = tokens[i - 1].kind == TokenKind::Punct('-')
                && i >= 2
                && tokens[i - 2].kind == TokenKind::Punct('>');
            if !arrow {
                out.push(finding(
                    "L2",
                    "L2",
                    t.line,
                    "raw arithmetic on a field-API result — compose through \
                     `dmw_modmath` methods instead"
                        .to_owned(),
                ));
            }
        }
        // Operator after the call's closing parenthesis.
        if let Some(close) = matching(tokens, i + 3, '(', ')') {
            if raw_op(tokens.get(close + 1)) {
                out.push(finding(
                    "L2",
                    "L2",
                    tokens[close].line,
                    "raw arithmetic on a field-API result — compose through \
                     `dmw_modmath` methods instead"
                        .to_owned(),
                ));
            }
        }
    }
    out
}

/// True when the token at `r` ends a field-handle receiver: the ident
/// `zp`/`zq`/`group` itself, or a call like `.zp()` / `.zq()`.
fn receiver_is_field(tokens: &[Token], r: usize) -> bool {
    match tokens[r].kind {
        TokenKind::Ident => FIELD_HANDLES.contains(&tokens[r].text.as_str()),
        TokenKind::Punct(')') => matching_back(tokens, r, '(', ')')
            .and_then(|open| open.checked_sub(1))
            .is_some_and(|m| {
                tokens[m].kind == TokenKind::Ident
                    && FIELD_HANDLES.contains(&tokens[m].text.as_str())
            }),
        _ => false,
    }
}

/// L3 — no wildcard `_` match arms in the codec and runner: every protocol
/// message and abort reason must be handled by name, so adding a variant
/// is a compile error at every dispatch site rather than a silent fall
/// through. (Binding catch-alls like `tag => Err(…)` on open byte domains
/// remain legal — they handle, not discard.)
pub fn l3(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if is_ident(t, "_")
            && tokens.get(i + 1).map(|n| n.kind) == Some(TokenKind::Punct('='))
            && tokens.get(i + 2).map(|n| n.kind) == Some(TokenKind::Punct('>'))
        {
            out.push(finding(
                "L3",
                "L3",
                t.line,
                "wildcard `_ =>` match arm — name every protocol variant so \
                 new messages fail to compile here instead of falling through"
                    .to_owned(),
            ));
        }
    }
    out
}

/// L4 — no ambient randomness or wall-clock reads: all randomness is
/// injected as a seeded RNG so every run is reproducible.
pub fn l4(tokens: &[Token]) -> Vec<Finding> {
    const BANNED: &[(&str, &str)] = &[
        ("thread_rng", "inject a seeded `StdRng` instead"),
        ("from_entropy", "seed explicitly with `seed_from_u64`"),
        ("SystemTime", "pass timestamps in; wall-clock breaks replay"),
        ("OsRng", "inject a seeded `StdRng` instead"),
    ];
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if let Some((name, hint)) = BANNED.iter().find(|(n, _)| *n == t.text) {
            out.push(finding(
                "L4",
                "L4",
                t.line,
                format!("ambient `{name}` — {hint}"),
            ));
        }
    }
    out
}

/// L5 — no truncating `as` casts in the arithmetic crates: a silent
/// truncation of a field residue corrupts every equation downstream.
/// Widening casts (`as u64`, `as u128`) stay legal.
pub fn l5(tokens: &[Token]) -> Vec<Finding> {
    const NARROW: &[&str] = &[
        "u8", "u16", "u32", "i8", "i16", "i32", "i64", "isize", "usize",
    ];
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if is_ident(t, "as")
            && tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Ident && NARROW.contains(&n.text.as_str()))
        {
            out.push(finding(
                "L5",
                "L5",
                t.line,
                format!(
                    "`as {}` can truncate — use `try_from` with a typed error \
                     (or prove the range and justify an allow)",
                    tokens[i + 1].text
                ),
            ));
        }
    }
    out
}

/// L6 — no raw round-number dispatch in the protocol phase modules: the
/// typed phase state machine owns protocol progression, so `match` over a
/// bare `round` counter (`match round { … }`, `match self.round { … }`)
/// and comparisons of `round` against integer literals (`round >= 4`,
/// `3 == round`) are banned outside the scheduler. A phase must decide
/// from *what arrived* (or its patience budget), never from *when it is*.
pub fn l6(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    let is_cmp_head =
        |t: Option<&Token>| matches!(t.map(|x| x.kind), Some(TokenKind::Punct('<' | '>')));
    for (i, t) in tokens.iter().enumerate() {
        if !is_ident(t, "round") {
            continue;
        }
        // `match round {` / `match self.round {` — walk back over a
        // field-access chain to the `match` keyword.
        if tokens.get(i + 1).map(|n| n.kind) == Some(TokenKind::Punct('{')) {
            let mut pos = i;
            while pos >= 2
                && tokens[pos - 1].kind == TokenKind::Punct('.')
                && tokens[pos - 2].kind == TokenKind::Ident
            {
                pos -= 2;
            }
            if pos >= 1 && is_ident(&tokens[pos - 1], "match") {
                out.push(finding(
                    "L6",
                    "L6",
                    t.line,
                    "`match` over a round counter — dispatch on the typed \
                     `Phase` state machine, not on wall-clock rounds"
                        .to_owned(),
                ));
                continue;
            }
        }
        // `round <op> literal` with op in == != < <= > >=.
        let next = tokens.get(i + 1);
        let literal_after = if next.map(|n| n.kind) == Some(TokenKind::Punct('='))
            || next.map(|n| n.kind) == Some(TokenKind::Punct('!'))
        {
            // `==` / `!=` need a second `=`.
            tokens.get(i + 2).map(|n| n.kind) == Some(TokenKind::Punct('='))
                && tokens.get(i + 3).map(|n| n.kind) == Some(TokenKind::Literal)
        } else if is_cmp_head(next) {
            // `<` / `>` optionally followed by `=`.
            match tokens.get(i + 2).map(|n| n.kind) {
                Some(TokenKind::Punct('=')) => {
                    tokens.get(i + 3).map(|n| n.kind) == Some(TokenKind::Literal)
                }
                Some(TokenKind::Literal) => true,
                _ => false,
            }
        } else {
            false
        };
        // `literal <op> round`, scanning back from the counter.
        let literal_before = if i >= 3
            && tokens[i - 1].kind == TokenKind::Punct('=')
            && matches!(tokens[i - 2].kind, TokenKind::Punct('=' | '!' | '<' | '>'))
        {
            tokens[i - 3].kind == TokenKind::Literal
        } else if i >= 2 && is_cmp_head(Some(&tokens[i - 1])) {
            tokens[i - 2].kind == TokenKind::Literal
        } else {
            false
        };
        if literal_after || literal_before {
            out.push(finding(
                "L6",
                "L6",
                t.line,
                "round counter compared against a bare literal — phase \
                 completeness (or the patience budget) decides progression, \
                 not round numbers"
                    .to_owned(),
            ));
        }
    }
    out
}

/// L7 — no wall-clock reads in the deterministic crates (`core`,
/// `simnet`, `crypto`, `obs`): simulated time is logical ticks, so any
/// `std::time::Instant` or `SystemTime` read there makes runs (and the
/// `dmw-obs` metrics derived from them) non-replayable. Timing belongs
/// to the bench harness, which is deliberately outside this scope.
/// Unwaivable — move the measurement out of the deterministic core.
pub fn l7(tokens: &[Token]) -> Vec<Finding> {
    const BANNED: &[(&str, &str)] = &[
        (
            "Instant",
            "measure in logical ticks (the transport round counter) or \
             move the timing into the bench harness",
        ),
        (
            "SystemTime",
            "pass timestamps in as data; wall-clock reads break replay",
        ),
    ];
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if let Some((name, hint)) = BANNED.iter().find(|(n, _)| *n == t.text) {
            out.push(finding(
                "L7",
                "L7",
                t.line,
                format!("wall-clock `{name}` in a deterministic crate — {hint}"),
            ));
        }
    }
    out
}

/// Identifier fragments that mark a loop as retransmission machinery —
/// including the nack fast path and the retransmit suppressor, which
/// can livelock or storm just as easily as a plain timer sweep.
const RETRY_FRAGMENTS: &[&str] = &["retry", "resend", "retransmit", "nack", "suppress"];

/// L8 — no naked retry loops in the reliability-bearing modules
/// (`agent.rs`, `phases/`, `reliable.rs`): any `loop`/`while`/`for`
/// whose body touches a retry-family identifier (one containing
/// `retry`, `resend`, `retransmit`, `nack` or `suppress`) must also
/// reference a bounded budget (an identifier containing `budget`)
/// inside that same body. An unbounded retransmit sweep turns a dead
/// peer into a livelock, an ungated nack path amplifies loss into a
/// request storm, and both defeat the suspicion/exclusion path — so
/// this is unwaivable; bound the loop with the `RetryPolicy` budget
/// instead.
pub fn l8(tokens: &[Token]) -> Vec<Finding> {
    const LOOP_KEYWORDS: &[&str] = &["loop", "while", "for"];
    let mentions = |range: &[Token], fragments: &[&str]| {
        range.iter().any(|t| {
            t.kind == TokenKind::Ident && {
                let lower = t.text.to_ascii_lowercase();
                fragments.iter().any(|f| lower.contains(f))
            }
        })
    };
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !LOOP_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // Find the loop body: the first top-level `{` after the keyword,
        // skipping parenthesized/bracketed groups in the loop header
        // (closure bodies in an iterator chain live inside parens).
        let mut j = i + 1;
        let body_open = loop {
            match tokens.get(j).map(|n| n.kind) {
                Some(TokenKind::Punct('(')) => match matching(tokens, j, '(', ')') {
                    Some(close) => j = close + 1,
                    None => break None,
                },
                Some(TokenKind::Punct('[')) => match matching(tokens, j, '[', ']') {
                    Some(close) => j = close + 1,
                    None => break None,
                },
                Some(TokenKind::Punct('{')) => break Some(j),
                Some(TokenKind::Punct(';')) | None => break None,
                Some(_) => j += 1,
            }
        };
        let Some(open) = body_open else {
            continue;
        };
        let Some(close) = matching(tokens, open, '{', '}') else {
            continue;
        };
        let body = &tokens[open..=close];
        if mentions(body, RETRY_FRAGMENTS) && !mentions(body, &["budget"]) {
            out.push(finding(
                "L8",
                "L8",
                t.line,
                "retry/resend/nack loop without a bounded budget — an \
                 unbounded retransmit sweep livelocks against a dead peer \
                 and an ungated nack or suppressor path storms; gate every \
                 attempt on the `RetryPolicy` budget"
                    .to_owned(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule: fn(&[Token]) -> Vec<Finding>, src: &str) -> Vec<Finding> {
        let (tokens, _) = lex(src);
        rule(&strip_test_regions(&tokens))
    }

    #[test]
    fn l1_catches_each_panic_shape() {
        let f = run(
            l1,
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); v[0]; }",
        );
        let keys: Vec<_> = f.iter().map(|f| f.allow_key).collect();
        assert_eq!(keys, ["L1", "L1", "L1", "L1-index"]);
    }

    #[test]
    fn l1_ignores_non_index_brackets() {
        let clean = "fn f(a: &[u64]) -> [u8; 4] { let [x, y] = [1, 2]; vec![0; 3]; #[derive(Debug)] struct S; }";
        assert!(run(l1, clean).is_empty(), "{:?}", run(l1, clean));
    }

    #[test]
    fn l1_skips_test_modules() {
        let src = "
            fn live() { a.unwrap(); }
            #[cfg(test)]
            mod tests { fn t() { b.unwrap(); b[0]; panic!(); } }
        ";
        assert_eq!(run(l1, src).len(), 1);
    }

    #[test]
    fn l2_catches_reduction_pow_and_adjacent_ops() {
        assert_eq!(run(l2, "let r = (a * b) % p;").len(), 1);
        assert_eq!(run(l2, "let r = x.pow(3);").len(), 1);
        assert_eq!(run(l2, "let r = u64::pow(x, 3);").len(), 1);
        assert_eq!(run(l2, "let r = x.wrapping_mul(y);").len(), 1);
        assert_eq!(run(l2, "let r = zp.mul(a, b) + 1;").len(), 1);
        assert_eq!(run(l2, "let r = 1 + zq.add(a, b);").len(), 1);
    }

    #[test]
    fn l2_permits_the_field_api() {
        let clean = "
            fn f(zp: &Zp, zq: &Zq, group: &G) -> u64 {
                let x = zp.mul(a, zq.add(b, c));
                let y = zp.pow(x, e);
                let z = group.zq().pow(x, e);
                zp.mul(x, y)
            }
        ";
        assert!(run(l2, clean).is_empty(), "{:?}", run(l2, clean));
    }

    #[test]
    fn l3_catches_only_discarding_wildcards() {
        assert_eq!(run(l3, "match m { A => 1, _ => 2 }").len(), 1);
        assert!(run(l3, "match m { A => 1, tag => tag }").is_empty());
        assert!(run(l3, "let f = |_| 3; let (_, a) = pair;").is_empty());
    }

    #[test]
    fn l4_catches_ambient_entropy_but_not_strings() {
        assert_eq!(run(l4, "let r = rand::thread_rng();").len(), 1);
        assert_eq!(run(l4, "let t = SystemTime::now();").len(), 1);
        assert!(run(l4, "let s = \"thread_rng\"; // thread_rng").is_empty());
    }

    #[test]
    fn l5_catches_narrowing_not_widening() {
        assert_eq!(run(l5, "let x = y as u32;").len(), 1);
        assert_eq!(run(l5, "let x = y as usize;").len(), 1);
        assert!(run(l5, "let x = y as u64; let z = y as u128;").is_empty());
    }

    #[test]
    fn l6_catches_round_dispatch_and_literal_comparisons() {
        assert_eq!(run(l6, "match round { 0 => a(), other => b() }").len(), 1);
        assert_eq!(run(l6, "match self.round { 0 => a(), n => b() }").len(), 1);
        assert_eq!(run(l6, "if round >= 4 { act(); }").len(), 1);
        assert_eq!(run(l6, "if round == 2 { act(); }").len(), 1);
        assert_eq!(run(l6, "if 3 == round { act(); }").len(), 1);
        assert_eq!(run(l6, "while round < 6 { tick(); }").len(), 1);
    }

    #[test]
    fn l7_catches_wall_clock_idents_but_not_strings() {
        assert_eq!(run(l7, "let t = Instant::now();").len(), 1);
        assert_eq!(run(l7, "let t = std::time::SystemTime::now();").len(), 1);
        assert!(run(l7, "let s = \"Instant\"; // Instant").is_empty());
        assert!(run(l7, "let instant = elapsed_ticks();").is_empty());
    }

    #[test]
    fn l8_catches_naked_retry_loops() {
        assert_eq!(
            run(l8, "loop { resend(msg); }").len(),
            1,
            "bare resend loop"
        );
        assert_eq!(
            run(l8, "while !acked { retransmit(&msg); wait(); }").len(),
            1,
            "unbounded retransmit"
        );
        assert_eq!(
            run(l8, "for m in pending { m.next_retry = now + t; }").len(),
            1,
            "retry bookkeeping loop without a budget"
        );
    }

    #[test]
    fn l8_permits_budgeted_loops_and_unrelated_loops() {
        let budgeted = "
            for pending in &mut link.unacked {
                if pending.attempts >= self.policy.budget { break; }
                retransmit(pending);
            }
        ";
        assert!(run(l8, budgeted).is_empty(), "{:?}", run(l8, budgeted));
        assert!(run(l8, "for x in items { process(x); }").is_empty());
        // The retry ident in the header's closure is part of the body
        // scan only when braced into the body itself; a budgeted chain
        // stays clean.
        let chain = "
            while queue.iter().any(|m| { m.next_retry <= now }) {
                if attempts >= budget { break; }
                attempts += 1;
            }
        ";
        assert!(run(l8, chain).is_empty(), "{:?}", run(l8, chain));
        // Loops inside test modules are stripped like every other rule.
        let test_only = "
            #[cfg(test)]
            mod tests { fn t() { loop { resend(); } } }
        ";
        assert!(run(l8, test_only).is_empty());
    }

    #[test]
    fn l6_permits_counters_that_do_not_dispatch() {
        let clean = "
            fn f(round: u64, budget: u64) -> bool {
                let next = round + 1;
                round >= budget || transport.round() >= budget
            }
        ";
        assert!(run(l6, clean).is_empty(), "{:?}", run(l6, clean));
        // Matching on the *phase* is the sanctioned dispatch.
        assert!(run(l6, "match agent.phase { Phase::Bidding => a() }").is_empty());
    }
}
