//! The machine-readable findings report (`--format json`).
//!
//! The schema is deliberately tiny and stable — CI diffs the committed
//! `docs/lint_report.json` against a fresh run, so the output must be
//! byte-deterministic: findings arrive already sorted (path, then line,
//! then rule), `by_rule` is a sorted map, and nothing environmental
//! (timestamps, absolute paths, hostnames) is ever emitted. Bump the
//! `schema` string on any shape change.
//!
//! ```json
//! {
//!   "schema": "dmw-lint-report/v1",
//!   "summary": { "total": 0, "by_rule": {} },
//!   "findings": []
//! }
//! ```

use crate::FileFinding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier emitted in every report.
pub const SCHEMA: &str = "dmw-lint-report/v1";

/// Renders findings as the stable JSON report (trailing newline
/// included, so the file is POSIX-clean when written to disk).
pub fn to_json(findings: &[FileFinding]) -> String {
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *by_rule.entry(f.finding.rule).or_insert(0) += 1;
    }
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", quote(SCHEMA));
    out.push_str("  \"summary\": {\n");
    let _ = writeln!(out, "    \"total\": {},", findings.len());
    if by_rule.is_empty() {
        out.push_str("    \"by_rule\": {}\n");
    } else {
        out.push_str("    \"by_rule\": {\n");
        let last = by_rule.len() - 1;
        for (i, (rule, count)) in by_rule.iter().enumerate() {
            let comma = if i == last { "" } else { "," };
            let _ = writeln!(out, "      {}: {count}{comma}", quote(rule));
        }
        out.push_str("    }\n");
    }
    out.push_str("  },\n");
    if findings.is_empty() {
        out.push_str("  \"findings\": []\n");
    } else {
        out.push_str("  \"findings\": [\n");
        let last = findings.len() - 1;
        for (i, f) in findings.iter().enumerate() {
            let comma = if i == last { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{ \"path\": {}, \"line\": {}, \"rule\": {}, \"allow_key\": {}, \"message\": {} }}{comma}",
                quote(&f.path),
                f.finding.line,
                quote(f.finding.rule),
                quote(f.finding.allow_key),
                quote(&f.finding.message),
            );
        }
        out.push_str("  ]\n");
    }
    out.push_str("}\n");
    out
}

/// JSON string quoting with the mandatory escapes.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn finding(path: &str, rule: &'static str, line: u32, message: &str) -> FileFinding {
        FileFinding {
            path: path.to_owned(),
            finding: Finding {
                rule,
                allow_key: rule,
                line,
                message: message.to_owned(),
            },
        }
    }

    #[test]
    fn empty_report_is_the_documented_fixed_point() {
        let json = to_json(&[]);
        assert!(json.contains("\"schema\": \"dmw-lint-report/v1\""));
        assert!(json.contains("\"total\": 0"));
        assert!(json.contains("\"by_rule\": {}"));
        assert!(json.contains("\"findings\": []"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn findings_serialize_with_escapes_and_counts() {
        let json = to_json(&[
            finding("a.rs", "L9", 3, "secret `bid` reaches \"sink\""),
            finding("a.rs", "L9", 9, "x"),
            finding("b.rs", "L10", 1, "y\nz"),
        ]);
        assert!(json.contains("\"L9\": 2"));
        assert!(json.contains("\"L10\": 1"));
        assert!(json.contains("\\\"sink\\\""));
        assert!(json.contains("y\\nz"));
        assert!(json.contains("\"total\": 3"));
    }

    #[test]
    fn output_is_deterministic() {
        let f = vec![finding("a.rs", "L10", 1, "m")];
        assert_eq!(to_json(&f), to_json(&f));
    }
}
