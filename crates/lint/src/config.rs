//! The checked-in rule configuration (`lint.toml`).
//!
//! The L9 secrecy-taint rule is driven by declared *sets* — source
//! identifiers/types, serialization sinks, approved sanitizers — rather
//! than hard-coded lists, so reviewing a privacy-surface change means
//! reviewing a diff of `lint.toml`, not of the analyzer. The workspace
//! copy at the repo root is embedded at compile time (the lint must work
//! when invoked on a bare checkout or in the fixture tests, where no
//! config file is on disk); `lint_workspace` re-reads the on-disk file
//! when present so local edits take effect without rebuilding.

use crate::toml_lite;
use std::sync::OnceLock;

/// The workspace `lint.toml`, embedded so the default config is always
/// available and always in sync with the checked-in file.
const EMBEDDED: &str = include_str!("../../../lint.toml");

/// Parsed rule configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes L9 applies to.
    pub l9_scope: Vec<String>,
    /// Identifiers whose value is secret wherever they appear (bind or
    /// read): raw bids, secret polynomials.
    pub l9_source_idents: Vec<String>,
    /// Methods/functions whose *return value* is secret (`.bid()`,
    /// `.tau()` accessors).
    pub l9_source_calls: Vec<String>,
    /// Type heads whose values are secret-bearing wholesale.
    pub l9_source_types: Vec<String>,
    /// Call names that serialize their receiver/arguments.
    pub l9_sink_calls: Vec<String>,
    /// Constructor names (enum variants, structs) whose fields go to the
    /// wire or the metrics labels.
    pub l9_sink_ctors: Vec<String>,
    /// Call names that transform a secret into a safe-to-serialize form
    /// (commitments, masked shares, approved disclosures).
    pub l9_sanitizers: Vec<String>,
    /// Path prefixes L10 applies to.
    pub l10_scope: Vec<String>,
    /// Workspace-relative path of the phase-graph spec (L11).
    pub l11_spec: String,
    /// Workspace-relative path of the `Phase` state machine (L11).
    pub l11_phases_file: String,
}

impl LintConfig {
    /// Parses a `lint.toml` source. Every field is required — a config
    /// that silently defaults is a config that silently stops linting.
    pub fn parse(src: &str) -> Result<LintConfig, String> {
        let doc = toml_lite::parse(src)?;
        let list = |table: &str, key: &str| -> Result<Vec<String>, String> {
            doc.list(table, key)
                .map(<[String]>::to_vec)
                .ok_or_else(|| format!("lint.toml: missing or non-array `[{table}] {key}`"))
        };
        let string = |table: &str, key: &str| -> Result<String, String> {
            doc.str(table, key)
                .map(str::to_owned)
                .ok_or_else(|| format!("lint.toml: missing or non-string `[{table}] {key}`"))
        };
        Ok(LintConfig {
            l9_scope: list("l9", "scope")?,
            l9_source_idents: list("l9", "source_idents")?,
            l9_source_calls: list("l9", "source_calls")?,
            l9_source_types: list("l9", "source_types")?,
            l9_sink_calls: list("l9", "sink_calls")?,
            l9_sink_ctors: list("l9", "sink_ctors")?,
            l9_sanitizers: list("l9", "sanitizer_calls")?,
            l10_scope: list("l10", "scope")?,
            l11_spec: string("l11", "spec")?,
            l11_phases_file: string("l11", "phases_file")?,
        })
    }

    /// The embedded workspace configuration.
    pub fn embedded() -> &'static LintConfig {
        static CONFIG: OnceLock<LintConfig> = OnceLock::new();
        CONFIG.get_or_init(|| {
            LintConfig::parse(EMBEDDED).expect("embedded lint.toml is validated by crate tests")
        })
    }

    /// True when `path` (workspace-relative) is in the given scope list.
    pub fn in_scope(scope: &[String], path: &str) -> bool {
        scope.iter().any(|prefix| path.starts_with(prefix.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_config_parses_and_covers_the_protocol_crates() {
        let cfg = LintConfig::embedded();
        assert!(LintConfig::in_scope(
            &cfg.l9_scope,
            "crates/core/src/agent.rs"
        ));
        assert!(LintConfig::in_scope(
            &cfg.l9_scope,
            "crates/crypto/src/polynomials.rs"
        ));
        assert!(!LintConfig::in_scope(
            &cfg.l9_scope,
            "crates/bench/src/main.rs"
        ));
        for c in ["core", "crypto", "simnet", "obs"] {
            assert!(
                LintConfig::in_scope(&cfg.l10_scope, &format!("crates/{c}/src/x.rs")),
                "{c} must be under L10"
            );
        }
        assert!(!LintConfig::in_scope(
            &cfg.l10_scope,
            "crates/bench/src/main.rs"
        ));
        assert!(cfg.l9_sanitizers.iter().any(|s| s == "commit"));
        assert_eq!(cfg.l11_spec, "docs/phase_graph.toml");
    }

    #[test]
    fn missing_sections_are_hard_errors() {
        assert!(LintConfig::parse("[l9]\nscope = []\n").is_err());
    }
}
