//! A token-tree parser over the [`crate::lexer`] stream — just deep
//! enough for the flow-sensitive rules.
//!
//! The lexer stops at tokens; the L9/L10/L11 rule families need *shape*:
//! which tokens form a function body, what a local is bound to, which
//! type a struct field carries, which variants an enum declares. This
//! module recovers exactly that — items (functions, impl blocks,
//! structs, enums), parameter lists and field lists with their head
//! types, and body token ranges — without attempting full Rust syntax.
//! Everything it cannot classify it skips, so unknown constructs degrade
//! to "no findings" rather than misparses (the same soundness posture as
//! the lexer: never misread, prefer under-report).
//!
//! The output of [`parse`] is a [`ParsedFile`]: a per-file symbol table
//! that [`crate::flow`] turns into local type maps, taint states and the
//! crate-level call graph, and that [`crate::phase_graph`] queries for
//! the `Phase` enum and its transition arms.

use crate::lexer::{Token, TokenKind};

/// One parsed function (free function or method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Surrounding `impl` type, if the function is a method.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters in order (`self` receivers appear as a `self` param).
    pub params: Vec<Binding>,
    /// Token index range of the body, **inclusive** of both braces.
    /// `None` for bodiless trait-method signatures.
    pub body: Option<(usize, usize)>,
}

/// A named slot with the head identifier of its declared type:
/// a function parameter or a struct field. For
/// `links: std::collections::HashSet<(usize, usize)>` the head type is
/// `HashSet`; references and `mut` are skipped.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Parameter or field name.
    pub name: String,
    /// Head identifier of the type, if one could be recovered.
    pub type_head: Option<String>,
}

/// One parsed struct with its named fields (tuple and unit structs
/// contribute no fields).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Named fields with head types.
    pub fields: Vec<Binding>,
}

/// One parsed enum with its variant names.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
}

/// The per-file symbol table.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Every function and method, in source order (nested functions
    /// included).
    pub fns: Vec<FnItem>,
    /// Every struct with named fields.
    pub structs: Vec<StructItem>,
    /// Every enum.
    pub enums: Vec<EnumItem>,
}

/// Index of the token matching `open` at `start` (which must hold
/// `open`), or `None` when the file is truncated.
pub(crate) fn matching(tokens: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(start) {
        if t.kind == TokenKind::Punct(open) {
            depth += 1;
        } else if t.kind == TokenKind::Punct(close) {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Skips a generic-argument list starting at the `<` at `i`, returning
/// the index just past the matching `>`. The one subtlety is `->` inside
/// function-trait bounds (`F: Fn(u64) -> u64`): its `>` must not close
/// the list, which the lexer makes visible as a `-` token immediately
/// before the `>`.
fn skip_generics(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                let arrow = j > 0 && tokens[j - 1].kind == TokenKind::Punct('-');
                if !arrow {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// The head identifier of a type: the last path segment before any
/// generic arguments, with leading `&`, `mut` and lifetimes skipped.
/// `&mut std::collections::HashMap<K, V>` → `HashMap`.
pub(crate) fn type_head(tokens: &[Token]) -> Option<String> {
    let mut head: Option<String> = None;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('&') | TokenKind::Punct('*') => i += 1,
            TokenKind::Lifetime => i += 1,
            TokenKind::Ident if tokens[i].text == "mut" || tokens[i].text == "dyn" => i += 1,
            TokenKind::Ident => {
                head = Some(tokens[i].text.clone());
                // Continue through `::` path segments; stop at generics
                // or anything else.
                if tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct(':'))
                    && tokens.get(i + 2).map(|t| t.kind) == Some(TokenKind::Punct(':'))
                {
                    i += 3;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    head
}

/// Parses one comma-separated binding list (`name: Type, …`) between
/// `open + 1 .. close` — used for both parameter lists and struct field
/// bodies. Anything that is not a `name : type` pair at top level (e.g.
/// tuple patterns, attributes) contributes a binding without a type or
/// is skipped.
fn parse_bindings(tokens: &[Token], open: usize, close: usize) -> Vec<Binding> {
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        // Skip attributes `#[…]` and visibility `pub(…)` prefixes.
        if tokens[i].kind == TokenKind::Punct('#')
            && tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('['))
        {
            i = matching(tokens, i + 1, '[', ']').map_or(close, |c| c + 1);
            continue;
        }
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "pub" {
            i += 1;
            if tokens.get(i).map(|t| t.kind) == Some(TokenKind::Punct('(')) {
                i = matching(tokens, i, '(', ')').map_or(close, |c| c + 1);
            }
            continue;
        }
        // Find this binding's segment end: the next top-level comma.
        let mut j = i;
        let mut seg_end = close;
        while j < close {
            match tokens[j].kind {
                TokenKind::Punct('(') => j = matching(tokens, j, '(', ')').unwrap_or(close),
                TokenKind::Punct('[') => j = matching(tokens, j, '[', ']').unwrap_or(close),
                TokenKind::Punct('{') => j = matching(tokens, j, '{', '}').unwrap_or(close),
                TokenKind::Punct('<') => {
                    j = skip_generics(tokens, j).saturating_sub(1);
                }
                TokenKind::Punct(',') => {
                    seg_end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        // Within the segment: `[mut] [&…] name [: type…]`.
        let seg = &tokens[i..seg_end];
        let mut k = 0;
        while k < seg.len()
            && (matches!(seg[k].kind, TokenKind::Punct('&') | TokenKind::Punct('_'))
                || seg[k].kind == TokenKind::Lifetime
                || (seg[k].kind == TokenKind::Ident && seg[k].text == "mut"))
        {
            k += 1;
        }
        if let Some(name_tok) = seg.get(k) {
            if name_tok.kind == TokenKind::Ident {
                let ty = seg
                    .iter()
                    .position(|t| t.kind == TokenKind::Punct(':'))
                    .map(|c| &seg[c + 1..])
                    .and_then(type_head);
                out.push(Binding {
                    name: name_tok.text.clone(),
                    type_head: ty,
                });
            }
        }
        i = seg_end + 1;
    }
    out
}

/// Parses the token stream of one file (test regions already stripped)
/// into its symbol table.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut file = ParsedFile::default();
    walk(tokens, 0, tokens.len(), None, &mut file);
    file
}

/// Recursive item walk over `tokens[start..end]` with the current impl
/// owner.
fn walk(tokens: &[Token], start: usize, end: usize, owner: Option<&str>, out: &mut ParsedFile) {
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "fn" => {
                let Some(name_tok) = tokens.get(i + 1) else {
                    break;
                };
                if name_tok.kind != TokenKind::Ident {
                    i += 1;
                    continue;
                }
                let mut j = i + 2;
                if tokens.get(j).map(|t| t.kind) == Some(TokenKind::Punct('<')) {
                    j = skip_generics(tokens, j);
                }
                let Some(params_open) = (j..end).find(|&k| tokens[k].kind == TokenKind::Punct('('))
                else {
                    i += 1;
                    continue;
                };
                let Some(params_close) = matching(tokens, params_open, '(', ')') else {
                    break;
                };
                let params = parse_bindings(tokens, params_open, params_close);
                // Body: first top-level `{` after the signature, unless a
                // `;` (trait signature) comes first.
                let mut k = params_close + 1;
                let mut body = None;
                while k < end {
                    match tokens[k].kind {
                        TokenKind::Punct('{') => {
                            body = matching(tokens, k, '{', '}').map(|c| (k, c));
                            break;
                        }
                        TokenKind::Punct(';') => break,
                        TokenKind::Punct('<') => k = skip_generics(tokens, k),
                        _ => k += 1,
                    }
                }
                out.fns.push(FnItem {
                    name: name_tok.text.clone(),
                    owner: owner.map(str::to_owned),
                    line: t.line,
                    params,
                    body,
                });
                // Continue *inside* the body too (nested fns/closures
                // contribute their own entries); advance past the header.
                i = match body {
                    Some((open, _)) => open + 1,
                    None => k + 1,
                };
            }
            "impl" => {
                // Header runs to the body `{`; the owner type is the
                // segment after `for` when present, else the first type
                // ident after `impl`.
                let Some(body_open) =
                    (i + 1..end).find(|&k| tokens[k].kind == TokenKind::Punct('{'))
                else {
                    break;
                };
                let header = &tokens[i + 1..body_open];
                let after_for = header
                    .iter()
                    .position(|t| t.kind == TokenKind::Ident && t.text == "for")
                    .map(|p| &header[p + 1..]);
                let owner_name = after_for
                    .and_then(type_head)
                    .or_else(|| skip_header_generics_head(header));
                let Some(body_close) = matching(tokens, body_open, '{', '}') else {
                    break;
                };
                walk(
                    tokens,
                    body_open + 1,
                    body_close,
                    owner_name.as_deref(),
                    out,
                );
                i = body_close + 1;
            }
            "struct" => {
                let Some(name_tok) = tokens.get(i + 1) else {
                    break;
                };
                if name_tok.kind != TokenKind::Ident {
                    i += 1;
                    continue;
                }
                // Walk to `{` (fields), `(` (tuple — skip) or `;` (unit).
                let mut j = i + 2;
                if tokens.get(j).map(|t| t.kind) == Some(TokenKind::Punct('<')) {
                    j = skip_generics(tokens, j);
                }
                let mut fields = Vec::new();
                while j < end {
                    match tokens[j].kind {
                        TokenKind::Punct('{') => {
                            if let Some(close) = matching(tokens, j, '{', '}') {
                                fields = parse_bindings(tokens, j, close);
                                j = close;
                            }
                            break;
                        }
                        TokenKind::Punct('(') => {
                            j = matching(tokens, j, '(', ')').unwrap_or(end);
                            break;
                        }
                        TokenKind::Punct(';') => break,
                        _ => j += 1,
                    }
                }
                out.structs.push(StructItem {
                    name: name_tok.text.clone(),
                    fields,
                });
                i = j + 1;
            }
            "enum" => {
                let Some(name_tok) = tokens.get(i + 1) else {
                    break;
                };
                if name_tok.kind != TokenKind::Ident {
                    i += 1;
                    continue;
                }
                let Some(body_open) =
                    (i + 2..end).find(|&k| tokens[k].kind == TokenKind::Punct('{'))
                else {
                    break;
                };
                let Some(body_close) = matching(tokens, body_open, '{', '}') else {
                    break;
                };
                let variants = parse_variants(tokens, body_open, body_close);
                out.enums.push(EnumItem {
                    name: name_tok.text.clone(),
                    variants,
                    line: t.line,
                });
                i = body_close + 1;
            }
            _ => i += 1,
        }
    }
}

/// The head type of an `impl` header that has no `for` clause:
/// `impl<T> Name<T>` → `Name`. Skips the leading generic parameter list.
fn skip_header_generics_head(header: &[Token]) -> Option<String> {
    let mut i = 0;
    if header.first().map(|t| t.kind) == Some(TokenKind::Punct('<')) {
        i = skip_generics(header, 0);
    }
    type_head(header.get(i..)?)
}

/// Variant names of an enum body: the first identifier of each
/// top-level comma-separated segment, attributes skipped.
fn parse_variants(tokens: &[Token], open: usize, close: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = open + 1;
    let mut expecting_name = true;
    while i < close {
        match tokens[i].kind {
            TokenKind::Punct('#')
                if tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('[')) =>
            {
                i = matching(tokens, i + 1, '[', ']').map_or(close, |c| c + 1);
            }
            TokenKind::Punct('(') => i = matching(tokens, i, '(', ')').map_or(close, |c| c + 1),
            TokenKind::Punct('{') => i = matching(tokens, i, '{', '}').map_or(close, |c| c + 1),
            TokenKind::Punct(',') => {
                expecting_name = true;
                i += 1;
            }
            TokenKind::Ident if expecting_name => {
                out.push(tokens[i].text.clone());
                expecting_name = false;
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex(src).0)
    }

    #[test]
    fn functions_params_and_bodies_are_recovered() {
        let f = parsed(
            "fn settle(claims: &[Vec<u64>], n: usize) -> Option<S> { inner(); }\n\
             fn sig_only(x: u64);",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "settle");
        assert_eq!(f.fns[0].params.len(), 2);
        assert_eq!(f.fns[0].params[0].name, "claims");
        assert_eq!(f.fns[0].params[1].type_head.as_deref(), Some("usize"));
        assert!(f.fns[0].body.is_some());
        assert!(f.fns[1].body.is_none());
    }

    #[test]
    fn fn_trait_bounds_in_generics_do_not_steal_the_param_list() {
        let f = parsed("fn apply<F: Fn(u64) -> u64>(x: u64, op: F) -> u64 { op(x) }");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].params.len(), 2);
        assert_eq!(f.fns[0].params[0].name, "x");
        assert_eq!(f.fns[0].params[1].name, "op");
    }

    #[test]
    fn impl_blocks_attribute_methods_to_their_owner() {
        let f = parsed(
            "impl Payload for Body { fn size_bytes(&self) -> usize { 0 } }\n\
             impl<T> Holder<T> { fn get(&self) -> &T { &self.0 } }",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].owner.as_deref(), Some("Body"));
        assert_eq!(f.fns[1].owner.as_deref(), Some("Holder"));
    }

    #[test]
    fn struct_fields_carry_head_types_through_paths_and_refs() {
        let f = parsed(
            "pub struct FaultPlan { crashes: Vec<Option<u64>>, \
             dropped_links: std::collections::HashSet<(usize, usize)> }",
        );
        assert_eq!(f.structs.len(), 1);
        let fields = &f.structs[0].fields;
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].type_head.as_deref(), Some("Vec"));
        assert_eq!(fields[1].type_head.as_deref(), Some("HashSet"));
    }

    #[test]
    fn enum_variants_are_listed_in_order() {
        let f = parsed(
            "#[derive(Debug)] pub enum Phase { Bidding, Commitments { n: usize }, \
             Resolution(u64), Claimed }",
        );
        assert_eq!(f.enums.len(), 1);
        assert_eq!(f.enums[0].name, "Phase");
        assert_eq!(
            f.enums[0].variants,
            vec!["Bidding", "Commitments", "Resolution", "Claimed"]
        );
    }

    #[test]
    fn nested_functions_are_found() {
        let f = parsed("fn outer() { fn inner(y: u64) -> u64 { y } inner(1); }");
        let names: Vec<&str> = f.fns.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn type_head_sees_through_references_and_paths() {
        let heads: Vec<Option<String>> = [
            "&mut std::collections::HashMap<K, V>",
            "HashSet<(usize, usize)>",
            "&'a [u64]",
            "Vec<Vec<u64>>",
        ]
        .iter()
        .map(|src| type_head(&lex(src).0))
        .collect();
        assert_eq!(heads[0].as_deref(), Some("HashMap"));
        assert_eq!(heads[1].as_deref(), Some("HashSet"));
        assert_eq!(heads[2], None);
        assert_eq!(heads[3].as_deref(), Some("Vec"));
    }
}
