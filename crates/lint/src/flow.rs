//! The flow-sensitive rule families: L9 secrecy-taint and L10
//! determinism-order.
//!
//! Both rules run over the [`crate::parse`] symbol table plus the raw
//! token stream, one function body at a time, with a single
//! source-order dataflow pass per body:
//!
//! * **L9** seeds a taint set from parameters whose name or type is
//!   declared secret in `lint.toml`, propagates through `let` bindings
//!   (an initializer mentioning a tainted or source name taints the new
//!   binding, unless a sanitizer call intervenes), and reports any
//!   tainted or source value reaching a serialization sink — a sink
//!   call's receiver/arguments or a sink constructor's fields. A
//!   crate-level fixpoint ([`sink_summaries`]) additionally marks
//!   functions whose *parameters* flow into a sink as sink-like, so
//!   taint is caught one call deep, not just at the literal
//!   serialization site.
//! * **L10** tracks which locals, parameters and struct fields are
//!   `HashMap`/`HashSet`-typed and reports *iteration* over them
//!   (`for` loops, `iter`/`keys`/`values`/`drain`/… chains). Membership
//!   tests, inserts and lookups stay legal — only order-observing
//!   operations break the bit-parity determinism oracle.
//!
//! Like the lexical rules, both families prefer under-reporting to
//! misreporting: a construct the parser cannot classify produces no
//! finding, and each heuristic is scoped (via `lint.toml`) to crates
//! where its patterns are unambiguous.

use crate::config::LintConfig;
use crate::lexer::{Token, TokenKind};
use crate::parse::{FnItem, ParsedFile};
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Sink-like functions derived by [`sink_summaries`]: name → one
/// summary per distinct arity. Position-sensitive on purpose: a runner
/// whose `rng` parameter reaches the transport must not make its
/// `bids` parameter a violation. Arity-keyed on purpose too: the lint
/// cannot resolve receiver types, so same-name methods on different
/// types merge — but only when their parameter counts match, and call
/// sites are matched by argument count. (Without this,
/// `BatchRunner::run_honest(&self, runner, seed, instances)` would
/// poison position 1 of `DmwRunner::run_honest(&self, bids, rng)`.)
pub type SinkSummaries = BTreeMap<String, Vec<SinkSummary>>;

/// Summary of one derived sink-like function at one arity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SinkSummary {
    /// Total parameter count, `self` included.
    pub arity: usize,
    /// Parameter positions (0-based, `self` counts) that reach a sink.
    pub params: BTreeSet<usize>,
    /// True when the function's first parameter is `self`.
    pub has_self: bool,
}

/// Hash-ordered collection type heads L10 polices.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that observe a collection's iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

fn is_punct(t: Option<&Token>, c: char) -> bool {
    t.map(|t| t.kind) == Some(TokenKind::Punct(c))
}

fn is_kw(t: Option<&Token>, s: &str) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
}

fn matching(tokens: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    crate::parse::matching(tokens, start, open, close)
}

/// One `let` binding inside a body: name, optional ascribed-type range,
/// optional initializer range (token indices into the full stream).
struct LetBinding {
    name: String,
    ty: Option<(usize, usize)>,
    init: Option<(usize, usize)>,
}

/// Scans a body for simple `let [mut] name [: T] [= init];` bindings.
/// Pattern bindings (`let (a, b) = …`) are skipped — neither rule can
/// type them, and skipping under-reports rather than misreports.
fn let_bindings(tokens: &[Token], open: usize, close: usize) -> Vec<LetBinding> {
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        if !is_kw(tokens.get(i), "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if is_kw(tokens.get(j), "mut") {
            j += 1;
        }
        let Some(name_tok) = tokens.get(j) else { break };
        if name_tok.kind != TokenKind::Ident {
            i = j + 1;
            continue;
        }
        // Statement end: `;` at group depth 0 relative to the binding.
        let mut depth = 0usize;
        let mut k = j + 1;
        let mut colon = None;
        let mut eq = None;
        let mut end = close;
        while k < close {
            match tokens[k].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => depth = depth.saturating_sub(1),
                TokenKind::Punct(':') if depth == 0 && eq.is_none() && colon.is_none() => {
                    colon = Some(k);
                }
                TokenKind::Punct('=') if depth == 0 && eq.is_none() => {
                    // `==`, `<=`, `>=`, `=>` are not assignment.
                    let pair = is_punct(tokens.get(k + 1), '=')
                        || is_punct(tokens.get(k + 1), '>')
                        || matches!(
                            tokens.get(k - 1).map(|t| t.kind),
                            Some(TokenKind::Punct('=' | '<' | '>' | '!'))
                        );
                    if !pair {
                        eq = Some(k);
                    }
                }
                TokenKind::Punct(';') if depth == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        out.push(LetBinding {
            name: name_tok.text.clone(),
            ty: colon.map(|c| (c + 1, eq.unwrap_or(end))),
            init: eq.map(|e| (e + 1, end)),
        });
        i = end + 1;
    }
    out
}

// ---------------------------------------------------------------------
// L10 — determinism-order
// ---------------------------------------------------------------------

/// Flow-sensitive denial of `HashMap`/`HashSet` iteration. See module
/// docs; scoped by `lint.toml [l10] scope`.
pub fn l10(tokens: &[Token], file: &ParsedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Hash-typed struct fields anywhere in the file: iteration through
    // any `….field` access is flagged.
    let fields: BTreeSet<&str> = file
        .structs
        .iter()
        .flat_map(|s| &s.fields)
        .filter(|f| {
            f.type_head
                .as_deref()
                .is_some_and(|h| HASH_TYPES.contains(&h))
        })
        .map(|f| f.name.as_str())
        .collect();

    for f in &file.fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        let mut locals: BTreeSet<String> = f
            .params
            .iter()
            .filter(|p| {
                p.type_head
                    .as_deref()
                    .is_some_and(|h| HASH_TYPES.contains(&h))
            })
            .map(|p| p.name.clone())
            .collect();
        for b in let_bindings(tokens, open, close) {
            let ty_head =
                b.ty.and_then(|(s, e)| crate::parse::type_head(&tokens[s..e]));
            let hash_typed = ty_head.as_deref().is_some_and(|h| HASH_TYPES.contains(&h));
            let hash_init = b.init.is_some_and(|(s, e)| {
                tokens[s..e].iter().any(|t| {
                    t.kind == TokenKind::Ident
                        && (HASH_TYPES.contains(&t.text.as_str()) || locals.contains(&t.text))
                })
            });
            // An ascribed non-hash type wins over a hash-mentioning
            // initializer: `let v: Vec<_> = set_like_source…` is the
            // *consumer's* type.
            let tracked = hash_typed || (ty_head.is_none() && hash_init);
            if tracked {
                locals.insert(b.name);
            }
        }

        let flag = |findings: &mut Vec<Finding>, line: u32, name: &str, how: &str| {
            findings.push(Finding {
                rule: "L10",
                allow_key: "L10",
                line,
                message: format!(
                    "{how} over hash-ordered `{name}` — iteration order is \
                     nondeterministic and breaks bit-parity; use \
                     BTreeMap/BTreeSet or collect-and-sort first"
                ),
            });
        };

        let mut i = open + 1;
        while i < close {
            let t = &tokens[i];
            // Method-chain iteration: `recv.iter()`, `self.field.keys()`.
            if t.kind == TokenKind::Ident
                && ITER_METHODS.contains(&t.text.as_str())
                && is_punct(tokens.get(i + 1), '(')
                && is_punct(tokens.get(i.wrapping_sub(1)), '.')
                && i >= 2
            {
                let recv = &tokens[i - 2];
                if recv.kind == TokenKind::Ident {
                    let is_field_access = is_punct(tokens.get(i.wrapping_sub(3)), '.');
                    let hit = if is_field_access {
                        fields.contains(recv.text.as_str())
                    } else {
                        locals.contains(&recv.text)
                    };
                    if hit {
                        flag(&mut findings, t.line, &recv.text, &format!(".{}()", t.text));
                    }
                }
            }
            // Bare for-loop iteration: `for x in &map {`.
            if t.kind == TokenKind::Ident && t.text == "for" {
                if let Some((line, name)) =
                    for_loop_hash_receiver(tokens, i, close, &locals, &fields)
                {
                    flag(&mut findings, line, &name, "`for` loop");
                }
            }
            i += 1;
        }
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// For a `for` at index `i`, returns the receiver when the loop iterates
/// a tracked hash collection *directly* (`for x in &map {`). Method
/// chains are left to the method-call check.
fn for_loop_hash_receiver(
    tokens: &[Token],
    i: usize,
    close: usize,
    locals: &BTreeSet<String>,
    fields: &BTreeSet<&str>,
) -> Option<(u32, String)> {
    // Find the `in` at depth 0 before the loop body's `{`.
    let mut depth = 0usize;
    let mut j = i + 1;
    let in_pos = loop {
        if j >= close {
            return None;
        }
        match tokens[j].kind {
            TokenKind::Punct('(' | '[') => depth += 1,
            TokenKind::Punct(')' | ']') => depth = depth.saturating_sub(1),
            TokenKind::Punct('{') if depth == 0 => return None, // `impl … for T {`
            TokenKind::Ident if depth == 0 && tokens[j].text == "in" => break j,
            _ => {}
        }
        j += 1;
    };
    // Loop expression: `in` up to the body `{` at depth 0.
    let mut k = in_pos + 1;
    // Skip leading `&`, `&mut`, `*`.
    while is_punct(tokens.get(k), '&')
        || is_punct(tokens.get(k), '*')
        || is_kw(tokens.get(k), "mut")
    {
        k += 1;
    }
    // Accept only a dotted ident chain ending at the body brace.
    let mut chain_len = 0usize;
    let recv = loop {
        let t = tokens.get(k)?;
        if t.kind != TokenKind::Ident {
            return None;
        }
        chain_len += 1;
        k += 1;
        if is_punct(tokens.get(k), '{') {
            break t;
        }
        if is_punct(tokens.get(k), '.') {
            k += 1;
            continue;
        }
        return None;
    };
    let hit = if chain_len == 1 {
        locals.contains(&recv.text)
    } else {
        fields.contains(recv.text.as_str())
    };
    hit.then(|| (tokens[i].line, recv.text.clone()))
}

// ---------------------------------------------------------------------
// L9 — secrecy-taint
// ---------------------------------------------------------------------

/// Secrecy-taint over one file. `extra_sinks` holds the sink-like
/// function summaries derived by [`sink_summaries`] (empty for
/// single-file runs without the crate-level pass).
pub fn l9(
    tokens: &[Token],
    file: &ParsedFile,
    cfg: &LintConfig,
    extra_sinks: &SinkSummaries,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &file.fns {
        for hit in fn_taint_hits(tokens, f, cfg, extra_sinks, true, &BTreeSet::new()) {
            findings.push(Finding {
                rule: "L9",
                allow_key: "L9",
                line: hit.line,
                message: format!(
                    "secret value `{}` reaches serialization sink `{}` — \
                     only committed/masked forms may be serialized; route \
                     through an approved sanitizer (see lint.toml [l9]) ",
                    hit.offender, hit.sink
                )
                .trim_end()
                .to_owned(),
            });
        }
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Crate-level sink summarization: the fixpoint of "a parameter that
/// flows into a (possibly derived) sink makes its function sink-like at
/// that position". Call with every in-scope file's parse results; the
/// returned map feeds [`l9`] as `extra_sinks`. Functions sharing both a
/// name and an arity merge conservatively (union of positions);
/// different arities get separate summaries.
pub fn sink_summaries(files: &[(ParsedFile, Vec<Token>)], cfg: &LintConfig) -> SinkSummaries {
    let mut derived = SinkSummaries::new();
    // The workspace call graph is shallow; 4 rounds covers chains far
    // deeper than any real code here while bounding the loop.
    for _ in 0..4 {
        let mut changed = false;
        for (file, tokens) in files {
            for f in &file.fns {
                if f.body.is_none() || cfg.l9_sink_calls.contains(&f.name) {
                    continue;
                }
                let arity = f.params.len();
                let has_self = f.params.first().is_some_and(|p| p.name == "self");
                for (pi, p) in f.params.iter().enumerate() {
                    if derived.get(&f.name).is_some_and(|v| {
                        v.iter().any(|s| s.arity == arity && s.params.contains(&pi))
                    }) {
                        continue;
                    }
                    let seed = BTreeSet::from([p.name.clone()]);
                    let hits = fn_taint_hits(tokens, f, cfg, &derived, false, &seed);
                    if !hits.is_empty() {
                        let entry = derived.entry(f.name.clone()).or_default();
                        if !entry.iter().any(|s| s.arity == arity) {
                            entry.push(SinkSummary {
                                arity,
                                params: BTreeSet::new(),
                                has_self,
                            });
                        }
                        let s = entry
                            .iter_mut()
                            .find(|s| s.arity == arity)
                            .expect("just pushed");
                        s.params.insert(pi);
                        s.has_self |= has_self;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    derived
}

/// One taint hit inside a function body.
struct TaintHit {
    line: u32,
    sink: String,
    offender: String,
}

/// The shared dataflow pass. With `use_sources` the taint seed comes
/// from the configured source sets (the real L9 rule); without it the
/// seed is `extra_seed` alone (summary mode: "does this parameter reach
/// a sink?").
fn fn_taint_hits(
    tokens: &[Token],
    f: &FnItem,
    cfg: &LintConfig,
    extra_sinks: &SinkSummaries,
    use_sources: bool,
    extra_seed: &BTreeSet<String>,
) -> Vec<TaintHit> {
    let Some((open, close)) = f.body else {
        return Vec::new();
    };
    let mut tainted: BTreeSet<String> = extra_seed.clone();
    if use_sources {
        for p in &f.params {
            let by_name = cfg.l9_source_idents.contains(&p.name);
            let by_type = p
                .type_head
                .as_deref()
                .is_some_and(|h| cfg.l9_source_types.iter().any(|s| s == h));
            if by_name || by_type {
                tainted.insert(p.name.clone());
            }
        }
    }

    let mentions_taint = |range: &[Token], tainted: &BTreeSet<String>| -> Option<String> {
        for (i, t) in range.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            if tainted.contains(&t.text) {
                return Some(t.text.clone());
            }
            if use_sources {
                if cfg.l9_source_idents.contains(&t.text) || cfg.l9_source_types.contains(&t.text) {
                    return Some(t.text.clone());
                }
                if cfg.l9_source_calls.contains(&t.text) && is_punct(range.get(i + 1), '(') {
                    return Some(format!("{}()", t.text));
                }
            }
        }
        None
    };
    let has_sanitizer = |range: &[Token]| -> bool {
        range.iter().enumerate().any(|(i, t)| {
            t.kind == TokenKind::Ident
                && cfg.l9_sanitizers.contains(&t.text)
                && is_punct(range.get(i + 1), '(')
        })
    };

    // Propagate taint through let bindings, in source order.
    for b in let_bindings(tokens, open, close) {
        let Some((s, e)) = b.init else { continue };
        let init = &tokens[s..e];
        if has_sanitizer(init) {
            continue;
        }
        if mentions_taint(init, &tainted).is_some() {
            tainted.insert(b.name);
        }
    }

    // Scan for sink sites.
    let mut hits = Vec::new();
    let receiver_taint = |i: usize, tainted: &BTreeSet<String>| -> Option<String> {
        // The receiver chain before a `.sink(…)` call is payload too.
        let mut k = i;
        while k >= 2 && is_punct(tokens.get(k - 1), '.') {
            let r = &tokens[k - 2];
            if r.kind != TokenKind::Ident {
                break;
            }
            if mentions_taint(std::slice::from_ref(r), tainted).is_some() {
                return Some(r.text.clone());
            }
            k -= 2;
        }
        None
    };
    let mut i = open + 1;
    while i < close {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let is_call =
            is_punct(tokens.get(i + 1), '(') && !is_kw(tokens.get(i.wrapping_sub(1)), "fn");
        // Declared sink call: the whole argument list (and the receiver)
        // is payload — `w.encode(secret)`, `secret.encode(w)`.
        if is_call && cfg.l9_sink_calls.contains(&t.text) {
            if let Some(close_paren) = matching(tokens, i + 1, '(', ')') {
                let args = &tokens[i + 2..close_paren];
                let mut offender = None;
                if !has_sanitizer(args) {
                    offender = mentions_taint(args, &tainted);
                }
                if offender.is_none() {
                    offender = receiver_taint(i, &tainted);
                }
                if let Some(name) = offender {
                    hits.push(TaintHit {
                        line: t.line,
                        sink: format!("{}()", t.text),
                        offender: name,
                    });
                }
                i = close_paren + 1;
                continue;
            }
        }
        // Derived sink call: only the argument positions that actually
        // flow to a sink inside the callee are payload. Candidates are
        // matched by argument count so same-name functions of different
        // arity never cross-contaminate.
        if is_call {
            if let Some(summaries) = extra_sinks.get(&t.text) {
                if let Some(close_paren) = matching(tokens, i + 1, '(', ')') {
                    let is_method_call = is_punct(tokens.get(i.wrapping_sub(1)), '.');
                    let segs = split_top_commas(tokens, i + 2, close_paren);
                    let mut offender = None;
                    for summary in summaries {
                        let offset = usize::from(is_method_call && summary.has_self);
                        if summary.arity != segs.len() + offset {
                            continue;
                        }
                        for (si, (s, e)) in segs.iter().enumerate() {
                            if !summary.params.contains(&(si + offset)) {
                                continue;
                            }
                            let seg = &tokens[*s..*e];
                            if has_sanitizer(seg) {
                                continue;
                            }
                            if let Some(name) = mentions_taint(seg, &tainted) {
                                offender = Some(name);
                                break;
                            }
                        }
                        if offender.is_none() && is_method_call && summary.params.contains(&0) {
                            offender = receiver_taint(i, &tainted);
                        }
                        if offender.is_some() {
                            break;
                        }
                    }
                    if let Some(name) = offender {
                        hits.push(TaintHit {
                            line: t.line,
                            sink: format!("{}()", t.text),
                            offender: name,
                        });
                    }
                    i = close_paren + 1;
                    continue;
                }
            }
        }
        // Sink constructor: `Body::Shares { … }`, `Key { … }`.
        if cfg.l9_sink_ctors.contains(&t.text) {
            let (oc, cc) = if is_punct(tokens.get(i + 1), '{') {
                ('{', '}')
            } else if is_punct(tokens.get(i + 1), '(') {
                ('(', ')')
            } else {
                i += 1;
                continue;
            };
            if let Some(group_close) = matching(tokens, i + 1, oc, cc) {
                if ctor_is_expression(tokens, i, group_close) {
                    let body = &tokens[i + 2..group_close];
                    if !has_sanitizer(body) {
                        if let Some(name) = mentions_taint(body, &tainted) {
                            hits.push(TaintHit {
                                line: t.line,
                                sink: t.text.clone(),
                                offender: name,
                            });
                        }
                    }
                }
                i = if oc == '{' { group_close + 1 } else { i + 1 };
                continue;
            }
        }
        i += 1;
    }
    hits
}

/// Splits `tokens[start..end]` at top-level commas, returning the
/// `(start, end)` range of each argument segment.
fn split_top_commas(tokens: &[Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut seg_start = start;
    for (i, tok) in tokens.iter().enumerate().take(end).skip(start) {
        match tok.kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => depth = depth.saturating_sub(1),
            TokenKind::Punct(',') if depth == 0 => {
                out.push((seg_start, i));
                seg_start = i + 1;
            }
            _ => {}
        }
    }
    if seg_start < end {
        out.push((seg_start, end));
    }
    out
}

/// True when the sink-constructor candidate at `i` is an *expression*
/// (builds a value) rather than a pattern, a definition, or a return
/// type followed by a function body.
fn ctor_is_expression(tokens: &[Token], i: usize, group_close: usize) -> bool {
    // Walk back over the `Path::` prefix.
    let mut p = i;
    while p >= 3
        && is_punct(tokens.get(p - 1), ':')
        && is_punct(tokens.get(p - 2), ':')
        && tokens.get(p - 3).map(|t| t.kind) == Some(TokenKind::Ident)
    {
        p -= 3;
    }
    if let Some(prev) = tokens.get(p.wrapping_sub(1)) {
        if p >= 1 {
            // Definitions and impl headers.
            if prev.kind == TokenKind::Ident
                && ["struct", "enum", "trait", "impl", "for", "fn", "mod", "let"]
                    .contains(&prev.text.as_str())
            {
                return false;
            }
            // Return-type position: `-> Key { body }`.
            if prev.kind == TokenKind::Punct('>') && is_punct(tokens.get(p.wrapping_sub(2)), '-') {
                return false;
            }
        }
    }
    // Pattern positions: `Body::X { .. } =>`, `… } = expr`, or-patterns
    // and match guards.
    match tokens.get(group_close + 1) {
        Some(t) if t.kind == TokenKind::Punct('=') || t.kind == TokenKind::Punct('|') => false,
        Some(t) if t.kind == TokenKind::Ident && t.text == "if" => false,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;
    use crate::rules::strip_test_regions;

    fn run_l10(src: &str) -> Vec<Finding> {
        let (tokens, _) = lex(src);
        let tokens = strip_test_regions(&tokens);
        let file = parse(&tokens);
        l10(&tokens, &file)
    }

    fn run_l9(src: &str) -> Vec<Finding> {
        let (tokens, _) = lex(src);
        let tokens = strip_test_regions(&tokens);
        let file = parse(&tokens);
        l9(
            &tokens,
            &file,
            LintConfig::embedded(),
            &SinkSummaries::new(),
        )
    }

    #[test]
    fn l10_flags_iteration_not_membership() {
        let src = "fn f() { let mut m: HashMap<u64, usize> = HashMap::new(); \
                   m.insert(1, 2); if m.contains_key(&1) {} \
                   let top = m.into_iter().max_by_key(|&(_, c)| c); }";
        let out = run_l10(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`m`"));
    }

    #[test]
    fn l10_flags_for_loops_and_field_iteration() {
        let src = "struct Plan { links: HashSet<(usize, usize)> }\n\
                   impl Plan { fn a(&self) { for l in &self.links { use_it(l); } }\n\
                   fn b(&self) { let v: Vec<_> = self.links.iter().collect(); } }";
        let out = run_l10(src);
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn l10_ignores_vec_iteration_collected_into_a_set() {
        // `.iter()` belongs to the Vec; the set is only constructed.
        let src = "fn f(ids: &[String]) { \
                   let set: HashSet<&String> = ids.iter().collect(); \
                   if set.len() < ids.len() { panic!(); } }";
        assert!(run_l10(src).is_empty());
    }

    #[test]
    fn l10_ignores_range_loops_and_untracked_receivers() {
        let src = "fn f(m: &HashMap<u64, u64>, v: &[u64]) { \
                   for i in 0..m.len() { touch(i); } \
                   for x in v.iter() { touch(x); } }";
        assert!(run_l10(src).is_empty());
    }

    #[test]
    fn l9_flags_raw_secret_reaching_a_sink_ctor() {
        let src = "fn leak(bid: u64, task: usize) -> Body { \
                   Body::Disclose { task, f_values: vec![bid] } }";
        let out = run_l9(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`bid`"));
    }

    #[test]
    fn l9_taint_propagates_through_lets_and_stops_at_sanitizers() {
        let leak = "fn f(bid: u64) { let doubled = bid + bid; \
                    let msg = Body::Disclose { task: 0, f_values: vec![doubled] }; }";
        assert_eq!(run_l9(leak).len(), 1);
        let safe = "fn f(polys: &BidPolynomials, zq: &Zq, alpha: u64) { \
                    let bundle = polys.share_for(zq, alpha); \
                    let msg = Body::Shares { task: 0, bundle }; }";
        assert!(run_l9(safe).is_empty(), "{:?}", run_l9(safe));
    }

    #[test]
    fn l9_match_patterns_are_not_constructions() {
        let src = "fn g(b: &Body, bid: u64) -> u64 { match b { \
                   Body::Disclose { task, f_values } => bid, _ => 0 } }";
        assert!(run_l9(src).is_empty(), "{:?}", run_l9(src));
    }

    #[test]
    fn l9_sink_summaries_reach_one_call_deep() {
        let src = "fn emit(v: u64) { let b = Body::Disclose { task: 0, f_values: vec![v] }; }\n\
                   fn caller(bid: u64) { emit(bid); }";
        let (tokens, _) = lex(src);
        let tokens = strip_test_regions(&tokens);
        let file = parse(&tokens);
        let cfg = LintConfig::embedded();
        let derived = sink_summaries(std::slice::from_ref(&(file.clone(), tokens.clone())), cfg);
        assert!(derived.contains_key("emit"), "{derived:?}");
        assert!(derived["emit"][0].params.contains(&0));
        let out = l9(&tokens, &file, cfg, &derived);
        // One hit inside emit (v is not source-named, so only the caller
        // leaks) — the call site hands the raw bid to a sink-like fn.
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("emit"));
    }

    #[test]
    fn l9_derived_sinks_are_position_sensitive() {
        // `serialize` leaks only its second parameter; passing the bid
        // in the first position must not flag, in the second must.
        let src = "fn serialize(label: u64, v: u64) { \
                       let b = Body::Disclose { task: 0, f_values: vec![v] }; }\n\
                   fn ok(bid: u64) { serialize(7, 0); let n = 3; serialize(bid, n); }";
        let (tokens, _) = lex(src);
        let tokens = strip_test_regions(&tokens);
        let file = parse(&tokens);
        let cfg = LintConfig::embedded();
        let derived = sink_summaries(std::slice::from_ref(&(file.clone(), tokens.clone())), cfg);
        assert_eq!(
            derived["serialize"][0].params,
            BTreeSet::from([1usize]),
            "{derived:?}"
        );
        assert!(l9(&tokens, &file, cfg, &derived).is_empty());
        let leak = src.replace("serialize(bid, n)", "serialize(n, bid)");
        let (tokens, _) = lex(&leak);
        let tokens = strip_test_regions(&tokens);
        let file = parse(&tokens);
        let out = l9(&tokens, &file, cfg, &derived);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn l9_same_name_different_arity_summaries_do_not_merge() {
        // Two unrelated methods named `deliver` (think DmwRunner vs
        // BatchRunner): the 1-arg variant sinks its argument, the 2-arg
        // variant is clean in its first position. A call with two
        // arguments must match only the 2-arg summary.
        let src = "fn deliver(v: u64) { let b = Body::Disclose { task: 0, f_values: vec![v] }; }\n\
                   fn deliver(x: u64, out: &mut Vec<u64>) { \
                       let b = Body::Disclose { task: 0, f_values: vec![out.len() as u64] }; }\n\
                   fn ok(bid: u64) { let mut sink = Vec::new(); deliver(bid, &mut sink); }\n\
                   fn bad(bid: u64) { deliver(bid); }";
        let (tokens, _) = lex(src);
        let tokens = strip_test_regions(&tokens);
        let file = parse(&tokens);
        let cfg = LintConfig::embedded();
        let derived = sink_summaries(std::slice::from_ref(&(file.clone(), tokens.clone())), cfg);
        let out = l9(&tokens, &file, cfg, &derived);
        // Exactly one hit, in `bad` — `ok`'s 2-arg call matches the
        // clean-first-position summary only.
        assert_eq!(out.len(), 1, "{out:?}");
        let bad_line = 4;
        assert_eq!(out[0].line, bad_line, "{out:?}");
    }
}
