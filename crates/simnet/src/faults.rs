//! Fault injection for the simulated network.
//!
//! DMW tolerates up to `c` faulty agents (Section 3, Notation): below the
//! threshold the mechanism remains computable, above it resolution fails
//! (the paper's answer to Feigenbaum–Shenker Open Problem 11). The
//! resilience ablation drives these fault plans.

use crate::network::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A declarative fault schedule applied by the [`crate::Transport`]
/// implementations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// `crashes[i] = Some(r)` crashes node `i` at the *start* of round `r`:
    /// from round `r` on, nothing it sends is delivered and nothing reaches
    /// it.
    crashes: Vec<Option<u64>>,
    /// Ordered pairs `(from, to)` whose messages are silently dropped.
    dropped_links: HashSet<(usize, usize)>,
    /// Drop every `k`-th transmitted message (deterministic lossy
    /// network; `None` = lossless).
    drop_every: Option<u64>,
    /// Extra delivery delay, in rounds, for specific directed links —
    /// honoured by [`crate::DelayTransport`] (the lockstep transport
    /// models the paper's synchronous barriers and ignores it). Kept as a
    /// sorted-insert-free `Vec` rather than a map: plans are tiny and a
    /// linear probe keeps iteration order (and hence replay) trivially
    /// deterministic.
    link_delays: Vec<(usize, usize, u64)>,
}

impl FaultPlan {
    /// A fault-free plan for `n` nodes.
    pub fn none(n: usize) -> Self {
        FaultPlan {
            crashes: vec![None; n],
            dropped_links: HashSet::new(),
            drop_every: None,
            link_delays: Vec::new(),
        }
    }

    /// Drops every `k`-th transmitted message — a deterministic model of
    /// a lossy network used by the safety-under-loss tests.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn drop_every(mut self, k: u64) -> Self {
        assert!(k > 0, "drop period must be positive");
        self.drop_every = Some(k);
        self
    }

    /// Is the `counter`-th message (1-based) lost to the periodic-drop
    /// schedule?
    pub fn is_periodically_dropped(&self, counter: u64) -> bool {
        matches!(self.drop_every, Some(k) if counter.is_multiple_of(k))
    }

    /// Schedules `node` to crash at the start of `round`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn crash_at(mut self, node: NodeId, round: u64) -> Self {
        assert!(node.0 < self.crashes.len(), "node {} out of range", node.0);
        self.crashes[node.0] = Some(round);
        self
    }

    /// Drops every message from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn drop_link(mut self, from: NodeId, to: NodeId) -> Self {
        assert!(from.0 < self.crashes.len() && to.0 < self.crashes.len());
        self.dropped_links.insert((from.0, to.0));
        self
    }

    /// Is `node` crashed as of `round`?
    pub fn is_crashed(&self, node: NodeId, round: u64) -> bool {
        matches!(self.crashes.get(node.0), Some(Some(r)) if *r <= round)
    }

    /// Is the directed link `from → to` dropped?
    pub fn is_link_dropped(&self, from: NodeId, to: NodeId) -> bool {
        self.dropped_links.contains(&(from.0, to.0))
    }

    /// Delays every message on the directed link `from → to` by an extra
    /// `rounds` ticks beyond the transport's own latency. Scheduling the
    /// same link twice keeps the later value.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn delay_link(mut self, from: NodeId, to: NodeId, rounds: u64) -> Self {
        assert!(from.0 < self.crashes.len() && to.0 < self.crashes.len());
        if let Some(entry) = self
            .link_delays
            .iter_mut()
            .find(|(f, t, _)| *f == from.0 && *t == to.0)
        {
            entry.2 = rounds;
        } else {
            self.link_delays.push((from.0, to.0, rounds));
        }
        self
    }

    /// The scheduled extra delay for the directed link `from → to`
    /// (`0` when the link has none).
    pub fn link_delay(&self, from: NodeId, to: NodeId) -> u64 {
        self.link_delays
            .iter()
            .find(|(f, t, _)| *f == from.0 && *t == to.0)
            .map(|(_, _, d)| *d)
            .unwrap_or(0)
    }

    /// Number of nodes that are crashed as of `round`.
    pub fn crashed_count(&self, round: u64) -> usize {
        self.crashes
            .iter()
            .filter(|c| matches!(c, Some(r) if *r <= round))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_takes_effect_at_round() {
        let plan = FaultPlan::none(3).crash_at(NodeId(1), 2);
        assert!(!plan.is_crashed(NodeId(1), 0));
        assert!(!plan.is_crashed(NodeId(1), 1));
        assert!(plan.is_crashed(NodeId(1), 2));
        assert!(plan.is_crashed(NodeId(1), 5));
        assert!(!plan.is_crashed(NodeId(0), 5));
        assert_eq!(plan.crashed_count(1), 0);
        assert_eq!(plan.crashed_count(2), 1);
    }

    #[test]
    fn dropped_links_are_directional() {
        let plan = FaultPlan::none(3).drop_link(NodeId(0), NodeId(1));
        assert!(plan.is_link_dropped(NodeId(0), NodeId(1)));
        assert!(!plan.is_link_dropped(NodeId(1), NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_crash_panics() {
        let _ = FaultPlan::none(2).crash_at(NodeId(5), 0);
    }

    #[test]
    fn link_delays_are_directional_and_last_write_wins() {
        let plan = FaultPlan::none(3)
            .delay_link(NodeId(0), NodeId(1), 2)
            .delay_link(NodeId(0), NodeId(1), 4)
            .delay_link(NodeId(2), NodeId(0), 1);
        assert_eq!(plan.link_delay(NodeId(0), NodeId(1)), 4);
        assert_eq!(plan.link_delay(NodeId(1), NodeId(0)), 0);
        assert_eq!(plan.link_delay(NodeId(2), NodeId(0)), 1);
    }
}
