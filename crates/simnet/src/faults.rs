//! Fault injection for the simulated network.
//!
//! DMW tolerates up to `c` faulty agents (Section 3, Notation): below the
//! threshold the mechanism remains computable, above it resolution fails
//! (the paper's answer to Feigenbaum–Shenker Open Problem 11). The
//! resilience ablation drives these fault plans.
//!
//! Every schedule here is a pure function of the plan and the message's
//! logical coordinates (sender, recipient, send round, enqueue sequence
//! number) — never of wall-clock time or delivery order — so the same
//! plan selects the same losses on every [`crate::Transport`].

use crate::network::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// SplitMix64: the classic 64-bit finalizer-based generator.
/// Self-contained so the simulator stays free of RNG dependencies and
/// ambient entropy — every draw is a pure function of the inputs.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain-separation constant XORed into the probabilistic-loss hash so
/// a seed shared with a [`crate::DelayProfile`] jitter stream never
/// produces correlated draws.
const DROP_PROB_DOMAIN: u64 = 0x6C62_272E_07BB_0142;

/// Parts-per-million denominator for the seeded-loss schedule.
const PPM: u64 = 1_000_000;

/// One transient-partition window: the directed link drops every message
/// *sent* in rounds `start..end` (half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct TransientWindow {
    from: usize,
    to: usize,
    start: u64,
    end: u64,
}

/// One flapping schedule: the directed link repeats `up` healthy rounds
/// followed by `down` dead rounds, keyed on the send round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct LinkFlap {
    from: usize,
    to: usize,
    up: u64,
    down: u64,
}

/// A declarative fault schedule applied by the [`crate::Transport`]
/// implementations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// `crashes[i] = Some(r)` crashes node `i` at the *start* of round `r`:
    /// from round `r` on, nothing it sends is delivered and nothing reaches
    /// it.
    crashes: Vec<Option<u64>>,
    /// Ordered pairs `(from, to)` whose messages are silently dropped.
    dropped_links: BTreeSet<(usize, usize)>,
    /// Drop every `k`-th transmitted message (deterministic lossy
    /// network; `None` = lossless).
    drop_every: Option<u64>,
    /// Extra delivery delay, in rounds, for specific directed links —
    /// honoured by [`crate::DelayTransport`] (the lockstep transport
    /// models the paper's synchronous barriers and ignores it). Kept as a
    /// sorted-insert-free `Vec` rather than a map: plans are tiny and a
    /// linear probe keeps iteration order (and hence replay) trivially
    /// deterministic.
    link_delays: Vec<(usize, usize, u64)>,
    /// Seeded Bernoulli loss as `(parts_per_million, seed)`: each
    /// transmission is dropped with probability `ppm / 1e6`, decided by
    /// hashing the seed with the message's enqueue sequence number.
    /// Stored as integers (never the original `f64`) so the plan keeps
    /// `Eq` and a canonical serde form. Absent on older serialized plans.
    #[serde(default)]
    drop_prob: Option<(u64, u64)>,
    /// Transient-partition windows, keyed on the send round. Absent on
    /// older serialized plans.
    #[serde(default)]
    transient_windows: Vec<TransientWindow>,
    /// Flapping schedules, keyed on the send round. Absent on older
    /// serialized plans.
    #[serde(default)]
    link_flaps: Vec<LinkFlap>,
    /// Asymmetric ack-path loss: drop every `k`-th *control*
    /// transmission (acks, nacks) while data traffic is untouched —
    /// the regime where selective acknowledgment has to earn its keep.
    /// Keyed on a control-only enqueue counter so the schedule is
    /// independent of how much data shares the wire. Absent on older
    /// serialized plans.
    #[serde(default)]
    ack_drop_every: Option<u64>,
    /// Deterministic reordering: every `k`-th transmission (keyed on the
    /// shared enqueue counter, same as `drop_every`) is held back one
    /// extra round, arriving *after* messages enqueued later. Absent on
    /// older serialized plans.
    #[serde(default)]
    reorder_every: Option<u64>,
}

impl FaultPlan {
    /// A fault-free plan for `n` nodes.
    pub fn none(n: usize) -> Self {
        FaultPlan {
            crashes: vec![None; n],
            ..FaultPlan::default()
        }
    }

    /// Drops every `k`-th transmitted message — a deterministic model of
    /// a lossy network used by the safety-under-loss tests.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn drop_every(mut self, k: u64) -> Self {
        assert!(k > 0, "drop period must be positive");
        self.drop_every = Some(k);
        self
    }

    /// Is the `counter`-th message (1-based) lost to the periodic-drop
    /// schedule?
    pub fn is_periodically_dropped(&self, counter: u64) -> bool {
        matches!(self.drop_every, Some(k) if counter.is_multiple_of(k))
    }

    /// Drops every `k`-th *control* transmission (acks, nacks — payloads
    /// reporting [`crate::Payload::is_control`]) while data keeps
    /// flowing: the asymmetric regime where a lost acknowledgment, not a
    /// lost payload, is what forces retransmission.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn drop_acks_every(mut self, k: u64) -> Self {
        assert!(k > 0, "ack-drop period must be positive");
        self.ack_drop_every = Some(k);
        self
    }

    /// Is the `counter`-th control transmission (1-based, counting
    /// control traffic only) lost to the ack-path schedule?
    pub fn is_ack_path_dropped(&self, counter: u64) -> bool {
        matches!(self.ack_drop_every, Some(k) if counter.is_multiple_of(k))
    }

    /// Reorders every `k`-th transmission: it survives loss
    /// classification as usual but arrives one round later than its
    /// enqueue slot, behind messages sent after it. Keyed on the same
    /// shared enqueue counter as [`FaultPlan::drop_every`], so both
    /// transports displace the same logical messages.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn reorder_every(mut self, k: u64) -> Self {
        assert!(k > 0, "reorder period must be positive");
        self.reorder_every = Some(k);
        self
    }

    /// Is the message with enqueue sequence number `seq` (1-based) held
    /// back by the reorder schedule?
    pub fn is_reordered(&self, seq: u64) -> bool {
        matches!(self.reorder_every, Some(k) if seq.is_multiple_of(k))
    }

    /// Drops each transmission independently with probability `p`,
    /// decided by a seeded hash of the message's enqueue sequence
    /// number — the same logical messages are lost on every transport.
    /// `p` is quantized to parts-per-million so the plan stays `Eq` and
    /// byte-stable under serde.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a finite probability in `0.0..=1.0`.
    pub fn drop_prob(mut self, p: f64, seed: u64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "drop probability must be in 0.0..=1.0"
        );
        // In-range cast: p ∈ [0, 1] so p · 1e6 rounds to 0..=1_000_000,
        // far inside u64.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let ppm = (p * PPM as f64).round() as u64;
        self.drop_prob = Some((ppm, seed));
        self
    }

    /// Is the message with enqueue sequence number `seq` (1-based) lost
    /// to the seeded probabilistic schedule?
    pub fn is_probabilistically_dropped(&self, seq: u64) -> bool {
        matches!(
            self.drop_prob,
            Some((ppm, seed)) if splitmix64(seed ^ DROP_PROB_DOMAIN ^ seq) % PPM < ppm
        )
    }

    /// Schedules `node` to crash at the start of `round`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn crash_at(mut self, node: NodeId, round: u64) -> Self {
        assert!(node.0 < self.crashes.len(), "node {} out of range", node.0);
        self.crashes[node.0] = Some(round);
        self
    }

    /// Drops every message from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn drop_link(mut self, from: NodeId, to: NodeId) -> Self {
        assert!(from.0 < self.crashes.len() && to.0 < self.crashes.len());
        self.dropped_links.insert((from.0, to.0));
        self
    }

    /// Transient partition: drops every message *sent* on the directed
    /// link `from → to` during rounds `start..end` (half-open). Multiple
    /// windows per link are allowed but must not overlap — an
    /// overlapping schedule is almost always a typo, and rejecting it
    /// keeps [`FaultPlan::heal_at`] semantics unambiguous.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range, `start >= end`, or the
    /// window overlaps an existing one on the same directed link.
    pub fn drop_link_between(mut self, from: NodeId, to: NodeId, start: u64, end: u64) -> Self {
        assert!(
            from.0 < self.crashes.len() && to.0 < self.crashes.len(),
            "node out of range"
        );
        assert!(start < end, "transient window must satisfy start < end");
        for w in &self.transient_windows {
            if w.from == from.0 && w.to == to.0 {
                assert!(
                    end <= w.start || w.end <= start,
                    "transient window {start}..{end} overlaps existing {}..{} on link {} → {}",
                    w.start,
                    w.end,
                    from.0,
                    to.0
                );
            }
        }
        self.transient_windows.push(TransientWindow {
            from: from.0,
            to: to.0,
            start,
            end,
        });
        self
    }

    /// Heals the directed link `from → to` from `round` on: transient
    /// windows starting at or after `round` are removed, and a window
    /// straddling `round` is truncated to end there. Windows already
    /// closed before `round` are untouched.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn heal_at(mut self, from: NodeId, to: NodeId, round: u64) -> Self {
        assert!(
            from.0 < self.crashes.len() && to.0 < self.crashes.len(),
            "node out of range"
        );
        for w in &mut self.transient_windows {
            if w.from == from.0 && w.to == to.0 && w.end > round {
                w.end = round;
            }
        }
        self.transient_windows
            .retain(|w| !(w.from == from.0 && w.to == to.0 && w.start >= w.end));
        self
    }

    /// Is the directed link `from → to` transiently partitioned for
    /// messages sent at `round`?
    pub fn is_transiently_dropped(&self, from: NodeId, to: NodeId, round: u64) -> bool {
        self.transient_windows
            .iter()
            .any(|w| w.from == from.0 && w.to == to.0 && (w.start..w.end).contains(&round))
    }

    /// Link flapping: the directed link `from → to` repeats `up` healthy
    /// rounds followed by `down` dead rounds, starting healthy at round
    /// `0` and keyed on the send round. Scheduling the same link twice
    /// keeps the later values.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `up == 0 || down == 0`
    /// (a zero phase is either "always down" — use
    /// [`FaultPlan::drop_link`] — or "never down" — omit the flap).
    pub fn flap_link(mut self, from: NodeId, to: NodeId, up: u64, down: u64) -> Self {
        assert!(
            from.0 < self.crashes.len() && to.0 < self.crashes.len(),
            "node out of range"
        );
        assert!(up > 0 && down > 0, "flap phases must both be positive");
        if let Some(entry) = self
            .link_flaps
            .iter_mut()
            .find(|f| f.from == from.0 && f.to == to.0)
        {
            entry.up = up;
            entry.down = down;
        } else {
            self.link_flaps.push(LinkFlap {
                from: from.0,
                to: to.0,
                up,
                down,
            });
        }
        self
    }

    /// Is the directed link `from → to` in the dead phase of its flap
    /// schedule for messages sent at `round`?
    pub fn is_flapped_down(&self, from: NodeId, to: NodeId, round: u64) -> bool {
        self.link_flaps
            .iter()
            .any(|f| f.from == from.0 && f.to == to.0 && round % (f.up + f.down) >= f.up)
    }

    /// Is `node` crashed as of `round`?
    pub fn is_crashed(&self, node: NodeId, round: u64) -> bool {
        matches!(self.crashes.get(node.0), Some(Some(r)) if *r <= round)
    }

    /// Is the directed link `from → to` dropped?
    pub fn is_link_dropped(&self, from: NodeId, to: NodeId) -> bool {
        self.dropped_links.contains(&(from.0, to.0))
    }

    /// Delays every message on the directed link `from → to` by an extra
    /// `rounds` ticks beyond the transport's own latency. Scheduling the
    /// same link twice keeps the later value.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn delay_link(mut self, from: NodeId, to: NodeId, rounds: u64) -> Self {
        assert!(from.0 < self.crashes.len() && to.0 < self.crashes.len());
        if let Some(entry) = self
            .link_delays
            .iter_mut()
            .find(|(f, t, _)| *f == from.0 && *t == to.0)
        {
            entry.2 = rounds;
        } else {
            self.link_delays.push((from.0, to.0, rounds));
        }
        self
    }

    /// The scheduled extra delay for the directed link `from → to`, or
    /// `None` when the plan has no entry for it. `None` and `Some(0)`
    /// deliver identically; the distinction only tells you whether the
    /// plan *mentions* the link. Use [`FaultPlan::link_delay_or_zero`]
    /// when only the effective latency matters.
    pub fn link_delay(&self, from: NodeId, to: NodeId) -> Option<u64> {
        self.link_delays
            .iter()
            .find(|(f, t, _)| *f == from.0 && *t == to.0)
            .map(|(_, _, d)| *d)
    }

    /// The effective extra delay for the directed link `from → to`
    /// (`0` when the plan has no entry) — the convenience form the
    /// transports use.
    pub fn link_delay_or_zero(&self, from: NodeId, to: NodeId) -> u64 {
        self.link_delay(from, to).unwrap_or(0)
    }

    /// Number of nodes that are crashed as of `round`.
    pub fn crashed_count(&self, round: u64) -> usize {
        self.crashes
            .iter()
            .filter(|c| matches!(c, Some(r) if *r <= round))
            .count()
    }

    /// Serializes the plan as canonical single-line JSON: fixed field
    /// order, dropped links sorted, integers only. The serde derives in
    /// this workspace are offline marker stubs (see `vendor/serde`), so
    /// this hand-rolled form — the same approach `dmw-obs` takes for
    /// `MetricsSnapshot::to_json` — is the operative wire format for
    /// fault plans. Equal plans always serialize to identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"crashes\":[");
        for (i, c) in self.crashes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match c {
                Some(r) => out.push_str(&r.to_string()),
                None => out.push_str("null"),
            }
        }
        out.push_str("],\"dropped_links\":[");
        // BTreeSet iterates in sorted order, which is exactly the
        // canonical-JSON order this format requires.
        for (i, (f, t)) in self.dropped_links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{f},{t}]"));
        }
        out.push_str("],\"drop_every\":");
        match self.drop_every {
            Some(k) => out.push_str(&k.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"link_delays\":[");
        for (i, (f, t, d)) in self.link_delays.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{f},{t},{d}]"));
        }
        out.push_str("],\"drop_prob\":");
        match self.drop_prob {
            Some((ppm, seed)) => out.push_str(&format!("[{ppm},{seed}]")),
            None => out.push_str("null"),
        }
        out.push_str(",\"transient_windows\":[");
        for (i, w) in self.transient_windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{},{},{}]", w.from, w.to, w.start, w.end));
        }
        out.push_str("],\"link_flaps\":[");
        for (i, f) in self.link_flaps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{},{},{}]", f.from, f.to, f.up, f.down));
        }
        out.push_str("],\"ack_drop_every\":");
        match self.ack_drop_every {
            Some(k) => out.push_str(&k.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"reorder_every\":");
        match self.reorder_every {
            Some(k) => out.push_str(&k.to_string()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Parses a plan from [`FaultPlan::to_json`]'s format, validating
    /// every builder invariant (node ranges, non-zero periods, window
    /// ordering and overlap) so a hand-edited plan cannot smuggle in a
    /// state the builders would have rejected. The three chaos-matrix
    /// fields (`drop_prob`, `transient_windows`, `link_flaps`) may be
    /// omitted — plans recorded before they existed parse with those
    /// fields defaulted. Unknown keys are an error.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let mut cur = json::Cursor::new(text);
        let mut plan = FaultPlan::default();
        cur.expect(b'{')?;
        if !cur.eat(b'}') {
            loop {
                let key = cur.string()?;
                cur.expect(b':')?;
                match key.as_str() {
                    "crashes" => plan.crashes = cur.array(json::Cursor::opt_u64)?,
                    "dropped_links" => {
                        for pair in cur.array(|c| c.fixed_tuple(2))? {
                            plan.dropped_links
                                .insert((json::index(pair[0])?, json::index(pair[1])?));
                        }
                    }
                    "drop_every" => plan.drop_every = cur.opt_u64()?,
                    "link_delays" => {
                        for t in cur.array(|c| c.fixed_tuple(3))? {
                            plan.link_delays
                                .push((json::index(t[0])?, json::index(t[1])?, t[2]));
                        }
                    }
                    "drop_prob" => {
                        plan.drop_prob = cur.opt_tuple(2)?.map(|t| (t[0], t[1]));
                    }
                    "transient_windows" => {
                        for t in cur.array(|c| c.fixed_tuple(4))? {
                            plan.transient_windows.push(TransientWindow {
                                from: json::index(t[0])?,
                                to: json::index(t[1])?,
                                start: t[2],
                                end: t[3],
                            });
                        }
                    }
                    "link_flaps" => {
                        for t in cur.array(|c| c.fixed_tuple(4))? {
                            plan.link_flaps.push(LinkFlap {
                                from: json::index(t[0])?,
                                to: json::index(t[1])?,
                                up: t[2],
                                down: t[3],
                            });
                        }
                    }
                    "ack_drop_every" => plan.ack_drop_every = cur.opt_u64()?,
                    "reorder_every" => plan.reorder_every = cur.opt_u64()?,
                    other => return Err(format!("unknown key {other:?}")),
                }
                if cur.eat(b'}') {
                    break;
                }
                cur.expect(b',')?;
            }
        }
        cur.end()?;
        plan.validate()?;
        Ok(plan)
    }

    /// Re-checks every invariant the builder methods assert, as a
    /// `Result` — the safe boundary for plans arriving from
    /// [`FaultPlan::from_json`] rather than the typed builders.
    fn validate(&self) -> Result<(), String> {
        let n = self.crashes.len();
        let node_ok = |i: usize| -> Result<(), String> {
            if i < n {
                Ok(())
            } else {
                Err(format!("node {i} out of range for {n} nodes"))
            }
        };
        for (f, t) in &self.dropped_links {
            node_ok(*f)?;
            node_ok(*t)?;
        }
        if self.drop_every == Some(0) {
            return Err("drop period must be positive".into());
        }
        if self.ack_drop_every == Some(0) {
            return Err("ack-drop period must be positive".into());
        }
        if self.reorder_every == Some(0) {
            return Err("reorder period must be positive".into());
        }
        for (f, t, _) in &self.link_delays {
            node_ok(*f)?;
            node_ok(*t)?;
        }
        if let Some((ppm, _)) = self.drop_prob {
            if ppm > PPM {
                return Err(format!("drop probability {ppm} ppm exceeds 1.0"));
            }
        }
        for (i, w) in self.transient_windows.iter().enumerate() {
            node_ok(w.from)?;
            node_ok(w.to)?;
            if w.start >= w.end {
                return Err(format!(
                    "transient window {}..{} must satisfy start < end",
                    w.start, w.end
                ));
            }
            for other in self.transient_windows.iter().take(i) {
                if other.from == w.from
                    && other.to == w.to
                    && w.end > other.start
                    && other.end > w.start
                {
                    return Err(format!(
                        "transient window {}..{} overlaps {}..{} on link {} → {}",
                        w.start, w.end, other.start, other.end, w.from, w.to
                    ));
                }
            }
        }
        for f in &self.link_flaps {
            node_ok(f.from)?;
            node_ok(f.to)?;
            if f.up == 0 || f.down == 0 {
                return Err("flap phases must both be positive".into());
            }
        }
        Ok(())
    }
}

/// The minimal strict JSON reader behind [`FaultPlan::from_json`]: bare
/// unsigned integers, `null`, arrays, and string keys — exactly the
/// grammar [`FaultPlan::to_json`] emits, with whitespace tolerated.
mod json {
    /// Converts a parsed `u64` into a node index.
    pub(super) fn index(v: u64) -> Result<usize, String> {
        usize::try_from(v).map_err(|_| format!("node id {v} does not fit in usize"))
    }

    pub(super) struct Cursor<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        pub(super) fn new(text: &'a str) -> Self {
            Cursor {
                bytes: text.as_bytes(),
                pos: 0,
            }
        }

        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        pub(super) fn expect(&mut self, want: u8) -> Result<(), String> {
            match self.peek() {
                Some(b) if b == want => {
                    self.pos += 1;
                    Ok(())
                }
                found => Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    want as char,
                    self.pos,
                    found.map(|b| b as char)
                )),
            }
        }

        pub(super) fn eat(&mut self, want: u8) -> bool {
            if self.peek() == Some(want) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        fn keyword(&mut self, word: &str) -> bool {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                true
            } else {
                false
            }
        }

        pub(super) fn u64(&mut self) -> Result<u64, String> {
            self.skip_ws();
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
            if start == self.pos {
                return Err(format!("expected a number at byte {start}"));
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("number out of range at byte {start}"))
        }

        pub(super) fn opt_u64(&mut self) -> Result<Option<u64>, String> {
            if self.keyword("null") {
                Ok(None)
            } else {
                self.u64().map(Some)
            }
        }

        /// A double-quoted key; the grammar never needs escapes.
        pub(super) fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let start = self.pos;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| *b != b'"' && *b != b'\\')
            {
                self.pos += 1;
            }
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(format!("unterminated string at byte {start}"));
            }
            let s = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "non-UTF-8 string".to_string())?
                .to_string();
            self.pos += 1;
            Ok(s)
        }

        pub(super) fn array<T>(
            &mut self,
            mut elem: impl FnMut(&mut Self) -> Result<T, String>,
        ) -> Result<Vec<T>, String> {
            self.expect(b'[')?;
            let mut out = Vec::new();
            if self.eat(b']') {
                return Ok(out);
            }
            loop {
                out.push(elem(self)?);
                if self.eat(b']') {
                    return Ok(out);
                }
                self.expect(b',')?;
            }
        }

        /// A `[u64; arity]` array, e.g. `[from,to,start,end]`.
        pub(super) fn fixed_tuple(&mut self, arity: usize) -> Result<Vec<u64>, String> {
            let vals = self.array(Self::u64)?;
            if vals.len() == arity {
                Ok(vals)
            } else {
                Err(format!("expected {arity} elements, found {}", vals.len()))
            }
        }

        /// `null` or a `[u64; arity]` array.
        pub(super) fn opt_tuple(&mut self, arity: usize) -> Result<Option<Vec<u64>>, String> {
            if self.keyword("null") {
                Ok(None)
            } else {
                self.fixed_tuple(arity).map(Some)
            }
        }

        /// Asserts nothing but whitespace remains.
        pub(super) fn end(&mut self) -> Result<(), String> {
            self.skip_ws();
            if self.pos == self.bytes.len() {
                Ok(())
            } else {
                Err(format!("trailing bytes at {}", self.pos))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_takes_effect_at_round() {
        let plan = FaultPlan::none(3).crash_at(NodeId(1), 2);
        assert!(!plan.is_crashed(NodeId(1), 0));
        assert!(!plan.is_crashed(NodeId(1), 1));
        assert!(plan.is_crashed(NodeId(1), 2));
        assert!(plan.is_crashed(NodeId(1), 5));
        assert!(!plan.is_crashed(NodeId(0), 5));
        assert_eq!(plan.crashed_count(1), 0);
        assert_eq!(plan.crashed_count(2), 1);
    }

    #[test]
    fn dropped_links_are_directional() {
        let plan = FaultPlan::none(3).drop_link(NodeId(0), NodeId(1));
        assert!(plan.is_link_dropped(NodeId(0), NodeId(1)));
        assert!(!plan.is_link_dropped(NodeId(1), NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_crash_panics() {
        let _ = FaultPlan::none(2).crash_at(NodeId(5), 0);
    }

    #[test]
    #[should_panic(expected = "drop period must be positive")]
    fn drop_every_zero_panics() {
        let _ = FaultPlan::none(2).drop_every(0);
    }

    #[test]
    fn link_delays_are_directional_and_last_write_wins() {
        let plan = FaultPlan::none(3)
            .delay_link(NodeId(0), NodeId(1), 2)
            .delay_link(NodeId(0), NodeId(1), 4)
            .delay_link(NodeId(2), NodeId(0), 1);
        assert_eq!(plan.link_delay(NodeId(0), NodeId(1)), Some(4));
        assert_eq!(plan.link_delay(NodeId(1), NodeId(0)), None);
        assert_eq!(plan.link_delay_or_zero(NodeId(1), NodeId(0)), 0);
        assert_eq!(plan.link_delay(NodeId(2), NodeId(0)), Some(1));
        assert_eq!(plan.link_delay_or_zero(NodeId(2), NodeId(0)), 1);
    }

    #[test]
    fn link_delay_distinguishes_explicit_zero_from_absent() {
        let plan = FaultPlan::none(2).delay_link(NodeId(0), NodeId(1), 0);
        assert_eq!(plan.link_delay(NodeId(0), NodeId(1)), Some(0));
        assert_eq!(plan.link_delay(NodeId(1), NodeId(0)), None);
        assert_eq!(plan.link_delay_or_zero(NodeId(0), NodeId(1)), 0);
    }

    #[test]
    fn probabilistic_drop_rate_tracks_the_requested_probability() {
        let plan = FaultPlan::none(2).drop_prob(0.10, 42);
        let dropped = (1..=100_000u64)
            .filter(|seq| plan.is_probabilistically_dropped(*seq))
            .count();
        // 100k Bernoulli(0.1) draws: expect ~10_000, allow a wide band.
        assert!(
            (9_000..=11_000).contains(&dropped),
            "observed {dropped} drops out of 100k at p = 0.10"
        );
        let zero = FaultPlan::none(2).drop_prob(0.0, 42);
        assert!(!(1..=1000u64).any(|s| zero.is_probabilistically_dropped(s)));
        let one = FaultPlan::none(2).drop_prob(1.0, 42);
        assert!((1..=1000u64).all(|s| one.is_probabilistically_dropped(s)));
    }

    #[test]
    fn probabilistic_drops_are_seed_deterministic() {
        let a = FaultPlan::none(2).drop_prob(0.25, 7);
        let b = FaultPlan::none(2).drop_prob(0.25, 7);
        let c = FaultPlan::none(2).drop_prob(0.25, 8);
        let pick = |p: &FaultPlan| {
            (1..=512u64)
                .filter(|s| p.is_probabilistically_dropped(*s))
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(&a), pick(&b), "same seed, same schedule");
        assert_ne!(pick(&a), pick(&c), "different seed, different schedule");
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn out_of_range_drop_prob_panics() {
        let _ = FaultPlan::none(2).drop_prob(1.5, 0);
    }

    #[test]
    fn transient_windows_are_directional_and_half_open() {
        let plan = FaultPlan::none(3).drop_link_between(NodeId(0), NodeId(1), 2, 5);
        assert!(!plan.is_transiently_dropped(NodeId(0), NodeId(1), 1));
        assert!(plan.is_transiently_dropped(NodeId(0), NodeId(1), 2));
        assert!(plan.is_transiently_dropped(NodeId(0), NodeId(1), 4));
        assert!(!plan.is_transiently_dropped(NodeId(0), NodeId(1), 5));
        assert!(!plan.is_transiently_dropped(NodeId(1), NodeId(0), 3));
    }

    #[test]
    fn disjoint_transient_windows_on_one_link_are_allowed() {
        let plan = FaultPlan::none(3)
            .drop_link_between(NodeId(0), NodeId(1), 0, 2)
            .drop_link_between(NodeId(0), NodeId(1), 4, 6);
        assert!(plan.is_transiently_dropped(NodeId(0), NodeId(1), 1));
        assert!(!plan.is_transiently_dropped(NodeId(0), NodeId(1), 3));
        assert!(plan.is_transiently_dropped(NodeId(0), NodeId(1), 5));
    }

    #[test]
    #[should_panic(expected = "overlaps existing")]
    fn overlapping_transient_windows_panic() {
        let _ = FaultPlan::none(3)
            .drop_link_between(NodeId(0), NodeId(1), 2, 5)
            .drop_link_between(NodeId(0), NodeId(1), 4, 8);
    }

    #[test]
    #[should_panic(expected = "start < end")]
    fn empty_transient_window_panics() {
        let _ = FaultPlan::none(3).drop_link_between(NodeId(0), NodeId(1), 5, 5);
    }

    #[test]
    fn heal_at_truncates_and_removes_windows() {
        let plan = FaultPlan::none(3)
            .drop_link_between(NodeId(0), NodeId(1), 2, 8)
            .drop_link_between(NodeId(0), NodeId(1), 10, 12)
            .drop_link_between(NodeId(1), NodeId(0), 2, 8)
            .heal_at(NodeId(0), NodeId(1), 5);
        // Straddling window truncated to 2..5, later window removed.
        assert!(plan.is_transiently_dropped(NodeId(0), NodeId(1), 4));
        assert!(!plan.is_transiently_dropped(NodeId(0), NodeId(1), 5));
        assert!(!plan.is_transiently_dropped(NodeId(0), NodeId(1), 11));
        // Other direction untouched.
        assert!(plan.is_transiently_dropped(NodeId(1), NodeId(0), 7));
    }

    #[test]
    fn flapping_alternates_up_and_down_phases() {
        let plan = FaultPlan::none(3).flap_link(NodeId(0), NodeId(1), 2, 3);
        // Period 5: rounds 0,1 up; 2,3,4 down; repeating.
        for round in [0u64, 1, 5, 6, 10] {
            assert!(
                !plan.is_flapped_down(NodeId(0), NodeId(1), round),
                "round {round} should be up"
            );
        }
        for round in [2u64, 3, 4, 7, 8, 9] {
            assert!(
                plan.is_flapped_down(NodeId(0), NodeId(1), round),
                "round {round} should be down"
            );
        }
        assert!(
            !plan.is_flapped_down(NodeId(1), NodeId(0), 2),
            "directional"
        );
    }

    #[test]
    fn flap_link_is_last_write_wins() {
        let plan = FaultPlan::none(3)
            .flap_link(NodeId(0), NodeId(1), 1, 1)
            .flap_link(NodeId(0), NodeId(1), 3, 1);
        assert!(!plan.is_flapped_down(NodeId(0), NodeId(1), 1));
        assert!(plan.is_flapped_down(NodeId(0), NodeId(1), 3));
    }

    #[test]
    #[should_panic(expected = "flap phases")]
    fn zero_flap_phase_panics() {
        let _ = FaultPlan::none(3).flap_link(NodeId(0), NodeId(1), 2, 0);
    }

    #[test]
    fn json_round_trips_a_fully_loaded_plan() {
        let plan = FaultPlan::none(4)
            .crash_at(NodeId(3), 7)
            .drop_link(NodeId(0), NodeId(2))
            .drop_link(NodeId(2), NodeId(1))
            .drop_every(5)
            .delay_link(NodeId(1), NodeId(2), 3)
            .drop_prob(0.125, 0xFEED)
            .drop_link_between(NodeId(0), NodeId(1), 2, 6)
            .flap_link(NodeId(2), NodeId(3), 2, 2)
            .drop_acks_every(4)
            .reorder_every(9);
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).expect("deserialize");
        assert_eq!(plan, back, "round trip must be lossless");
        assert_eq!(json, back.to_json(), "canonical form is stable");
    }

    #[test]
    fn json_round_trips_the_empty_plan() {
        let plan = FaultPlan::none(2);
        let back = FaultPlan::from_json(&plan.to_json()).expect("deserialize");
        assert_eq!(plan, back);
    }

    #[test]
    fn json_accepts_plans_without_the_new_fields() {
        // A plan serialized before the chaos-matrix fields existed must
        // still parse, with the missing fields defaulted.
        let legacy = r#"{
            "crashes": [null, 2],
            "dropped_links": [[0, 1]],
            "drop_every": 3,
            "link_delays": [[1, 0, 4]]
        }"#;
        let plan = FaultPlan::from_json(legacy).expect("legacy plan");
        assert!(plan.is_crashed(NodeId(1), 2));
        assert!(plan.is_link_dropped(NodeId(0), NodeId(1)));
        assert!(plan.is_periodically_dropped(3));
        assert_eq!(plan.link_delay(NodeId(1), NodeId(0)), Some(4));
        assert!(!plan.is_probabilistically_dropped(1));
        assert!(!plan.is_transiently_dropped(NodeId(0), NodeId(1), 0));
        assert!(!plan.is_flapped_down(NodeId(0), NodeId(1), 0));
        assert!(!plan.is_ack_path_dropped(1));
        assert!(!plan.is_reordered(1));
    }

    #[test]
    fn ack_path_and_reorder_schedules_are_periodic() {
        let plan = FaultPlan::none(2).drop_acks_every(3).reorder_every(2);
        assert!(!plan.is_ack_path_dropped(1));
        assert!(!plan.is_ack_path_dropped(2));
        assert!(plan.is_ack_path_dropped(3));
        assert!(plan.is_ack_path_dropped(6));
        assert!(!plan.is_reordered(1));
        assert!(plan.is_reordered(2));
        assert!(plan.is_reordered(4));
        // Orthogonal to the symmetric periodic-drop schedule.
        assert!(!plan.is_periodically_dropped(3));
    }

    #[test]
    #[should_panic(expected = "ack-drop period must be positive")]
    fn drop_acks_every_zero_panics() {
        let _ = FaultPlan::none(2).drop_acks_every(0);
    }

    #[test]
    #[should_panic(expected = "reorder period must be positive")]
    fn reorder_every_zero_panics() {
        let _ = FaultPlan::none(2).reorder_every(0);
    }

    #[test]
    fn json_rejects_invalid_plans() {
        for (case, text) in [
            ("unknown key", r#"{"crashes":[null],"bogus":1}"#),
            ("trailing bytes", r#"{"crashes":[null]} x"#),
            (
                "zero drop period",
                r#"{"crashes":[null,null],"drop_every":0}"#,
            ),
            (
                "out-of-range link",
                r#"{"crashes":[null,null],"dropped_links":[[0,7]]}"#,
            ),
            (
                "empty transient window",
                r#"{"crashes":[null,null],"transient_windows":[[0,1,5,5]]}"#,
            ),
            (
                "overlapping transient windows",
                r#"{"crashes":[null,null],"transient_windows":[[0,1,2,5],[0,1,4,8]]}"#,
            ),
            (
                "zero flap phase",
                r#"{"crashes":[null,null],"link_flaps":[[0,1,2,0]]}"#,
            ),
            (
                "drop probability above 1",
                r#"{"crashes":[null,null],"drop_prob":[2000000,0]}"#,
            ),
            (
                "zero ack-drop period",
                r#"{"crashes":[null,null],"ack_drop_every":0}"#,
            ),
            (
                "zero reorder period",
                r#"{"crashes":[null,null],"reorder_every":0}"#,
            ),
        ] {
            assert!(
                FaultPlan::from_json(text).is_err(),
                "{case}: parser must reject {text}"
            );
        }
    }
}
