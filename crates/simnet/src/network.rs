//! The synchronous round-based network core.

use crate::faults::FaultPlan;
use crate::stats::NetworkStats;
use crate::transport::Transport;
use dmw_obs::{Key, MetricsSink, MetricsSnapshot, DELAY_TICK_BUCKETS};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a network node (agent), `0`-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Message destination: one peer or everyone else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Recipient {
    /// A single peer over the private channel.
    Unicast(NodeId),
    /// Every other node (implemented as `n − 1` unicasts, per Theorem 11).
    Broadcast,
}

/// Payload size accounting, used for the byte counters of
/// [`NetworkStats`]. Implementations should return the approximate wire
/// size of the message.
pub trait Payload {
    /// Approximate serialized size in bytes.
    fn size_bytes(&self) -> usize;

    /// `true` for pure reverse-path control traffic (acknowledgments,
    /// gap repair requests). The asymmetric ack-path loss schedule
    /// ([`FaultPlan::drop_acks_every`]) applies only to transmissions
    /// that report `true` here, so a plan can drop acks while data
    /// keeps flowing. Defaults to `false`: plain payloads are data.
    fn is_control(&self) -> bool {
        false
    }
}

impl Payload for u64 {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn size_bytes(&self) -> usize {
        self.iter().map(Payload::size_bytes).sum()
    }
}

/// A message delivered into a node's inbox.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivered<M> {
    /// The sender.
    pub from: NodeId,
    /// `true` when the message arrived via the broadcast channel.
    pub broadcast: bool,
    /// The message body.
    pub payload: M,
}

/// One queued transmission. `payload` is `None` when the sender was
/// already crashed at the send tick: sender crash is the *first* check
/// in the attribution chain and depends only on `(from, sent_round)`,
/// both known at enqueue time, so the body is provably never delivered
/// and storing a clone of it would be pure waste. At scheduler-scale
/// sweeps (n = 1024, every node crashed) the per-recipient commitment
/// clones of a single bidding broadcast would otherwise hold tens of
/// gigabytes in flight. Accounting is untouched — the tombstone still
/// occupies its enqueue-order slot, so periodic/probabilistic sequence
/// numbers and every counter are bit-identical.
#[derive(Debug, Clone)]
struct InFlight<M> {
    from: NodeId,
    to: NodeId,
    broadcast: bool,
    /// Stamped from [`Payload::is_control`] at enqueue time, because the
    /// tombstoned body is gone by the time the ack-path schedule needs
    /// to know whether this transmission counts as control traffic.
    control: bool,
    payload: Option<M>,
}

/// Why a transmission was lost at delivery time. Variant order mirrors
/// the checking precedence shared by both transports (sender crash
/// before recipient crash, then permanent link drop, transient
/// partition, flap, periodic schedule, and seeded probabilistic loss
/// last), so per-cause metrics attribute each loss identically
/// regardless of the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DropCause {
    /// The sender was crashed at the tick it sent.
    SenderCrashed,
    /// The recipient was crashed when the message would have landed.
    RecipientCrashed,
    /// The directed link is configured to drop everything.
    Link,
    /// A transient-partition window covered the send round.
    Transient,
    /// The link's flap schedule was in its dead phase at the send round.
    Flapping,
    /// The asymmetric ack-path schedule claimed this control
    /// transmission (data on the same link is untouched).
    AckPath,
    /// The periodic-drop schedule claimed this transmission.
    Periodic,
    /// The seeded Bernoulli schedule claimed this transmission.
    Probabilistic,
}

impl DropCause {
    fn metric(self) -> &'static str {
        match self {
            DropCause::SenderCrashed => "drop_sender_crashed",
            DropCause::RecipientCrashed => "drop_recipient_crashed",
            DropCause::Link => "drop_link",
            DropCause::Transient => "drop_transient",
            DropCause::Flapping => "drop_flapping",
            DropCause::AckPath => "drop_ack_path",
            DropCause::Periodic => "drop_periodic",
            DropCause::Probabilistic => "drop_probabilistic",
        }
    }
}

/// The single fault-attribution chain both transports evaluate at
/// delivery time. `seq` is the message's *enqueue-order* sequence
/// number (1-based), which pins the periodic and probabilistic drop
/// schedules to logical messages rather than delivery order — the
/// transport-invariance contract of
/// [`FaultPlan::is_periodically_dropped`] and
/// [`FaultPlan::is_probabilistically_dropped`]. The round-keyed
/// schedules (transient windows, flaps) are evaluated against
/// `sent_round` for the same reason: a message is lost iff the link was
/// down when it was *sent*, however long it then spends in flight.
/// `control_seq` is `Some` with the transmission's 1-based position in
/// the *control-only* enqueue order when the payload reported
/// [`Payload::is_control`]; the asymmetric ack-path schedule counts
/// only those, so it thins acknowledgments at a fixed rate regardless
/// of how much data shares the wire.
pub(crate) fn classify_loss(
    faults: &FaultPlan,
    from: NodeId,
    to: NodeId,
    sent_round: u64,
    recv_round: u64,
    seq: u64,
    control_seq: Option<u64>,
) -> Option<DropCause> {
    if faults.is_crashed(from, sent_round) {
        Some(DropCause::SenderCrashed)
    } else if faults.is_crashed(to, recv_round) {
        Some(DropCause::RecipientCrashed)
    } else if faults.is_link_dropped(from, to) {
        Some(DropCause::Link)
    } else if faults.is_transiently_dropped(from, to, sent_round) {
        Some(DropCause::Transient)
    } else if faults.is_flapped_down(from, to, sent_round) {
        Some(DropCause::Flapping)
    } else if control_seq.is_some_and(|k| faults.is_ack_path_dropped(k)) {
        Some(DropCause::AckPath)
    } else if faults.is_periodically_dropped(seq) {
        Some(DropCause::Periodic)
    } else if faults.is_probabilistically_dropped(seq) {
        Some(DropCause::Probabilistic)
    } else {
        None
    }
}

/// Records the per-link counters and the delivery-delay histogram for
/// one enqueued transmission. `delivery_ticks` is the logical latency
/// the message was assigned (always `1` on the lockstep transport).
pub(crate) fn record_enqueue(
    metrics: &mut MetricsSnapshot,
    from: NodeId,
    to: NodeId,
    bytes: u64,
    delivery_ticks: u64,
) {
    let link = Key::named("link_messages")
        .agent(from.0 as u32)
        .peer(to.0 as u32);
    metrics.incr(link, 1);
    let link_bytes = Key::named("link_bytes")
        .agent(from.0 as u32)
        .peer(to.0 as u32);
    metrics.incr(link_bytes, bytes);
    metrics.observe(
        Key::named("delay_ticks"),
        DELAY_TICK_BUCKETS,
        delivery_ticks,
    );
}

/// Records one lost transmission under its attributed cause.
pub(crate) fn record_drop(metrics: &mut MetricsSnapshot, cause: DropCause) {
    metrics.incr(Key::named(cause.metric()), 1);
}

/// A synchronous network of `n` nodes with per-round delivery — the
/// lockstep implementation of [`Transport`].
///
/// Messages enqueued during round `r` are delivered together when
/// [`LockstepTransport::step`] is called, becoming visible in round
/// `r + 1` — the implicit synchronization barrier of protocol step II.4.
#[derive(Debug)]
pub struct LockstepTransport<M> {
    n: usize,
    round: u64,
    pending: Vec<InFlight<M>>,
    /// Surviving transmissions the deterministic reorder schedule
    /// ([`FaultPlan::reorder_every`]) held back for one extra round.
    /// They already consumed their enqueue-order sequence numbers when
    /// first processed, so re-delivery never re-classifies them.
    deferred: Vec<InFlight<M>>,
    inboxes: Vec<VecDeque<Delivered<M>>>,
    stats: NetworkStats,
    metrics: MetricsSnapshot,
    faults: FaultPlan,
    /// Running transmission counter for the periodic-drop schedule.
    /// Lockstep delivery preserves enqueue order, so incrementing at
    /// delivery assigns the same sequence numbers an enqueue-time stamp
    /// would — the `DelayTransport` has to stamp at enqueue instead.
    transmissions: u64,
    /// Running counter of control transmissions only (acks, nacks),
    /// feeding the asymmetric ack-path drop schedule. Incremented for
    /// every control enqueue-slot — even ones lost to an earlier cause —
    /// to match the `DelayTransport`'s enqueue-time stamping.
    control_transmissions: u64,
}

/// Historical name of [`LockstepTransport`], kept as an alias: the
/// synchronous network predates the [`Transport`] trait and most code
/// (and the paper's own vocabulary) still says "the network".
pub type Network<M> = LockstepTransport<M>;

impl<M: Payload + Clone> LockstepTransport<M> {
    /// Creates a fault-free network of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_faults(n, FaultPlan::none(n))
    }

    /// Creates a network with a fault schedule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_faults(n: usize, faults: FaultPlan) -> Self {
        assert!(n > 0, "network needs at least one node");
        LockstepTransport {
            n,
            round: 0,
            pending: Vec::new(),
            deferred: Vec::new(),
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            stats: NetworkStats::default(),
            metrics: MetricsSnapshot::default(),
            faults,
            transmissions: 0,
            control_transmissions: 0,
        }
    }

    /// The enqueue-order sequence number the *next* enqueued message
    /// will be assigned at delivery time, so enqueue-time accounting
    /// (the reorder-aware `delay_ticks` histogram) can consult the
    /// sequence-keyed schedules before the counter itself advances.
    fn next_seq(&self) -> u64 {
        self.transmissions + self.pending.len() as u64 + 1
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The traffic counters.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// The transport-level metrics: per-link `link_messages` /
    /// `link_bytes`, the `delay_ticks` histogram (always the one-tick
    /// bucket on this transport) and per-cause `drop_*` counters.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// The fault schedule.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Is `node` crashed in the current round?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.faults.is_crashed(node, self.round)
    }

    /// Sends a private point-to-point message, delivered at the next
    /// [`LockstepTransport::step`]. Messages from or to crashed nodes are counted as
    /// sent but will be dropped at delivery.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `from == to` (the protocol
    /// never self-sends; local state is kept locally).
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        assert!(from.0 < self.n && to.0 < self.n, "node out of range");
        assert_ne!(from, to, "self-sends are local state, not messages");
        self.stats.point_to_point += 1;
        self.stats.bytes += payload.size_bytes() as u64;
        let ticks = 1 + u64::from(self.faults.is_reordered(self.next_seq()));
        record_enqueue(
            &mut self.metrics,
            from,
            to,
            payload.size_bytes() as u64,
            ticks,
        );
        let doomed = self.faults.is_crashed(from, self.round);
        self.pending.push(InFlight {
            from,
            to,
            broadcast: false,
            control: payload.is_control(),
            payload: (!doomed).then_some(payload),
        });
    }

    /// Publishes a message to every other node — `n − 1` point-to-point
    /// transmissions, per the paper's cost model.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn broadcast(&mut self, from: NodeId, payload: M) {
        assert!(from.0 < self.n, "node out of range");
        self.stats.broadcasts += 1;
        let doomed = self.faults.is_crashed(from, self.round);
        let control = payload.is_control();
        for to in 0..self.n {
            if to == from.0 {
                continue;
            }
            self.stats.point_to_point += 1;
            self.stats.bytes += payload.size_bytes() as u64;
            let ticks = 1 + u64::from(self.faults.is_reordered(self.next_seq()));
            record_enqueue(
                &mut self.metrics,
                from,
                NodeId(to),
                payload.size_bytes() as u64,
                ticks,
            );
            self.pending.push(InFlight {
                from,
                to: NodeId(to),
                broadcast: true,
                control,
                payload: (!doomed).then(|| payload.clone()),
            });
        }
    }

    /// Delivers all pending traffic and advances to the next round.
    /// Returns the number of messages delivered.
    ///
    /// Transmissions the reorder schedule selects survive classification
    /// but sit out one extra round in `deferred`; each step delivers the
    /// previous step's deferrals *first*, which is ascending
    /// enqueue-sequence order — the same order the `DelayTransport`'s
    /// due-time sort produces for a one-tick reorder penalty.
    pub fn step(&mut self) -> u64 {
        let mut delivered = 0;
        for msg in std::mem::take(&mut self.deferred) {
            self.inboxes[msg.to.0].push_back(Delivered {
                from: msg.from,
                broadcast: msg.broadcast,
                payload: msg
                    .payload
                    .expect("only surviving transmissions are deferred"),
            });
            delivered += 1;
        }
        for msg in std::mem::take(&mut self.pending) {
            self.transmissions += 1;
            let control_seq = msg.control.then(|| {
                self.control_transmissions += 1;
                self.control_transmissions
            });
            if let Some(cause) = classify_loss(
                &self.faults,
                msg.from,
                msg.to,
                self.round,
                self.round,
                self.transmissions,
                control_seq,
            ) {
                self.stats.dropped += 1;
                record_drop(&mut self.metrics, cause);
                continue;
            }
            if self.faults.is_reordered(self.transmissions) {
                self.deferred.push(msg);
                continue;
            }
            self.inboxes[msg.to.0].push_back(Delivered {
                from: msg.from,
                broadcast: msg.broadcast,
                // A `None` payload means the sender was crashed at the
                // send tick, which `classify_loss` reports as a drop
                // above — a delivered tombstone is unreachable.
                payload: msg
                    .payload
                    .expect("sender-crashed tombstones never deliver"),
            });
            delivered += 1;
        }
        self.stats.delivered += delivered;
        self.stats.rounds += 1;
        self.round += 1;
        delivered
    }

    /// Drains and returns `node`'s inbox (messages delivered by previous
    /// `step` calls, in arrival order).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn take_inbox(&mut self, node: NodeId) -> Vec<Delivered<M>> {
        assert!(node.0 < self.n, "node out of range");
        self.inboxes[node.0].drain(..).collect()
    }

    /// Number of messages waiting in `node`'s inbox without draining it.
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.inboxes[node.0].len()
    }

    /// `true` when no traffic is pending delivery and every inbox has
    /// been drained — nothing the protocol could still react to.
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty()
            && self.deferred.is_empty()
            && self.inboxes.iter().all(VecDeque::is_empty)
    }

    /// The earliest tick at which the network can matter to a scheduler
    /// tick: on the lockstep transport every [`LockstepTransport::step`]
    /// drains `pending` completely, so between ticks the only possible
    /// activity is traffic already sitting in inboxes — due *now* — and
    /// a quiescent network has no future event at all.
    pub fn next_due(&self) -> Option<u64> {
        if self.is_quiescent() {
            None
        } else {
            Some(self.round)
        }
    }

    /// Fast-forwards to tick `target` exactly as repeated
    /// [`LockstepTransport::step`] calls would: real steps while traffic
    /// is still in flight (at most two — one for pending, one more if
    /// the reorder schedule deferred something), then a constant-time
    /// round/statistics jump over the remaining dead air.
    pub fn advance_to(&mut self, target: u64) -> u64 {
        let mut delivered = 0;
        while (!self.pending.is_empty() || !self.deferred.is_empty()) && self.round < target {
            delivered += self.step();
        }
        if self.round < target {
            self.stats.rounds += target - self.round;
            self.round = target;
        }
        delivered
    }
}

impl<M: Payload + Clone> Transport<M> for LockstepTransport<M> {
    fn nodes(&self) -> usize {
        LockstepTransport::nodes(self)
    }

    fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        LockstepTransport::send(self, from, to, payload);
    }

    fn broadcast(&mut self, from: NodeId, payload: M) {
        LockstepTransport::broadcast(self, from, payload);
    }

    fn take_inbox(&mut self, node: NodeId) -> Vec<Delivered<M>> {
        LockstepTransport::take_inbox(self, node)
    }

    fn step(&mut self) -> u64 {
        LockstepTransport::step(self)
    }

    fn round(&self) -> u64 {
        LockstepTransport::round(self)
    }

    fn stats(&self) -> &NetworkStats {
        LockstepTransport::stats(self)
    }

    fn metrics(&self) -> &MetricsSnapshot {
        LockstepTransport::metrics(self)
    }

    fn faults(&self) -> &FaultPlan {
        LockstepTransport::faults(self)
    }

    fn is_quiescent(&self) -> bool {
        LockstepTransport::is_quiescent(self)
    }

    fn next_due(&self) -> Option<u64> {
        LockstepTransport::next_due(self)
    }

    fn advance_to(&mut self, target: u64) -> u64 {
        LockstepTransport::advance_to(self, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_delivers_next_round() {
        let mut net: Network<u64> = Network::new(2);
        net.send(NodeId(0), NodeId(1), 42);
        assert_eq!(net.inbox_len(NodeId(1)), 0, "not yet delivered");
        assert!(!net.is_quiescent());
        assert_eq!(net.step(), 1);
        let inbox = net.take_inbox(NodeId(1));
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].payload, 42);
        assert_eq!(inbox[0].from, NodeId(0));
        assert!(!inbox[0].broadcast);
        assert!(net.is_quiescent());
    }

    #[test]
    fn broadcast_reaches_everyone_else_and_counts_n_minus_1() {
        let mut net: Network<u64> = Network::new(5);
        net.broadcast(NodeId(2), 7);
        net.step();
        for i in 0..5 {
            let inbox = net.take_inbox(NodeId(i));
            if i == 2 {
                assert!(inbox.is_empty(), "no self-delivery");
            } else {
                assert_eq!(inbox.len(), 1);
                assert!(inbox[0].broadcast);
            }
        }
        assert_eq!(net.stats().point_to_point, 4);
        assert_eq!(net.stats().broadcasts, 1);
        assert_eq!(net.stats().bytes, 4 * 8);
    }

    #[test]
    fn crashed_node_traffic_is_dropped() {
        let plan = FaultPlan::none(3).crash_at(NodeId(1), 0);
        let mut net: Network<u64> = Network::with_faults(3, plan);
        net.send(NodeId(0), NodeId(1), 1); // to crashed
        net.send(NodeId(1), NodeId(2), 2); // from crashed
        net.send(NodeId(0), NodeId(2), 3); // unaffected
        net.step();
        assert!(net.take_inbox(NodeId(1)).is_empty());
        let inbox2 = net.take_inbox(NodeId(2));
        assert_eq!(inbox2.len(), 1);
        assert_eq!(inbox2[0].payload, 3);
        assert_eq!(net.stats().dropped, 2);
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().in_flight(), 0);
    }

    #[test]
    fn crash_in_future_round_spares_earlier_traffic() {
        let plan = FaultPlan::none(2).crash_at(NodeId(0), 1);
        let mut net: Network<u64> = Network::with_faults(2, plan);
        net.send(NodeId(0), NodeId(1), 1);
        net.step(); // round 0: delivered
        assert_eq!(net.take_inbox(NodeId(1)).len(), 1);
        net.send(NodeId(0), NodeId(1), 2);
        net.step(); // round 1: node 0 crashed
        assert!(net.take_inbox(NodeId(1)).is_empty());
    }

    #[test]
    fn dropped_link_loses_messages_one_way() {
        let plan = FaultPlan::none(2).drop_link(NodeId(0), NodeId(1));
        let mut net: Network<u64> = Network::with_faults(2, plan);
        net.send(NodeId(0), NodeId(1), 1);
        net.send(NodeId(1), NodeId(0), 2);
        net.step();
        assert!(net.take_inbox(NodeId(1)).is_empty());
        assert_eq!(net.take_inbox(NodeId(0)).len(), 1);
    }

    #[test]
    fn inbox_preserves_arrival_order() {
        let mut net: Network<u64> = Network::new(3);
        net.send(NodeId(1), NodeId(0), 10);
        net.send(NodeId(2), NodeId(0), 20);
        net.step();
        net.send(NodeId(1), NodeId(0), 30);
        net.step();
        let payloads: Vec<u64> = net
            .take_inbox(NodeId(0))
            .into_iter()
            .map(|d| d.payload)
            .collect();
        assert_eq!(payloads, vec![10, 20, 30]);
    }

    #[test]
    fn rounds_advance() {
        let mut net: Network<u64> = Network::new(2);
        assert_eq!(net.round(), 0);
        net.step();
        net.step();
        assert_eq!(net.round(), 2);
        assert_eq!(net.stats().rounds, 2);
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_send_panics() {
        let mut net: Network<u64> = Network::new(2);
        net.send(NodeId(0), NodeId(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_send_panics() {
        let mut net: Network<u64> = Network::new(2);
        net.send(NodeId(0), NodeId(5), 1);
    }

    #[test]
    fn payload_sizes_accumulate() {
        let mut net: Network<Vec<u64>> = Network::new(2);
        net.send(NodeId(0), NodeId(1), vec![1, 2, 3]);
        assert_eq!(net.stats().bytes, 24);
    }

    #[test]
    fn next_due_is_now_while_traffic_exists_and_none_when_quiescent() {
        let mut net: Network<u64> = Network::new(2);
        assert_eq!(net.next_due(), None);
        net.send(NodeId(0), NodeId(1), 1);
        assert_eq!(net.next_due(), Some(0), "pending traffic is due now");
        net.step();
        assert_eq!(net.next_due(), Some(1), "undrained inbox is due now");
        net.take_inbox(NodeId(1));
        assert_eq!(net.next_due(), None);
    }

    /// A toy payload that marks odd values as control traffic, for the
    /// ack-path tests.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Frame(u64);

    impl Payload for Frame {
        fn size_bytes(&self) -> usize {
            8
        }

        fn is_control(&self) -> bool {
            self.0 % 2 == 1
        }
    }

    #[test]
    fn ack_path_schedule_drops_control_but_not_data() {
        let plan = FaultPlan::none(2).drop_acks_every(1);
        let mut net: Network<Frame> = Network::with_faults(2, plan);
        net.send(NodeId(0), NodeId(1), Frame(2)); // data
        net.send(NodeId(0), NodeId(1), Frame(3)); // control: dropped
        net.send(NodeId(0), NodeId(1), Frame(4)); // data
        net.step();
        let payloads: Vec<Frame> = net
            .take_inbox(NodeId(1))
            .into_iter()
            .map(|d| d.payload)
            .collect();
        assert_eq!(payloads, vec![Frame(2), Frame(4)]);
        assert_eq!(net.stats().dropped, 1);
        assert_eq!(net.metrics().counter_total("drop_ack_path"), 1);
    }

    #[test]
    fn ack_path_counter_skips_data_transmissions() {
        // Every *second* control message drops; data in between must not
        // advance the control counter.
        let plan = FaultPlan::none(2).drop_acks_every(2);
        let mut net: Network<Frame> = Network::with_faults(2, plan);
        for v in [1, 2, 2, 3, 2, 5] {
            net.send(NodeId(0), NodeId(1), Frame(v));
        }
        net.step();
        // Control slots: Frame(1)=#1 kept, Frame(3)=#2 dropped,
        // Frame(5)=#3 kept.
        let payloads: Vec<u64> = net
            .take_inbox(NodeId(1))
            .into_iter()
            .map(|d| d.payload.0)
            .collect();
        assert_eq!(payloads, vec![1, 2, 2, 2, 5]);
        assert_eq!(net.metrics().counter_total("drop_ack_path"), 1);
    }

    #[test]
    fn reorder_defers_selected_messages_one_round() {
        let plan = FaultPlan::none(3).reorder_every(2);
        let mut net: Network<u64> = Network::with_faults(3, plan);
        net.send(NodeId(0), NodeId(1), 10); // seq 1: on time
        net.send(NodeId(2), NodeId(1), 20); // seq 2: deferred
        net.send(NodeId(0), NodeId(1), 30); // seq 3: on time
        assert_eq!(net.step(), 2);
        let payloads: Vec<u64> = net
            .take_inbox(NodeId(1))
            .into_iter()
            .map(|d| d.payload)
            .collect();
        assert_eq!(payloads, vec![10, 30]);
        assert!(!net.is_quiescent(), "a deferred message is still in flight");
        assert_eq!(net.step(), 1);
        let late: Vec<u64> = net
            .take_inbox(NodeId(1))
            .into_iter()
            .map(|d| d.payload)
            .collect();
        assert_eq!(late, vec![20]);
        assert_eq!(net.stats().dropped, 0, "reordering is not loss");
    }

    #[test]
    fn advance_to_flushes_deferred_reorder_traffic() {
        let plan = FaultPlan::none(2).reorder_every(1);
        let mut stepped: Network<u64> = Network::with_faults(2, plan.clone());
        let mut jumped: Network<u64> = Network::with_faults(2, plan);
        for net in [&mut stepped, &mut jumped] {
            net.send(NodeId(0), NodeId(1), 7);
        }
        for _ in 0..4 {
            stepped.step();
        }
        assert_eq!(jumped.advance_to(4), 1);
        assert_eq!(jumped.round(), stepped.round());
        assert_eq!(jumped.stats(), stepped.stats());
        assert_eq!(jumped.take_inbox(NodeId(1)), stepped.take_inbox(NodeId(1)));
    }

    #[test]
    fn advance_to_matches_repeated_steps() {
        let mut stepped: Network<u64> = Network::new(2);
        let mut jumped: Network<u64> = Network::new(2);
        for net in [&mut stepped, &mut jumped] {
            net.send(NodeId(0), NodeId(1), 7);
        }
        for _ in 0..5 {
            stepped.step();
        }
        assert_eq!(jumped.advance_to(5), 1);
        assert_eq!(jumped.round(), stepped.round());
        assert_eq!(jumped.stats(), stepped.stats());
        assert_eq!(jumped.take_inbox(NodeId(1)), stepped.take_inbox(NodeId(1)));
        // At-or-before targets are no-ops.
        assert_eq!(jumped.advance_to(3), 0);
        assert_eq!(jumped.round(), 5);
    }
}
