//! A deterministic asynchronous transport with per-link delivery delays.
//!
//! [`DelayTransport`] relaxes the lockstep model: every message is held
//! for `1 + base + per-link schedule + seeded jitter` ticks before it
//! reaches the recipient's inbox. The delay draw is a pure function of
//! the profile seed and a per-message sequence number, so a run is
//! bit-replayable — asynchrony here is a *parameter*, not a source of
//! nondeterminism. With [`DelayProfile::synchronous`] (and no per-link
//! schedule) the transport degenerates to exactly the lockstep delivery
//! order, which is how the equivalence tests anchor it.
//!
//! An optional seeded inbox shuffle additionally permutes same-tick
//! arrivals per recipient, probing the protocol's independence from
//! arrival order *within* a tick.

use crate::faults::{splitmix64, FaultPlan};
use crate::network::{classify_loss, record_drop, record_enqueue, Delivered, NodeId, Payload};
use crate::stats::NetworkStats;
use crate::transport::Transport;
use dmw_obs::MetricsSnapshot;
use std::collections::VecDeque;

/// The latency model of a [`DelayTransport`]: every message waits
/// `1 + base + U{0..=jitter}` ticks, the jitter term drawn from a seeded
/// deterministic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayProfile {
    base: u64,
    jitter: u64,
    seed: u64,
}

impl DelayProfile {
    /// Next-tick delivery, exactly like the lockstep transport.
    pub fn synchronous() -> Self {
        Self::fixed(0)
    }

    /// Every message waits a fixed `base` extra ticks.
    pub fn fixed(base: u64) -> Self {
        DelayProfile {
            base,
            jitter: 0,
            seed: 0,
        }
    }

    /// Every message waits `base` plus a seeded draw from `0..=jitter`
    /// extra ticks.
    pub fn jittered(base: u64, jitter: u64, seed: u64) -> Self {
        DelayProfile { base, jitter, seed }
    }

    /// The largest extra delay this profile can assign.
    pub fn max_extra_delay(&self) -> u64 {
        self.base + self.jitter
    }

    /// The extra delay for the message with sequence number `seq`.
    fn draw(&self, seq: u64) -> u64 {
        if self.jitter == 0 {
            self.base
        } else {
            self.base + splitmix64(self.seed ^ seq) % (self.jitter + 1)
        }
    }
}

/// One held transmission, waiting for its due tick.
#[derive(Debug, Clone)]
struct Held<M> {
    due: u64,
    sent_round: u64,
    /// Enqueue-order sequence number (1-based). The periodic-drop
    /// schedule is evaluated against this, not against delivery order,
    /// so a [`FaultPlan`] selects the same logical messages regardless
    /// of jitter — exactly the numbering the lockstep transport's
    /// in-order delivery produces.
    seq: u64,
    /// 1-based position in the control-only enqueue order when the
    /// payload is control traffic (acks, nacks), `None` for data — the
    /// key for the asymmetric ack-path drop schedule.
    control_seq: Option<u64>,
    /// `true` when the reorder schedule claimed this transmission: its
    /// due tick carries a one-tick penalty that loss classification must
    /// see through (the link state that matters is the one the message
    /// would have met undisplaced).
    reordered: bool,
    from: NodeId,
    to: NodeId,
    broadcast: bool,
    payload: M,
}

/// An asynchronous-but-deterministic implementation of [`Transport`].
///
/// Fault semantics mirror the lockstep transport: a message is lost when
/// its sender was crashed at the tick it was sent, its recipient is
/// crashed at the tick before delivery completes, the directed link is
/// dropped, or the periodic-drop schedule claims the transmission.
/// Traffic counters follow the same convention (`point_to_point`/`bytes`
/// at enqueue, `delivered`/`dropped` at delivery), so Theorem 11's cost
/// accounting is unchanged by asynchrony.
#[derive(Debug)]
pub struct DelayTransport<M> {
    n: usize,
    round: u64,
    holding: Vec<Held<M>>,
    inboxes: Vec<VecDeque<Delivered<M>>>,
    stats: NetworkStats,
    metrics: MetricsSnapshot,
    faults: FaultPlan,
    profile: DelayProfile,
    shuffle_seed: Option<u64>,
    seq: u64,
    /// Control-only enqueue counter feeding the ack-path drop schedule.
    control_seq: u64,
}

impl<M: Payload + Clone> DelayTransport<M> {
    /// Creates a fault-free delayed network of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, profile: DelayProfile) -> Self {
        Self::with_faults(n, FaultPlan::none(n), profile)
    }

    /// Creates a delayed network with a fault schedule (whose
    /// [`FaultPlan::link_delay`] entries add to the profile's latency).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_faults(n: usize, faults: FaultPlan, profile: DelayProfile) -> Self {
        assert!(n > 0, "network needs at least one node");
        DelayTransport {
            n,
            round: 0,
            holding: Vec::new(),
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            stats: NetworkStats::default(),
            metrics: MetricsSnapshot::default(),
            faults,
            profile,
            shuffle_seed: None,
            seq: 0,
            control_seq: 0,
        }
    }

    /// Additionally permutes each recipient's same-tick arrivals with a
    /// seeded Fisher–Yates shuffle — delivery-order fuzzing that stays
    /// bit-replayable.
    pub fn with_inbox_shuffle(mut self, seed: u64) -> Self {
        self.shuffle_seed = Some(seed);
        self
    }

    /// The latency model in force.
    pub fn profile(&self) -> &DelayProfile {
        &self.profile
    }

    fn enqueue(&mut self, from: NodeId, to: NodeId, broadcast: bool, payload: M) {
        self.stats.point_to_point += 1;
        self.stats.bytes += payload.size_bytes() as u64;
        self.seq += 1;
        let control_seq = payload.is_control().then(|| {
            self.control_seq += 1;
            self.control_seq
        });
        let reordered = self.faults.is_reordered(self.seq);
        let delay = self.profile.draw(self.seq) + self.faults.link_delay_or_zero(from, to);
        record_enqueue(
            &mut self.metrics,
            from,
            to,
            payload.size_bytes() as u64,
            1 + delay + u64::from(reordered),
        );
        self.holding.push(Held {
            due: self.round + 1 + delay + u64::from(reordered),
            sent_round: self.round,
            seq: self.seq,
            control_seq,
            reordered,
            from,
            to,
            broadcast,
            payload,
        });
    }

    /// Enqueues a private point-to-point message.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `from == to`.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        assert!(from.0 < self.n && to.0 < self.n, "node out of range");
        assert_ne!(from, to, "self-sends are local state, not messages");
        self.enqueue(from, to, false, payload);
    }

    /// Publishes a message to every other node — `n − 1` point-to-point
    /// transmissions, each with its own delay draw.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn broadcast(&mut self, from: NodeId, payload: M) {
        assert!(from.0 < self.n, "node out of range");
        self.stats.broadcasts += 1;
        for to in 0..self.n {
            if to == from.0 {
                continue;
            }
            self.enqueue(from, NodeId(to), true, payload.clone());
        }
    }

    /// Advances one tick: messages whose due tick has arrived move into
    /// inboxes (in enqueue order, unless shuffled). Returns the number
    /// delivered.
    pub fn step(&mut self) -> u64 {
        let next = self.round + 1;
        let (mut arrivals, kept): (Vec<Held<M>>, Vec<Held<M>>) = std::mem::take(&mut self.holding)
            .into_iter()
            .partition(|msg| msg.due <= next);
        self.holding = kept;
        if let Some(seed) = self.shuffle_seed {
            self.shuffle_per_recipient(&mut arrivals, seed);
        }
        let mut delivered = 0;
        for msg in arrivals {
            if let Some(cause) = classify_loss(
                &self.faults,
                msg.from,
                msg.to,
                msg.sent_round,
                // The pre-reorder landing tick: both transports attribute
                // loss as if the message had not been displaced, keeping
                // crash-boundary classification transport-invariant.
                msg.due.saturating_sub(1 + u64::from(msg.reordered)),
                msg.seq,
                msg.control_seq,
            ) {
                self.stats.dropped += 1;
                record_drop(&mut self.metrics, cause);
                continue;
            }
            self.inboxes[msg.to.0].push_back(Delivered {
                from: msg.from,
                broadcast: msg.broadcast,
                payload: msg.payload,
            });
            delivered += 1;
        }
        self.stats.delivered += delivered;
        self.stats.rounds += 1;
        self.round = next;
        delivered
    }

    /// Seeded Fisher–Yates over each recipient's slice of this tick's
    /// arrivals. Only positions belonging to the same recipient swap, so
    /// cross-recipient structure is untouched.
    fn shuffle_per_recipient(&self, arrivals: &mut [Held<M>], seed: u64) {
        for node in 0..self.n {
            let slots: Vec<usize> = arrivals
                .iter()
                .enumerate()
                .filter(|(_, msg)| msg.to.0 == node)
                .map(|(i, _)| i)
                .collect();
            if slots.len() < 2 {
                continue;
            }
            let mut state = splitmix64(seed ^ (self.round << 20) ^ node as u64);
            for i in (1..slots.len()).rev() {
                state = splitmix64(state);
                let j = (state % (i as u64 + 1)) as usize;
                arrivals.swap(slots[i], slots[j]);
            }
        }
    }

    /// Drains and returns `node`'s inbox in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn take_inbox(&mut self, node: NodeId) -> Vec<Delivered<M>> {
        assert!(node.0 < self.n, "node out of range");
        self.inboxes[node.0].drain(..).collect()
    }

    /// The traffic counters.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// The transport-level metrics: per-link `link_messages` /
    /// `link_bytes`, the `delay_ticks` histogram of drawn delivery
    /// latencies (observed at enqueue) and per-cause `drop_*` counters.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// The fault schedule.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The current tick number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// `true` when nothing is held in flight and every inbox is drained.
    pub fn is_quiescent(&self) -> bool {
        self.holding.is_empty() && self.inboxes.iter().all(VecDeque::is_empty)
    }

    /// The earliest tick at which the transport can matter to a
    /// scheduler tick: *now* while any inbox holds undrained
    /// deliveries, otherwise the earliest held message's due tick
    /// (every held `due` exceeds the current round — [`DelayTransport::step`]
    /// already delivered everything at or before it), `None` when
    /// quiescent.
    pub fn next_due(&self) -> Option<u64> {
        if self.inboxes.iter().any(|q| !q.is_empty()) {
            return Some(self.round);
        }
        self.holding.iter().map(|msg| msg.due).min()
    }

    /// Fast-forwards to tick `target` exactly as repeated
    /// [`DelayTransport::step`] calls would. Stretches with no due
    /// arrivals collapse into a constant-time round/statistics jump;
    /// every round on which something falls due runs a real `step`, so
    /// delivery order, the round-seeded inbox shuffle and the
    /// loss-attribution chain are all bit-identical to stepping.
    pub fn advance_to(&mut self, target: u64) -> u64 {
        let mut delivered = 0;
        while self.round < target {
            match self.holding.iter().map(|msg| msg.due).min() {
                Some(due) => {
                    // A message due at tick `d` is moved by the step
                    // taken at round `d − 1`; rounds before that are
                    // dead air.
                    let idle_until = due.saturating_sub(1).min(target);
                    if self.round < idle_until {
                        self.stats.rounds += idle_until - self.round;
                        self.round = idle_until;
                    }
                    if self.round < target {
                        delivered += self.step();
                    }
                }
                None => {
                    self.stats.rounds += target - self.round;
                    self.round = target;
                }
            }
        }
        delivered
    }
}

impl<M: Payload + Clone> Transport<M> for DelayTransport<M> {
    fn nodes(&self) -> usize {
        DelayTransport::nodes(self)
    }

    fn send(&mut self, from: NodeId, to: NodeId, payload: M) {
        DelayTransport::send(self, from, to, payload);
    }

    fn broadcast(&mut self, from: NodeId, payload: M) {
        DelayTransport::broadcast(self, from, payload);
    }

    fn take_inbox(&mut self, node: NodeId) -> Vec<Delivered<M>> {
        DelayTransport::take_inbox(self, node)
    }

    fn step(&mut self) -> u64 {
        DelayTransport::step(self)
    }

    fn round(&self) -> u64 {
        DelayTransport::round(self)
    }

    fn stats(&self) -> &NetworkStats {
        DelayTransport::stats(self)
    }

    fn metrics(&self) -> &MetricsSnapshot {
        DelayTransport::metrics(self)
    }

    fn faults(&self) -> &FaultPlan {
        DelayTransport::faults(self)
    }

    fn is_quiescent(&self) -> bool {
        DelayTransport::is_quiescent(self)
    }

    fn next_due(&self) -> Option<u64> {
        DelayTransport::next_due(self)
    }

    fn advance_to(&mut self, target: u64) -> u64 {
        DelayTransport::advance_to(self, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_profile_delivers_next_tick_like_lockstep() {
        let mut net: DelayTransport<u64> = DelayTransport::new(3, DelayProfile::synchronous());
        net.send(NodeId(0), NodeId(1), 42);
        net.broadcast(NodeId(2), 7);
        assert!(!net.is_quiescent());
        assert_eq!(net.step(), 3);
        let inbox = net.take_inbox(NodeId(1));
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0].payload, 42);
        assert!(inbox[1].broadcast);
        assert_eq!(net.stats().point_to_point, 3);
        assert_eq!(net.stats().broadcasts, 1);
    }

    #[test]
    fn fixed_delay_holds_messages_for_base_extra_ticks() {
        let mut net: DelayTransport<u64> = DelayTransport::new(2, DelayProfile::fixed(2));
        net.send(NodeId(0), NodeId(1), 5);
        assert_eq!(net.step(), 0, "tick 1: still held");
        assert_eq!(net.step(), 0, "tick 2: still held");
        assert_eq!(net.step(), 1, "tick 3: due");
        assert_eq!(net.take_inbox(NodeId(1)).len(), 1);
        assert!(net.is_quiescent());
    }

    #[test]
    fn per_link_schedule_adds_to_the_profile() {
        let plan = FaultPlan::none(3).delay_link(NodeId(0), NodeId(1), 2);
        let mut net: DelayTransport<u64> =
            DelayTransport::with_faults(3, plan, DelayProfile::synchronous());
        net.send(NodeId(0), NodeId(1), 1); // delayed link: due at tick 3
        net.send(NodeId(0), NodeId(2), 2); // plain link: due at tick 1
        net.step();
        assert_eq!(net.take_inbox(NodeId(2)).len(), 1);
        assert!(net.take_inbox(NodeId(1)).is_empty());
        net.step();
        net.step();
        assert_eq!(net.take_inbox(NodeId(1)).len(), 1);
    }

    #[test]
    fn jitter_is_bounded_and_replayable() {
        let profile = DelayProfile::jittered(1, 3, 99);
        let run = |profile: DelayProfile| {
            let mut net: DelayTransport<u64> = DelayTransport::new(2, profile);
            for k in 0..20 {
                net.send(NodeId(0), NodeId(1), k);
            }
            let mut arrivals = Vec::new();
            for tick in 0..12 {
                net.step();
                for msg in net.take_inbox(NodeId(1)) {
                    arrivals.push((tick, msg.payload));
                }
            }
            assert!(net.is_quiescent(), "all messages within base+jitter ticks");
            arrivals
        };
        let first = run(profile);
        assert_eq!(first, run(profile), "same seed, same arrival schedule");
        for (tick, _) in &first {
            assert!(
                (1..=4).contains(tick),
                "arrival tick {tick} outside 1 + base..=base+jitter"
            );
        }
        assert!(
            first != run(DelayProfile::jittered(1, 3, 100)),
            "different seed, different schedule"
        );
    }

    #[test]
    fn inbox_shuffle_permutes_within_a_recipient_only() {
        let mut plain: DelayTransport<u64> = DelayTransport::new(3, DelayProfile::synchronous());
        let mut shuffled: DelayTransport<u64> =
            DelayTransport::new(3, DelayProfile::synchronous()).with_inbox_shuffle(7);
        for net in [&mut plain, &mut shuffled] {
            for k in 0..8 {
                net.send(NodeId(0), NodeId(1), k);
                net.send(NodeId(0), NodeId(2), 100 + k);
            }
            net.step();
        }
        let base1: Vec<u64> = plain
            .take_inbox(NodeId(1))
            .into_iter()
            .map(|d| d.payload)
            .collect();
        let mix1: Vec<u64> = shuffled
            .take_inbox(NodeId(1))
            .into_iter()
            .map(|d| d.payload)
            .collect();
        let mut sorted = mix1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base1, "shuffle is a permutation of the same set");
        assert_ne!(mix1, base1, "seed 7 actually permutes this batch");
        let mix2: Vec<u64> = shuffled
            .take_inbox(NodeId(2))
            .into_iter()
            .map(|d| d.payload)
            .collect();
        let mut sorted2 = mix2.clone();
        sorted2.sort_unstable();
        assert_eq!(sorted2, (100..108).collect::<Vec<u64>>());
    }

    /// Regression test for the periodic-drop drift bug: the drop
    /// schedule used to advance per *delivered* message inside
    /// [`DelayTransport::step`], so jitter (which permutes delivery
    /// order relative to enqueue order) made the same [`FaultPlan`]
    /// drop different logical messages than the lockstep transport.
    /// Pinning the schedule to the enqueue-time sequence number makes
    /// the selected set transport-invariant.
    #[test]
    fn periodic_drops_select_the_same_messages_as_lockstep_under_jitter() {
        use crate::network::Network;

        let n = 4;
        let ticks = 4u64;
        let surviving = |net: &mut dyn FnMut(NodeId, NodeId, u64)| {
            // Same traffic pattern on every transport: each tick, every
            // ordered pair exchanges one uniquely-numbered message.
            let mut payload = 0;
            for _ in 0..ticks {
                for from in 0..n {
                    for to in 0..n {
                        if from != to {
                            net(NodeId(from), NodeId(to), payload);
                            payload += 1;
                        }
                    }
                }
            }
        };

        let mut lockstep: Network<u64> = Network::with_faults(n, FaultPlan::none(n).drop_every(3));
        {
            let mut sends = 0;
            let mut send = |from, to, p| {
                // Re-create the per-tick cadence: step after each tick's
                // batch of n·(n−1) sends.
                lockstep.send(from, to, p);
                sends += 1;
                if sends % (n * (n - 1)) == 0 {
                    lockstep.step();
                }
            };
            surviving(&mut send);
        }
        let mut lockstep_delivered: Vec<u64> = (0..n)
            .flat_map(|node| lockstep.take_inbox(NodeId(node)))
            .map(|d| d.payload)
            .collect();
        lockstep_delivered.sort_unstable();

        let mut delayed: DelayTransport<u64> = DelayTransport::with_faults(
            n,
            FaultPlan::none(n).drop_every(3),
            DelayProfile::jittered(0, 3, 0xBEEF),
        );
        {
            let mut sends = 0;
            let mut send = |from, to, p| {
                delayed.send(from, to, p);
                sends += 1;
                if sends % (n * (n - 1)) == 0 {
                    delayed.step();
                }
            };
            surviving(&mut send);
        }
        let mut jitter_delivered: Vec<u64> = Vec::new();
        loop {
            for node in 0..n {
                for msg in delayed.take_inbox(NodeId(node)) {
                    jitter_delivered.push(msg.payload);
                }
            }
            if delayed.is_quiescent() {
                break;
            }
            delayed.step();
        }
        jitter_delivered.sort_unstable();

        assert_eq!(
            jitter_delivered, lockstep_delivered,
            "a fault plan must drop the same logical messages on every transport"
        );
        assert_eq!(delayed.stats().dropped, lockstep.stats().dropped);
    }

    #[test]
    fn next_due_reports_inboxes_then_earliest_held_due() {
        let plan = FaultPlan::none(3).delay_link(NodeId(0), NodeId(2), 4);
        let mut net: DelayTransport<u64> =
            DelayTransport::with_faults(3, plan, DelayProfile::fixed(1));
        assert_eq!(net.next_due(), None);
        net.send(NodeId(0), NodeId(1), 1); // due at tick 2
        net.send(NodeId(0), NodeId(2), 2); // due at tick 6
        assert_eq!(net.next_due(), Some(2));
        net.step();
        net.step();
        assert_eq!(net.next_due(), Some(2), "undrained inbox is due now");
        net.take_inbox(NodeId(1));
        assert_eq!(net.next_due(), Some(6), "next event is the held message");
        net.advance_to(6);
        net.take_inbox(NodeId(2));
        assert_eq!(net.next_due(), None);
    }

    /// `advance_to` must be indistinguishable from stepping — including
    /// the round-seeded inbox shuffle and enqueue-order drop schedules,
    /// both of which read the round counter at delivery time.
    #[test]
    fn advance_to_matches_repeated_steps_with_jitter_shuffle_and_drops() {
        let build = || -> DelayTransport<u64> {
            DelayTransport::with_faults(
                3,
                FaultPlan::none(3).drop_every(4),
                DelayProfile::jittered(1, 5, 0xABCD),
            )
            .with_inbox_shuffle(9)
        };
        let mut stepped = build();
        let mut jumped = build();
        for net in [&mut stepped, &mut jumped] {
            for k in 0..12 {
                net.send(NodeId(0), NodeId(1), k);
                net.send(NodeId(2), NodeId(1), 100 + k);
                net.send(NodeId(0), NodeId(2), 200 + k);
            }
        }
        let mut total = 0;
        for _ in 0..10 {
            total += stepped.step();
        }
        assert_eq!(jumped.advance_to(10), total);
        assert_eq!(jumped.round(), stepped.round());
        assert_eq!(jumped.stats(), stepped.stats());
        assert_eq!(jumped.metrics(), stepped.metrics());
        for node in 0..3 {
            assert_eq!(
                jumped.take_inbox(NodeId(node)),
                stepped.take_inbox(NodeId(node)),
                "inbox {node} diverged"
            );
        }
    }

    /// The delayed-crash path can end a run with traffic still held:
    /// `in_flight` must report it rather than underflow.
    #[test]
    fn in_flight_counts_messages_still_held_at_run_end() {
        let plan = FaultPlan::none(3).crash_at(NodeId(1), 2);
        let mut net: DelayTransport<u64> =
            DelayTransport::with_faults(3, plan, DelayProfile::fixed(4));
        net.send(NodeId(0), NodeId(1), 1);
        net.send(NodeId(2), NodeId(1), 2);
        net.send(NodeId(0), NodeId(2), 3);
        net.step();
        net.step();
        // "Run end": every message is still in `holding` (due tick 5).
        assert!(!net.is_quiescent());
        assert_eq!(net.stats().delivered, 0);
        assert_eq!(net.stats().dropped, 0);
        assert_eq!(net.stats().in_flight(), 3);
    }

    #[test]
    fn metrics_record_links_delays_and_drop_causes() {
        use dmw_obs::Key;

        let plan = FaultPlan::none(3)
            .crash_at(NodeId(1), 0)
            .drop_link(NodeId(0), NodeId(2));
        let mut net: DelayTransport<u64> =
            DelayTransport::with_faults(3, plan, DelayProfile::fixed(1));
        net.send(NodeId(0), NodeId(1), 1); // recipient crashed
        net.send(NodeId(1), NodeId(2), 2); // sender crashed
        net.send(NodeId(0), NodeId(2), 3); // dropped link
        net.send(NodeId(2), NodeId(0), 4); // delivered
        net.step();
        net.step();
        let m = net.metrics();
        assert_eq!(m.counter(&Key::named("link_messages").agent(0).peer(1)), 1);
        assert_eq!(m.counter(&Key::named("link_bytes").agent(2).peer(0)), 8);
        assert_eq!(m.counter_total("link_messages"), 4);
        assert_eq!(m.counter(&Key::named("drop_sender_crashed")), 1);
        assert_eq!(m.counter(&Key::named("drop_recipient_crashed")), 1);
        assert_eq!(m.counter(&Key::named("drop_link")), 1);
        assert_eq!(m.counter(&Key::named("drop_periodic")), 0);
        let h = m.histogram(&Key::named("delay_ticks")).expect("series");
        assert_eq!(h.total(), 4, "every enqueue observes its drawn latency");
        // fixed(1): all four messages drew a 2-tick delivery latency.
        assert_eq!(h.counts.get(1), Some(&4));
    }

    /// A toy payload marking odd values as control traffic, mirroring
    /// the lockstep transport's ack-path tests.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Frame(u64);

    impl Payload for Frame {
        fn size_bytes(&self) -> usize {
            8
        }

        fn is_control(&self) -> bool {
            self.0 % 2 == 1
        }
    }

    #[test]
    fn ack_path_and_reorder_schedules_mirror_lockstep() {
        use crate::network::Network;

        // Both knobs at once on the synchronous profile: the delivered
        // multisets and per-cause drop counters must match lockstep
        // exactly, and the reordered message must land a tick late on
        // both transports.
        let plan = || FaultPlan::none(2).drop_acks_every(2).reorder_every(5);
        let traffic: Vec<Frame> = (1..=10).map(Frame).collect();

        let mut lockstep: Network<Frame> = Network::with_faults(2, plan());
        let mut delayed: DelayTransport<Frame> =
            DelayTransport::with_faults(2, plan(), DelayProfile::synchronous());
        for f in &traffic {
            lockstep.send(NodeId(0), NodeId(1), *f);
            delayed.send(NodeId(0), NodeId(1), *f);
        }
        let collect = |by_tick: &mut Vec<(u64, u64)>, inbox: Vec<Delivered<Frame>>, tick: u64| {
            for msg in inbox {
                by_tick.push((tick, msg.payload.0));
            }
        };
        let mut lockstep_seen = Vec::new();
        let mut delayed_seen = Vec::new();
        for tick in 1..=3u64 {
            lockstep.step();
            delayed.step();
            collect(&mut lockstep_seen, lockstep.take_inbox(NodeId(1)), tick);
            collect(&mut delayed_seen, delayed.take_inbox(NodeId(1)), tick);
        }
        assert!(lockstep.is_quiescent() && delayed.is_quiescent());
        assert_eq!(lockstep_seen, delayed_seen, "transports diverged");
        // Control slots: frames 1,3,5,7,9 → #1..#5; even slots drop
        // (frames 3, 7). Reorder slots: seqs 5 and 10 → Frames 5 and 10
        // land a tick late.
        let expected: Vec<(u64, u64)> = vec![
            (1, 1),
            (1, 2),
            (1, 4),
            (1, 6),
            (1, 8),
            (1, 9),
            (2, 5),
            (2, 10),
        ];
        assert_eq!(lockstep_seen, expected);
        assert_eq!(lockstep.metrics().counter_total("drop_ack_path"), 2);
        assert_eq!(delayed.metrics().counter_total("drop_ack_path"), 2);
        assert_eq!(lockstep.stats(), delayed.stats());
    }

    #[test]
    fn reordered_messages_record_their_penalized_latency() {
        use dmw_obs::Key;

        let plan = FaultPlan::none(2).reorder_every(3);
        let mut net: DelayTransport<u64> =
            DelayTransport::with_faults(2, plan, DelayProfile::synchronous());
        for k in 0..3 {
            net.send(NodeId(0), NodeId(1), k);
        }
        let h = net
            .metrics()
            .histogram(&Key::named("delay_ticks"))
            .expect("series");
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts.get(0), Some(&2), "two on-time one-tick arrivals");
        assert_eq!(h.counts.get(1), Some(&1), "one two-tick reordered arrival");
    }

    #[test]
    fn crash_and_drop_semantics_mirror_lockstep() {
        let plan = FaultPlan::none(3)
            .crash_at(NodeId(1), 0)
            .drop_link(NodeId(0), NodeId(2));
        let mut net: DelayTransport<u64> =
            DelayTransport::with_faults(3, plan, DelayProfile::synchronous());
        net.send(NodeId(0), NodeId(1), 1); // to crashed node
        net.send(NodeId(1), NodeId(2), 2); // from crashed node
        net.send(NodeId(0), NodeId(2), 3); // dropped link
        net.send(NodeId(2), NodeId(0), 4); // unaffected
        net.step();
        assert!(net.take_inbox(NodeId(1)).is_empty());
        assert!(net.take_inbox(NodeId(2)).is_empty());
        assert_eq!(net.take_inbox(NodeId(0)).len(), 1);
        assert_eq!(net.stats().dropped, 3);
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().in_flight(), 0);
    }
}
