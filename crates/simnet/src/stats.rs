//! Traffic accounting for the simulated network.

use serde::{Deserialize, Serialize};

/// Cumulative traffic counters for one [`crate::Network`].
///
/// `point_to_point` counts every unicast transmission, *including* the
/// `n − 1` unicasts that implement each broadcast — this is the quantity
/// Theorem 11 bounds by `Θ(mn²)` for DMW and `Θ(mn)` for centralized
/// MinWork.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Unicast transmissions enqueued (broadcasts count as `n − 1` each).
    pub point_to_point: u64,
    /// Broadcast *events* (each also contributes `n − 1` to
    /// `point_to_point`).
    pub broadcasts: u64,
    /// Total payload bytes enqueued.
    pub bytes: u64,
    /// Messages actually delivered (sent minus those lost to crashes or
    /// dropped links).
    pub delivered: u64,
    /// Messages lost to fault injection.
    pub dropped: u64,
    /// Synchronous rounds stepped.
    pub rounds: u64,
}

impl NetworkStats {
    /// Messages still in flight (enqueued but neither delivered nor
    /// dropped).
    pub fn in_flight(&self) -> u64 {
        self.point_to_point - self.delivered - self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = NetworkStats::default();
        assert_eq!(s.point_to_point, 0);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn in_flight_accounts_for_losses() {
        let s = NetworkStats {
            point_to_point: 10,
            delivered: 6,
            dropped: 3,
            ..Default::default()
        };
        assert_eq!(s.in_flight(), 1);
    }
}
