//! Traffic accounting for the simulated network.

use serde::{Deserialize, Serialize};

/// Cumulative traffic counters for one [`crate::Transport`].
///
/// `point_to_point` counts every unicast transmission, *including* the
/// `n − 1` unicasts that implement each broadcast — this is the quantity
/// Theorem 11 bounds by `Θ(mn²)` for DMW and `Θ(mn)` for centralized
/// MinWork.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Unicast transmissions enqueued (broadcasts count as `n − 1` each).
    pub point_to_point: u64,
    /// Broadcast *events* (each also contributes `n − 1` to
    /// `point_to_point`).
    pub broadcasts: u64,
    /// Total payload bytes enqueued.
    pub bytes: u64,
    /// Messages actually delivered (sent minus those lost to crashes or
    /// dropped links).
    pub delivered: u64,
    /// Messages lost to fault injection.
    pub dropped: u64,
    /// Synchronous rounds stepped.
    pub rounds: u64,
}

impl NetworkStats {
    /// Messages still in flight (enqueued but neither delivered nor
    /// dropped) — e.g. held past run end by a delay transport.
    ///
    /// Delivered plus dropped can never exceed enqueued; if accounting
    /// ever drifts this debug-asserts rather than panicking on raw
    /// subtraction (and saturates to zero in release builds instead of
    /// wrapping to an absurd count).
    pub fn in_flight(&self) -> u64 {
        let settled = self.delivered + self.dropped;
        debug_assert!(
            settled <= self.point_to_point,
            "traffic accounting drift: delivered {} + dropped {} > enqueued {}",
            self.delivered,
            self.dropped,
            self.point_to_point
        );
        self.point_to_point.saturating_sub(settled)
    }

    /// Accumulates another run's counters into this one — the aggregation
    /// the batch harness uses to report whole-sweep traffic totals.
    pub fn absorb(&mut self, other: &NetworkStats) {
        self.point_to_point += other.point_to_point;
        self.broadcasts += other.broadcasts;
        self.bytes += other.bytes;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.rounds += other.rounds;
    }
}

impl std::ops::AddAssign for NetworkStats {
    fn add_assign(&mut self, other: NetworkStats) {
        self.absorb(&other);
    }
}

impl std::ops::Add for NetworkStats {
    type Output = NetworkStats;

    fn add(mut self, other: NetworkStats) -> NetworkStats {
        self += other;
        self
    }
}

impl std::iter::Sum for NetworkStats {
    fn sum<I: Iterator<Item = NetworkStats>>(iter: I) -> NetworkStats {
        iter.fold(NetworkStats::default(), std::ops::Add::add)
    }
}

impl<'a> std::iter::Sum<&'a NetworkStats> for NetworkStats {
    fn sum<I: Iterator<Item = &'a NetworkStats>>(iter: I) -> NetworkStats {
        iter.fold(NetworkStats::default(), |mut acc, s| {
            acc.absorb(s);
            acc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = NetworkStats::default();
        assert_eq!(s.point_to_point, 0);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn in_flight_accounts_for_losses() {
        let s = NetworkStats {
            point_to_point: 10,
            delivered: 6,
            dropped: 3,
            ..Default::default()
        };
        assert_eq!(s.in_flight(), 1);
    }

    #[test]
    fn aggregation_sums_every_counter() {
        let a = NetworkStats {
            point_to_point: 10,
            broadcasts: 2,
            bytes: 100,
            delivered: 9,
            dropped: 1,
            rounds: 6,
        };
        let b = NetworkStats {
            point_to_point: 5,
            broadcasts: 1,
            bytes: 40,
            delivered: 5,
            dropped: 0,
            rounds: 6,
        };
        let total: NetworkStats = [a, b].iter().sum();
        assert_eq!(total.point_to_point, 15);
        assert_eq!(total.broadcasts, 3);
        assert_eq!(total.bytes, 140);
        assert_eq!(total.delivered, 14);
        assert_eq!(total.dropped, 1);
        assert_eq!(total.rounds, 12);
        assert_eq!(a + b, total);
        let mut acc = a;
        acc += b;
        assert_eq!(acc, total);
    }
}
