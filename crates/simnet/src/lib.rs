//! A synchronous message-passing network simulator for distributed
//! mechanism experiments.
//!
//! The DMW paper defers evaluation to "implementing DMW in a simulated
//! distributed environment" (Section 5, future work); this crate is that
//! environment. It models exactly what the paper assumes:
//!
//! * **private point-to-point channels** between every pair of agents and a
//!   **broadcast channel** (Section 3, "Notation") — broadcast is
//!   implemented as `n − 1` point-to-point transmissions, matching the cost
//!   accounting of Theorem 11 ("we assume no explicit broadcast facilities");
//! * an **obedient transport**: messages are neither reordered within a
//!   round nor corrupted in flight (Theorem 3 assumes the underlying
//!   network is obedient — dishonest *content* is produced by deviating
//!   agents, not by the network);
//! * **synchronous rounds** with implicit synchronization barriers, the
//!   model behind protocol step II.4 ("agents implicitly synchronize at
//!   this point");
//! * **fault injection**: crash faults (an agent stops sending and
//!   receiving) and link drops, used by the resilience ablation.
//!
//! Every transmission is tallied in [`NetworkStats`]; the Table 1
//! communication experiment reads its counters.
//!
//! # Example
//!
//! ```
//! use dmw_simnet::{Network, NodeId, Recipient};
//!
//! let mut net: Network<&'static str> = Network::new(3);
//! net.send(NodeId(0), NodeId(1), "hello");
//! net.broadcast(NodeId(2), "to everyone");
//! net.step(); // deliver the round's traffic
//! assert_eq!(net.take_inbox(NodeId(1)).len(), 2); // unicast + broadcast
//! assert_eq!(net.stats().point_to_point, 1 + 2);  // broadcast = n−1 sends
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod network;
pub mod stats;

pub use faults::FaultPlan;
pub use network::{Delivered, Network, NodeId, Payload, Recipient};
pub use stats::NetworkStats;
