//! A synchronous message-passing network simulator for distributed
//! mechanism experiments.
//!
//! The DMW paper defers evaluation to "implementing DMW in a simulated
//! distributed environment" (Section 5, future work); this crate is that
//! environment. It models exactly what the paper assumes:
//!
//! * **private point-to-point channels** between every pair of agents and a
//!   **broadcast channel** (Section 3, "Notation") — broadcast is
//!   implemented as `n − 1` point-to-point transmissions, matching the cost
//!   accounting of Theorem 11 ("we assume no explicit broadcast facilities");
//! * an **obedient transport**: messages are neither reordered in flight
//!   nor corrupted (Theorem 3 assumes the underlying network is obedient
//!   — dishonest *content* is produced by deviating agents, not by the
//!   network);
//! * **delivery timing as a parameter**: the [`Transport`] trait
//!   abstracts *when* an enqueued message becomes visible.
//!   [`LockstepTransport`] keeps the paper's synchronous rounds with
//!   implicit barriers (protocol step II.4, "agents implicitly
//!   synchronize at this point"); [`DelayTransport`] holds each message
//!   for a deterministic seeded per-link delay, modelling asynchrony
//!   without giving up replayability;
//! * **fault injection**: crash faults (an agent stops sending and
//!   receiving), link drops and link delays, used by the resilience
//!   ablation.
//!
//! Every transmission is tallied in [`NetworkStats`]; the Table 1
//! communication experiment reads its counters.
//!
//! # Example
//!
//! ```
//! use dmw_simnet::{Network, NodeId, Recipient};
//!
//! let mut net: Network<u64> = Network::new(3);
//! net.send(NodeId(0), NodeId(1), 41);
//! net.broadcast(NodeId(2), 42);
//! net.step(); // deliver the round's traffic
//! assert_eq!(net.take_inbox(NodeId(1)).len(), 2); // unicast + broadcast
//! assert_eq!(net.stats().point_to_point, 1 + 2);  // broadcast = n−1 sends
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod faults;
pub mod network;
pub mod stats;
pub mod transport;

pub use delay::{DelayProfile, DelayTransport};
pub use faults::FaultPlan;
pub use network::{Delivered, LockstepTransport, Network, NodeId, Payload, Recipient};
pub use stats::NetworkStats;
pub use transport::{coalesce, Transport};
