//! The transport abstraction: how protocol messages move between agents.
//!
//! [`Transport`] captures exactly the surface the protocol scheduler in
//! `dmw::runner` needs — send/broadcast, per-node inbox draining, a
//! delivery step, quiescence, and traffic statistics — so the protocol is
//! generic over *when* messages arrive. Two implementations ship with the
//! simulator:
//!
//! * [`crate::LockstepTransport`] — the synchronous-rounds model of the
//!   paper (the implicit barrier of protocol step II.4): everything sent
//!   in round `r` arrives in round `r + 1`;
//! * [`crate::DelayTransport`] — a deterministic asynchronous model where
//!   each link holds messages for a seeded per-link delay, proving agents
//!   assume message *completeness*, never next-round delivery.
//!
//! The module also hosts [`coalesce`], the indexed per-recipient batching
//! pass: grouping same-recipient payloads is a transport concern (fewer,
//! larger transmissions), not protocol logic.

use crate::faults::FaultPlan;
use crate::network::{Delivered, NodeId, Payload, Recipient};
use crate::stats::NetworkStats;
use dmw_obs::MetricsSnapshot;
use std::collections::HashMap;

/// A message-delivery substrate for `n` protocol agents.
///
/// Implementations decide when an enqueued message becomes visible in the
/// recipient's inbox; the protocol only ever observes inboxes. One call to
/// [`Transport::step`] advances simulated time by one scheduler tick.
pub trait Transport<M: Payload + Clone> {
    /// Number of nodes attached to the transport.
    fn nodes(&self) -> usize;

    /// Enqueues a private point-to-point message.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `from == to` (the
    /// protocol never self-sends; local state is kept locally).
    fn send(&mut self, from: NodeId, to: NodeId, payload: M);

    /// Publishes a message to every other node — accounted as `n − 1`
    /// point-to-point transmissions, per the paper's cost model.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    fn broadcast(&mut self, from: NodeId, payload: M);

    /// Drains and returns `node`'s inbox in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn take_inbox(&mut self, node: NodeId) -> Vec<Delivered<M>>;

    /// Advances one tick, moving due traffic into inboxes. Returns the
    /// number of messages delivered by this step.
    fn step(&mut self) -> u64;

    /// The current tick (round) number.
    fn round(&self) -> u64;

    /// The cumulative traffic counters.
    fn stats(&self) -> &NetworkStats;

    /// The transport-level [`MetricsSnapshot`]: per-link
    /// `link_messages` / `link_bytes` counters, the `delay_ticks`
    /// delivery-latency histogram (observed at enqueue, in logical
    /// ticks) and per-cause `drop_*` counters. Purely deterministic —
    /// two runs of the same seed yield equal snapshots.
    fn metrics(&self) -> &MetricsSnapshot;

    /// The fault schedule the transport applies.
    fn faults(&self) -> &FaultPlan;

    /// `true` when no traffic is pending delivery *and* every inbox has
    /// been drained — the scheduler's termination signal.
    fn is_quiescent(&self) -> bool;

    /// The earliest tick `t >= round()` at which a scheduler tick can
    /// observe transport activity: `round()` itself while any inbox
    /// still holds deliveries (or lockstep traffic is pending), the
    /// earliest held message's due tick for a delaying transport, and
    /// `None` when the transport is quiescent. An event-driven
    /// scheduler (see `docs/scheduler.md`) may [`Transport::advance_to`]
    /// any tick up to the reported value without changing what any
    /// agent ever observes.
    ///
    /// The default is deliberately conservative — "now, unless
    /// quiescent" — which degrades an event-driven scheduler to
    /// poll-every-tick behaviour on transports that don't override it
    /// (wrappers, test doubles) while staying exactly equivalent.
    fn next_due(&self) -> Option<u64> {
        if self.is_quiescent() {
            None
        } else {
            Some(self.round())
        }
    }

    /// Advances the transport to tick `target` exactly as
    /// `target − round()` consecutive [`Transport::step`] calls would —
    /// same deliveries in the same order, same round/statistics
    /// accounting — returning the total number of messages delivered.
    /// Implementations override this to fast-forward dead air in O(1);
    /// the default literally steps. A `target` at or before the current
    /// round is a no-op.
    fn advance_to(&mut self, target: u64) -> u64 {
        let mut delivered = 0;
        while self.round() < target {
            delivered += self.step();
        }
        delivered
    }
}

/// Groups same-recipient payloads into one transmission each, preserving
/// first-occurrence recipient order and in-group payload order.
///
/// A recipient with a single payload passes through untouched; a
/// recipient with several gets them folded through `merge` (the protocol
/// passes its `Body::Batch` constructor). Grouping is indexed by a
/// recipient → slot map, so a tick with `r` outgoing messages costs
/// `O(r)` instead of the quadratic scan a per-message linear `find`
/// would.
pub fn coalesce<M>(
    outgoing: Vec<(Recipient, M)>,
    mut merge: impl FnMut(Vec<M>) -> M,
) -> Vec<(Recipient, M)> {
    let mut groups: Vec<(Recipient, Vec<M>)> = Vec::new();
    // HashMap is safe here (dmw-lint L10): `slots` is only ever probed
    // by key, never iterated — output order comes from `groups`, which
    // preserves first-occurrence order.
    let mut slots: HashMap<Recipient, usize> = HashMap::new();
    for (recipient, payload) in outgoing {
        match slots.get(&recipient) {
            Some(&slot) => groups[slot].1.push(payload),
            None => {
                slots.insert(recipient, groups.len());
                groups.push((recipient, vec![payload]));
            }
        }
    }
    groups
        .into_iter()
        .map(|(recipient, mut payloads)| {
            if payloads.len() == 1 {
                let only = payloads.pop().expect("group holds exactly one payload");
                (recipient, only)
            } else {
                (recipient, merge(payloads))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uni(to: usize) -> Recipient {
        Recipient::Unicast(NodeId(to))
    }

    #[test]
    fn coalesce_groups_by_recipient_in_first_occurrence_order() {
        let outgoing = vec![
            (uni(2), 10u64),
            (Recipient::Broadcast, 20),
            (uni(2), 30),
            (uni(1), 40),
            (Recipient::Broadcast, 50),
        ];
        let merged = coalesce(outgoing, |batch| batch.iter().sum());
        assert_eq!(
            merged,
            vec![(uni(2), 40), (Recipient::Broadcast, 70), (uni(1), 40)]
        );
    }

    #[test]
    fn singletons_pass_through_unmerged() {
        let outgoing = vec![(uni(1), 7u64)];
        let merged = coalesce(outgoing, |_| panic!("merge must not run for singletons"));
        assert_eq!(merged, vec![(uni(1), 7)]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let merged: Vec<(Recipient, u64)> = coalesce(Vec::new(), |batch| batch.iter().sum());
        assert!(merged.is_empty());
    }
}
