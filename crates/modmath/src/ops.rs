//! Thread-local modular-operation counters.
//!
//! The paper's Table 1 bounds DMW's per-agent computation by `O(mn² log p)`
//! counted in modular multiplications (with an inversion costed as one
//! multiplication, Section 2.4). These counters record every primitive
//! operation executed by [`crate::arith`] so the reproduction harness can
//! measure that bound empirically rather than assert it.
//!
//! Counters are thread-local: a simulation driving `n` agents on one thread
//! measures the whole protocol; the per-agent figure is obtained by dividing
//! by `n` (all agents perform symmetric work in DMW) or by running a single
//! audited agent. Typical usage brackets a region of interest:
//!
//! ```
//! use dmw_modmath::{ops, arith};
//!
//! ops::reset_ops();
//! arith::mul_mod(3, 4, 7);
//! arith::pow_mod(2, 10, 101);
//! let snap = ops::take_ops();
//! assert_eq!(snap.pow, 1);
//! assert!(snap.mul > 1); // the explicit mul + the muls inside pow
//! ```

use std::cell::Cell;

thread_local! {
    static MUL: Cell<u64> = const { Cell::new(0) };
    static ADD: Cell<u64> = const { Cell::new(0) };
    static INV: Cell<u64> = const { Cell::new(0) };
    static POW: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of the thread-local operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpsSnapshot {
    /// Modular multiplications, including those performed inside
    /// exponentiations (this is where the `log p` factor of Table 1 lives).
    pub mul: u64,
    /// Modular additions and subtractions.
    pub add: u64,
    /// Modular inversions (extended Euclid invocations).
    pub inv: u64,
    /// Modular exponentiations (each also contributes its internal
    /// multiplications to `mul`).
    pub pow: u64,
}

impl OpsSnapshot {
    /// Total work in "multiplication equivalents" under the paper's cost
    /// model, which prices an inversion the same as a multiplication
    /// (Section 2.4) and ignores additions.
    ///
    /// # Example
    /// ```
    /// let snap = dmw_modmath::OpsSnapshot { mul: 10, add: 99, inv: 2, pow: 1 };
    /// assert_eq!(snap.mul_equivalents(), 12);
    /// ```
    pub fn mul_equivalents(&self) -> u64 {
        self.mul + self.inv
    }

    /// Element-wise difference, saturating at zero; useful for measuring a
    /// region when `reset_ops` cannot be called (e.g. nested measurements).
    pub fn since(&self, earlier: &OpsSnapshot) -> OpsSnapshot {
        OpsSnapshot {
            mul: self.mul.saturating_sub(earlier.mul),
            add: self.add.saturating_sub(earlier.add),
            inv: self.inv.saturating_sub(earlier.inv),
            pow: self.pow.saturating_sub(earlier.pow),
        }
    }
}

impl std::ops::Add for OpsSnapshot {
    type Output = OpsSnapshot;

    fn add(self, rhs: OpsSnapshot) -> OpsSnapshot {
        OpsSnapshot {
            mul: self.mul + rhs.mul,
            add: self.add + rhs.add,
            inv: self.inv + rhs.inv,
            pow: self.pow + rhs.pow,
        }
    }
}

#[inline]
pub(crate) fn record_mul() {
    MUL.with(|c| c.set(c.get().wrapping_add(1)));
}

#[inline]
pub(crate) fn record_add() {
    ADD.with(|c| c.set(c.get().wrapping_add(1)));
}

#[inline]
pub(crate) fn record_inv() {
    INV.with(|c| c.set(c.get().wrapping_add(1)));
}

#[inline]
pub(crate) fn record_pow() {
    POW.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Resets this thread's counters to zero.
pub fn reset_ops() {
    MUL.with(|c| c.set(0));
    ADD.with(|c| c.set(0));
    INV.with(|c| c.set(0));
    POW.with(|c| c.set(0));
}

/// Returns the current counters without resetting them.
pub fn current_ops() -> OpsSnapshot {
    OpsSnapshot {
        mul: MUL.with(Cell::get),
        add: ADD.with(Cell::get),
        inv: INV.with(Cell::get),
        pow: POW.with(Cell::get),
    }
}

/// Returns the current counters and resets them to zero.
pub fn take_ops() -> OpsSnapshot {
    let snap = current_ops();
    reset_ops();
    snap
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::arith;

    #[test]
    fn counters_track_primitive_ops() {
        reset_ops();
        arith::mul_mod(2, 3, 7);
        arith::add_mod(2, 3, 7);
        arith::sub_mod(2, 3, 7);
        arith::inv_mod(3, 7);
        let snap = take_ops();
        assert_eq!(snap.mul, 1);
        assert_eq!(snap.add, 2);
        assert_eq!(snap.inv, 1);
        assert_eq!(snap.pow, 0);
    }

    #[test]
    fn pow_contributes_log_many_muls() {
        reset_ops();
        arith::pow_mod(3, (1 << 20) - 1, 0x7FFF_FFFF_FFFF_FFE7);
        let snap = take_ops();
        assert_eq!(snap.pow, 1);
        // 20 one-bits -> 20 result muls + 19 squarings.
        assert_eq!(snap.mul, 39);
    }

    #[test]
    fn take_resets() {
        reset_ops();
        arith::mul_mod(2, 3, 7);
        let _ = take_ops();
        assert_eq!(current_ops(), OpsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        reset_ops();
        arith::mul_mod(2, 3, 7);
        let first = current_ops();
        arith::mul_mod(2, 3, 7);
        arith::mul_mod(2, 3, 7);
        let second = current_ops();
        assert_eq!(second.since(&first).mul, 2);
        reset_ops();
    }

    #[test]
    fn snapshots_sum() {
        let a = OpsSnapshot {
            mul: 1,
            add: 2,
            inv: 3,
            pow: 4,
        };
        let b = OpsSnapshot {
            mul: 10,
            add: 20,
            inv: 30,
            pow: 40,
        };
        let s = a + b;
        assert_eq!(
            s,
            OpsSnapshot {
                mul: 11,
                add: 22,
                inv: 33,
                pow: 44
            }
        );
    }
}
