//! [`SchnorrGroup`]: the algebraic setting of DMW's commitments.
//!
//! The protocol's initialization phase publishes "large primes `p`, `q` such
//! that `q | p − 1`" and "`z1, z2 ∈ Z_p*` distinct generators of order `q`"
//! (Section 3, Notation). Commitments such as `O = z1^v · z2^c (mod p)` are
//! Pedersen commitments in the order-`q` subgroup of `Z_p*`; their hiding
//! property rests on the discrete logarithm of `z2` with respect to `z1`
//! being unknown, which we model by sampling the two generators
//! independently.
//!
//! All *exponent* arithmetic (polynomial coefficients, shares, Lagrange
//! coefficients `ρ_k`) happens in `Z_q`; all *group* arithmetic (commitment
//! multiplication, `Λ/Ψ/Γ/Φ` values) happens modulo `p`. The paper is loose
//! about this split (it writes polynomials over `Z_p*` but reduces `ρ_k`
//! mod `q`); this implementation keeps the split strict, as recorded in
//! DESIGN.md.

use crate::error::ModMathError;
use crate::field::PrimeField;
use crate::prime::{is_prime, random_prime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Public parameters `(p, q, z1, z2)` of the order-`q` subgroup of `Z_p*`.
///
/// # Example
/// ```
/// use dmw_modmath::SchnorrGroup;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let group = SchnorrGroup::generate(40, 16, &mut rng)?;
/// assert_eq!((group.p() - 1) % group.q(), 0); // q | p − 1
/// // Both generators have order exactly q.
/// assert_eq!(group.zp().pow(group.z1(), group.q()), 1);
/// assert_eq!(group.zp().pow(group.z2(), group.q()), 1);
/// # Ok::<(), dmw_modmath::ModMathError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchnorrGroup {
    p: u64,
    q: u64,
    z1: u64,
    z2: u64,
    /// Cached ambient field, so `zp()` costs nothing per call.
    #[serde(skip, default)]
    zp: Option<PrimeField>,
    /// Cached exponent field.
    #[serde(skip, default)]
    zq: Option<PrimeField>,
}

impl SchnorrGroup {
    /// Maximum attempts when searching for `p = kq + 1` prime.
    const MAX_ATTEMPTS: u32 = 100_000;

    /// Generates fresh group parameters with `|p| = p_bits`, `|q| = q_bits`.
    ///
    /// # Errors
    ///
    /// * [`ModMathError::InvalidGroupSize`] when the bit sizes are
    ///   incompatible (`q_bits + 2 > p_bits` or `p_bits > 63`).
    /// * [`ModMathError::GroupGenerationFailed`] when no suitable `p` is
    ///   found within the attempt budget (practically unreachable for sane
    ///   sizes).
    pub fn generate<R: Rng + ?Sized>(
        p_bits: u32,
        q_bits: u32,
        rng: &mut R,
    ) -> Result<Self, ModMathError> {
        if p_bits > 63 || q_bits < 3 || q_bits + 2 > p_bits {
            return Err(ModMathError::InvalidGroupSize { p_bits, q_bits });
        }
        let q = random_prime(q_bits, rng);
        Self::generate_with_order(p_bits, q, rng)
    }

    /// Generates group parameters for a *given* subgroup order `q`.
    ///
    /// This is what the privacy experiments use to sweep `q` while holding
    /// the rest of the configuration fixed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SchnorrGroup::generate`]; additionally `q` must
    /// be prime.
    pub fn generate_with_order<R: Rng + ?Sized>(
        p_bits: u32,
        q: u64,
        rng: &mut R,
    ) -> Result<Self, ModMathError> {
        if !is_prime(q) {
            return Err(ModMathError::NotPrime { modulus: q });
        }
        let q_bits = 64 - q.leading_zeros();
        if p_bits > 63 || q_bits + 2 > p_bits {
            return Err(ModMathError::InvalidGroupSize { p_bits, q_bits });
        }
        // Search for k with p = k·q + 1 prime and |p| = p_bits.
        let low_k = (1u64 << (p_bits - 1)) / q + 1;
        let high_k = ((1u64 << p_bits) - 1) / q;
        if low_k >= high_k {
            return Err(ModMathError::InvalidGroupSize { p_bits, q_bits });
        }
        for _ in 0..Self::MAX_ATTEMPTS {
            let k = rng.gen_range(low_k..=high_k);
            let p = match k.checked_mul(q).and_then(|kq| kq.checked_add(1)) {
                Some(p) => p,
                None => continue,
            };
            if 64 - p.leading_zeros() != p_bits || !is_prime(p) {
                continue;
            }
            let z1 = Self::find_generator(p, q, rng);
            let z2 = loop {
                let candidate = Self::find_generator(p, q, rng);
                if candidate != z1 {
                    break candidate;
                }
            };
            return Ok(SchnorrGroup::assemble(p, q, z1, z2));
        }
        Err(ModMathError::GroupGenerationFailed { p_bits, q_bits })
    }

    /// Picks a random element of order exactly `q` in `Z_p*`.
    fn find_generator<R: Rng + ?Sized>(p: u64, q: u64, rng: &mut R) -> u64 {
        let zp = PrimeField::from_validated_modulus(p);
        let cofactor = (p - 1) / q;
        loop {
            let h = rng.gen_range(2..p - 1);
            let g = zp.pow(h, cofactor);
            if g != 1 {
                debug_assert_eq!(zp.pow(g, q), 1);
                return g;
            }
        }
    }

    /// Constructs a group from explicit parameters, validating every
    /// requirement of the paper's Notation section.
    ///
    /// # Errors
    ///
    /// Returns an error if `p` or `q` is not prime, `q ∤ p − 1`, either
    /// generator is out of range, of wrong order, or the generators are not
    /// distinct.
    pub fn from_parts(p: u64, q: u64, z1: u64, z2: u64) -> Result<Self, ModMathError> {
        if !is_prime(p) {
            return Err(ModMathError::NotPrime { modulus: p });
        }
        if !is_prime(q) {
            return Err(ModMathError::NotPrime { modulus: q });
        }
        if !(p - 1).is_multiple_of(q) {
            return Err(ModMathError::InvalidGroupSize {
                p_bits: 64 - p.leading_zeros(),
                q_bits: 64 - q.leading_zeros(),
            });
        }
        let zp = PrimeField::new(p)?;
        for z in [z1, z2] {
            if z <= 1 || z >= p {
                return Err(ModMathError::OutOfRange {
                    value: z,
                    modulus: p,
                });
            }
            if zp.pow(z, q) != 1 {
                return Err(ModMathError::OutOfRange {
                    value: z,
                    modulus: p,
                });
            }
        }
        if z1 == z2 {
            return Err(ModMathError::OutOfRange {
                value: z2,
                modulus: p,
            });
        }
        Ok(SchnorrGroup::assemble(p, q, z1, z2))
    }

    /// Builds the struct with cached fields; inputs already validated.
    fn assemble(p: u64, q: u64, z1: u64, z2: u64) -> Self {
        SchnorrGroup {
            p,
            q,
            z1,
            z2,
            zp: Some(PrimeField::from_validated_modulus(p)),
            zq: Some(PrimeField::from_validated_modulus(q)),
        }
    }

    /// The group modulus `p`.
    pub fn p(&self) -> u64 {
        self.p
    }

    /// The subgroup order `q`.
    pub fn q(&self) -> u64 {
        self.q
    }

    /// The first generator `z1`.
    pub fn z1(&self) -> u64 {
        self.z1
    }

    /// The second generator `z2`.
    pub fn z2(&self) -> u64 {
        self.z2
    }

    /// The ambient field `Z_p` in which group elements are multiplied.
    pub fn zp(&self) -> PrimeField {
        // The Option is None only for deserialized values (serde skip).
        self.zp
            .unwrap_or_else(|| PrimeField::from_validated_modulus(self.p))
    }

    /// The exponent field `Z_q` in which shares and Lagrange coefficients
    /// are computed.
    pub fn zq(&self) -> PrimeField {
        self.zq
            .unwrap_or_else(|| PrimeField::from_validated_modulus(self.q))
    }

    /// Computes the double-base commitment `z1^a · z2^b (mod p)` — the shape
    /// of every commitment entry in the paper's equation (6).
    ///
    /// # Example
    /// ```
    /// # use dmw_modmath::SchnorrGroup;
    /// # use rand::SeedableRng;
    /// # let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    /// # let g = SchnorrGroup::generate(32, 12, &mut rng)?;
    /// let zp = g.zp();
    /// let c = g.commit(3, 4);
    /// assert_eq!(c, zp.mul(zp.pow(g.z1(), 3), zp.pow(g.z2(), 4)));
    /// # Ok::<(), dmw_modmath::ModMathError>(())
    /// ```
    pub fn commit(&self, a: u64, b: u64) -> u64 {
        let zp = self.zp();
        zp.mul(zp.pow(self.z1, a), zp.pow(self.z2, b))
    }

    /// `z1^a (mod p)`.
    pub fn pow_z1(&self, a: u64) -> u64 {
        self.zp().pow(self.z1, a)
    }

    /// `z2^b (mod p)`.
    pub fn pow_z2(&self, b: u64) -> u64 {
        self.zp().pow(self.z2, b)
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn generated_group_satisfies_notation_requirements() {
        let g = SchnorrGroup::generate(48, 20, &mut rng()).unwrap();
        assert!(is_prime(g.p()));
        assert!(is_prime(g.q()));
        assert_eq!((g.p() - 1) % g.q(), 0);
        assert_ne!(g.z1(), g.z2());
        let zp = g.zp();
        assert_eq!(zp.pow(g.z1(), g.q()), 1);
        assert_eq!(zp.pow(g.z2(), g.q()), 1);
        assert_ne!(g.z1(), 1);
        assert_ne!(g.z2(), 1);
    }

    #[test]
    fn generator_order_is_exactly_q() {
        // Order divides q and q is prime, so order is 1 or q; != 1 checked.
        let g = SchnorrGroup::generate(32, 12, &mut rng()).unwrap();
        assert_ne!(g.pow_z1(1), 1);
    }

    #[test]
    fn rejects_incompatible_sizes() {
        let mut r = rng();
        assert!(matches!(
            SchnorrGroup::generate(64, 16, &mut r),
            Err(ModMathError::InvalidGroupSize { .. })
        ));
        assert!(matches!(
            SchnorrGroup::generate(16, 15, &mut r),
            Err(ModMathError::InvalidGroupSize { .. })
        ));
        assert!(matches!(
            SchnorrGroup::generate(16, 2, &mut r),
            Err(ModMathError::InvalidGroupSize { .. })
        ));
    }

    #[test]
    fn generate_with_order_uses_given_q() {
        let g = SchnorrGroup::generate_with_order(32, 1031, &mut rng()).unwrap();
        assert_eq!(g.q(), 1031);
        assert_eq!((g.p() - 1) % 1031, 0);
    }

    #[test]
    fn generate_with_order_rejects_composite_q() {
        assert!(matches!(
            SchnorrGroup::generate_with_order(32, 1032, &mut rng()),
            Err(ModMathError::NotPrime { modulus: 1032 })
        ));
    }

    #[test]
    fn from_parts_validates() {
        let g = SchnorrGroup::generate(32, 12, &mut rng()).unwrap();
        // Round-trips.
        let rebuilt = SchnorrGroup::from_parts(g.p(), g.q(), g.z1(), g.z2()).unwrap();
        assert_eq!(rebuilt, g);
        // Equal generators rejected.
        assert!(SchnorrGroup::from_parts(g.p(), g.q(), g.z1(), g.z1()).is_err());
        // Element of wrong order rejected (1 has order 1; p-1 has order 2
        // unless q == 2).
        assert!(SchnorrGroup::from_parts(g.p(), g.q(), 1, g.z2()).is_err());
        // Wrong q rejected.
        assert!(SchnorrGroup::from_parts(g.p(), 1031, g.z1(), g.z2()).is_err());
    }

    #[test]
    fn commit_is_homomorphic() {
        // commit(a1+a2, b1+b2) == commit(a1,b1) * commit(a2,b2) — the
        // property DMW leans on when summing bid polynomials.
        let g = SchnorrGroup::generate(40, 16, &mut rng()).unwrap();
        let zq = g.zq();
        let zp = g.zp();
        let (a1, a2, b1, b2) = (17u64, 400u64, 23u64, 90u64);
        let lhs = g.commit(zq.add(a1, a2), zq.add(b1, b2));
        let rhs = zp.mul(g.commit(a1, b1), g.commit(a2, b2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn exponents_reduce_mod_q() {
        let g = SchnorrGroup::generate(40, 16, &mut rng()).unwrap();
        // z1^(q+5) == z1^5 because z1 has order q.
        assert_eq!(g.pow_z1(g.q() + 5), g.pow_z1(5));
    }
}
