//! Modular arithmetic and polynomial substrate for the DMW scheduling
//! mechanism.
//!
//! This crate provides the number-theoretic foundation on which the
//! cryptographic layer of Distributed MinWork (Carroll & Grosu, PODC 2005 /
//! JPDC 2011) is built:
//!
//! * [`arith`] — primitive modular operations on `u64` values with `u128`
//!   intermediates (multiplication, exponentiation by right-to-left binary
//!   decomposition, inversion by the extended Euclidean algorithm);
//! * [`prime`] — deterministic Miller–Rabin primality testing for `u64` and
//!   random prime generation;
//! * [`field`] — [`PrimeField`], a runtime-modulus prime field `Z_p` wrapping
//!   the primitives with validation and operation counting;
//! * [`group`] — [`SchnorrGroup`], the order-`q` subgroup of `Z_p*`
//!   (`q | p − 1`) with two independent generators `z1`, `z2` as required by
//!   the paper's commitment scheme (Section 3, "Notation");
//! * [`poly`] — dense polynomials over `Z_q`, including the zero-constant-term
//!   random polynomials in which DMW encodes bids (Section 3, Phase II);
//! * [`lagrange`] — Lagrange interpolation at zero and the polynomial degree
//!   resolution procedure of Section 2.4, both the textbook formula and the
//!   paper's three-step algorithm \[14\];
//! * [`ops`] — thread-local operation counters used to regenerate the
//!   computational-cost row of the paper's Table 1.
//!
//! # Example
//!
//! Resolve the degree of a secret-shared polynomial from its shares, the core
//! primitive behind DMW's bid resolution:
//!
//! ```
//! use dmw_modmath::{PrimeField, Poly, lagrange};
//! use rand::SeedableRng;
//!
//! let field = PrimeField::new(1031)?; // a small prime field Z_q
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // A random degree-5 polynomial with zero constant term encodes a "bid".
//! let poly = Poly::random_zero_constant(&field, 5, &mut rng);
//! // Shares are evaluations at distinct non-zero points (the pseudonyms).
//! let shares: Vec<(u64, u64)> = (1..=8).map(|a| (a, poly.eval(&field, a))).collect();
//! // Degree resolution recovers the degree — and hence the bid — from shares.
//! assert_eq!(lagrange::resolve_zero_degree(&field, &shares), Some(5));
//! # Ok::<(), dmw_modmath::ModMathError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The arithmetic core must not panic or silently truncate: every residue
// operation returns through typed errors, and the workspace-level `warn`
// on these lints escalates to a hard failure here (tests are exempted at
// each `mod tests`). The dmw-lint pass enforces the complementary
// token-level rules; see docs/static_analysis.md.
#![deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]

pub mod arith;
pub mod error;
pub mod field;
pub mod group;
pub mod lagrange;
pub mod multiexp;
pub mod ops;
pub mod poly;
pub mod prime;

pub use error::ModMathError;
pub use field::PrimeField;
pub use group::SchnorrGroup;
pub use ops::{reset_ops, take_ops, OpsSnapshot};
pub use poly::Poly;
