//! Primitive modular operations on `u64` operands.
//!
//! All functions assume an odd modulus `m > 1` and operands already reduced
//! into `[0, m)`; the [`crate::field::PrimeField`] wrapper enforces those
//! preconditions and should be preferred in protocol code. Intermediates use
//! `u128`, so any modulus up to 63 bits is safe.
//!
//! Every multiplication and inversion is recorded in the thread-local
//! [`crate::ops`] counters; this instrumentation is how the reproduction
//! measures the computational-cost row of the paper's Table 1.

use crate::ops;

/// Adds `a` and `b` modulo `m`.
///
/// # Example
/// ```
/// assert_eq!(dmw_modmath::arith::add_mod(5, 6, 7), 4);
/// ```
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    ops::record_add();
    let s = a as u128 + b as u128;
    let m128 = m as u128;
    // In range: the conditional subtraction leaves a value `< m <= u64::MAX`.
    #[allow(clippy::cast_possible_truncation)]
    {
        (if s >= m128 { s - m128 } else { s }) as u64
    }
}

/// Subtracts `b` from `a` modulo `m`.
///
/// # Example
/// ```
/// assert_eq!(dmw_modmath::arith::sub_mod(2, 5, 7), 4);
/// ```
#[inline]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    ops::record_add();
    if a >= b {
        a - b
    } else {
        m - (b - a)
    }
}

/// Multiplies `a` and `b` modulo `m` using a `u128` intermediate.
///
/// # Example
/// ```
/// assert_eq!(dmw_modmath::arith::mul_mod(3, 5, 7), 1);
/// ```
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    ops::record_mul();
    // In range: the residue of `% m` is `< m <= u64::MAX`.
    #[allow(clippy::cast_possible_truncation)]
    {
        ((a as u128 * b as u128) % m as u128) as u64
    }
}

/// Raises `base` to `exp` modulo `m` by right-to-left binary decomposition
/// (Knuth vol. 2, the algorithm the paper cites for its cost analysis).
///
/// The `Θ(log exp)` squarings and multiplications performed internally are
/// individually recorded in the operation counters, so the `log p` factor of
/// the paper's `O(mn² log p)` bound shows up in measurements.
///
/// # Example
/// ```
/// assert_eq!(dmw_modmath::arith::pow_mod(2, 10, 1000), 24);
/// ```
pub fn pow_mod(base: u64, mut exp: u64, m: u64) -> u64 {
    debug_assert!(base < m);
    ops::record_pow();
    if m == 1 {
        return 0;
    }
    let mut result: u64 = 1;
    let mut acc = base;
    while exp > 0 {
        if exp & 1 == 1 {
            result = mul_mod(result, acc, m);
        }
        exp >>= 1;
        if exp > 0 {
            acc = mul_mod(acc, acc, m);
        }
    }
    result
}

/// Computes the greatest common divisor of `a` and `b`.
///
/// # Example
/// ```
/// assert_eq!(dmw_modmath::arith::gcd(12, 18), 6);
/// ```
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Computes the multiplicative inverse of `a` modulo `m` via the extended
/// Euclidean algorithm, or `None` when `gcd(a, m) ≠ 1`.
///
/// The paper's cost model treats an inversion as one multiplication
/// (Section 2.4); the counters record it under a dedicated `inv` column so
/// either convention can be applied when post-processing measurements.
///
/// # Example
/// ```
/// assert_eq!(dmw_modmath::arith::inv_mod(3, 7), Some(5));
/// assert_eq!(dmw_modmath::arith::inv_mod(0, 7), None);
/// ```
pub fn inv_mod(a: u64, m: u64) -> Option<u64> {
    debug_assert!(a < m);
    if a == 0 {
        return None;
    }
    ops::record_inv();
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let quotient = old_r / r;
        let tmp_r = old_r - quotient * r;
        old_r = r;
        r = tmp_r;
        let tmp_s = old_s - quotient * s;
        old_s = s;
        s = tmp_s;
    }
    if old_r != 1 {
        return None;
    }
    let m128 = m as i128;
    let inv = ((old_s % m128) + m128) % m128;
    // In range: `inv` lies in `[0, m)` and `m` fits in u64.
    #[allow(clippy::cast_possible_truncation)]
    Some(inv as u64)
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const P: u64 = 0x7FFF_FFFF_FFFF_FFE7; // largest 63-bit prime

    #[test]
    fn add_wraps_at_modulus() {
        assert_eq!(add_mod(P - 1, P - 1, P), P - 2);
        assert_eq!(add_mod(0, 0, P), 0);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(sub_mod(0, 1, 7), 6);
        assert_eq!(sub_mod(3, 3, 7), 0);
    }

    #[test]
    fn mul_handles_large_operands() {
        // (p-1)^2 mod p == 1
        assert_eq!(mul_mod(P - 1, P - 1, P), 1);
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(0, 5, 7), 0);
        assert_eq!(pow_mod(0, 0, 7), 1, "0^0 == 1 by convention");
        assert_eq!(pow_mod(3, 1, 7), 3);
        assert_eq!(pow_mod(2, 62, P), 1 << 62);
    }

    #[test]
    fn pow_matches_fermat() {
        // a^(p-1) == 1 (mod p) for prime p, a != 0.
        for a in [2u64, 3, 12345, P - 2] {
            assert_eq!(pow_mod(a, P - 1, P), 1);
        }
    }

    #[test]
    fn inv_of_zero_is_none() {
        assert_eq!(inv_mod(0, 7), None);
    }

    #[test]
    fn inv_requires_coprimality() {
        assert_eq!(inv_mod(6, 9), None);
        assert_eq!(inv_mod(3, 9), None);
        assert_eq!(inv_mod(2, 9), Some(5));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(P, P), P);
    }

    proptest! {
        #[test]
        fn mul_commutes(a in 0..P, b in 0..P) {
            prop_assert_eq!(mul_mod(a, b, P), mul_mod(b, a, P));
        }

        #[test]
        fn mul_associates(a in 0..P, b in 0..P, c in 0..P) {
            prop_assert_eq!(
                mul_mod(mul_mod(a, b, P), c, P),
                mul_mod(a, mul_mod(b, c, P), P)
            );
        }

        #[test]
        fn add_mul_distribute(a in 0..P, b in 0..P, c in 0..P) {
            prop_assert_eq!(
                mul_mod(a, add_mod(b, c, P), P),
                add_mod(mul_mod(a, b, P), mul_mod(a, c, P), P)
            );
        }

        #[test]
        fn inverse_round_trips(a in 1..P) {
            let inv = inv_mod(a, P).expect("nonzero element of prime field");
            prop_assert_eq!(mul_mod(a, inv, P), 1);
        }

        #[test]
        fn pow_adds_exponents(a in 1..P, e1 in 0u64..1000, e2 in 0u64..1000) {
            prop_assert_eq!(
                mul_mod(pow_mod(a, e1, P), pow_mod(a, e2, P), P),
                pow_mod(a, e1 + e2, P)
            );
        }

        #[test]
        fn sub_inverts_add(a in 0..P, b in 0..P) {
            prop_assert_eq!(sub_mod(add_mod(a, b, P), b, P), a);
        }
    }
}
