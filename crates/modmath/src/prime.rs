//! Primality testing and prime generation.
//!
//! DMW's setup phase publishes "large primes `p`, `q` such that `q | p − 1`"
//! (Section 3, Notation). This module supplies a deterministic Miller–Rabin
//! test — exact for every `u64` thanks to a known-sufficient witness set —
//! and random prime generation used by [`crate::group`] to build those
//! parameters.

use rand::Rng;

/// Witness set proven sufficient for deterministic Miller–Rabin on all
/// integers below 3.3 · 10^24 (Sorenson & Webster), which covers `u64`.
const WITNESSES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Multiplication that bypasses the [`crate::ops`] counters: primality
/// testing is *setup* work, not protocol work, and must not pollute the
/// Table 1 computation measurements.
#[inline]
fn mul_raw(a: u64, b: u64, m: u64) -> u64 {
    // In range: the residue of `% m` is `< m <= u64::MAX`.
    #[allow(clippy::cast_possible_truncation)]
    {
        ((a as u128 * b as u128) % m as u128) as u64
    }
}

/// Exponentiation that bypasses the [`crate::ops`] counters.
fn pow_raw(base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut result: u64 = 1;
    let mut acc = base % m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = mul_raw(result, acc, m);
        }
        exp >>= 1;
        if exp > 0 {
            acc = mul_raw(acc, acc, m);
        }
    }
    result
}

/// Returns `true` iff `n` is prime. Deterministic for all `u64` inputs.
///
/// # Example
/// ```
/// use dmw_modmath::prime::is_prime;
/// assert!(is_prime(1031));
/// assert!(!is_prime(1033 * 1031));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n − 1 = d · 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for &a in &WITNESSES {
        let mut x = pow_raw(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_raw(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Returns the smallest prime strictly greater than `n`, or `None` if it
/// would not fit in a `u64`.
///
/// # Example
/// ```
/// use dmw_modmath::prime::next_prime;
/// assert_eq!(next_prime(1024), Some(1031));
/// ```
pub fn next_prime(n: u64) -> Option<u64> {
    let mut candidate = n.checked_add(1)?;
    if candidate <= 2 {
        return Some(2);
    }
    if candidate % 2 == 0 {
        candidate += 1;
    }
    loop {
        if is_prime(candidate) {
            return Some(candidate);
        }
        candidate = candidate.checked_add(2)?;
    }
}

/// Samples a uniformly random prime with exactly `bits` bits
/// (`2 ≤ bits ≤ 63`).
///
/// # Panics
///
/// Panics if `bits` is outside `[2, 63]`.
///
/// # Example
/// ```
/// use dmw_modmath::prime::{is_prime, random_prime};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = random_prime(20, &mut rng);
/// assert!(is_prime(p));
/// assert_eq!(64 - p.leading_zeros(), 20);
/// ```
pub fn random_prime<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> u64 {
    assert!(
        (2..=63).contains(&bits),
        "prime bit size must be in [2, 63]"
    );
    if bits == 2 {
        return if rng.gen_bool(0.5) { 2 } else { 3 };
    }
    let low = 1u64 << (bits - 1);
    let high = (1u64 << bits) - 1;
    loop {
        // Force the top and bottom bits so the candidate is odd and has the
        // requested size.
        let candidate = rng.gen_range(low..=high) | low | 1;
        if is_prime(candidate) {
            return candidate;
        }
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 1031];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 25, 91, 1024, 561, 41041];
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Known strong pseudoprimes to small bases.
        for n in [2047u64, 3215031751, 3825123056546413051] {
            assert!(!is_prime(n), "{n} is a pseudoprime, not a prime");
        }
    }

    #[test]
    fn large_known_primes_accepted() {
        assert!(is_prime(0x7FFF_FFFF_FFFF_FFE7)); // 2^63 - 25
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
    }

    #[test]
    fn next_prime_walks_forward() {
        assert_eq!(next_prime(0), Some(2));
        assert_eq!(next_prime(2), Some(3));
        assert_eq!(next_prime(13), Some(17));
        assert_eq!(next_prime(u64::MAX), None);
        assert_eq!(
            next_prime(18_446_744_073_709_551_556),
            Some(18_446_744_073_709_551_557)
        );
    }

    #[test]
    fn random_prime_has_requested_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for bits in [2u32, 3, 8, 16, 31, 32, 48, 63] {
            let p = random_prime(bits, &mut rng);
            assert!(is_prime(p));
            assert_eq!(64 - p.leading_zeros(), bits, "p = {p}");
        }
    }

    #[test]
    #[should_panic(expected = "bit size")]
    fn random_prime_rejects_64_bits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = random_prime(64, &mut rng);
    }

    fn naive_is_prime(n: u64) -> bool {
        if n < 2 {
            return false;
        }
        let mut d = 2;
        while d * d <= n {
            if n.is_multiple_of(d) {
                return false;
            }
            d += 1;
        }
        true
    }

    proptest! {
        #[test]
        fn matches_trial_division(n in 0u64..200_000) {
            prop_assert_eq!(is_prime(n), naive_is_prime(n));
        }

        #[test]
        fn next_prime_is_prime_and_minimal(n in 0u64..100_000) {
            let p = next_prime(n).unwrap();
            prop_assert!(naive_is_prime(p));
            for between in (n + 1)..p {
                prop_assert!(!naive_is_prime(between));
            }
        }
    }
}
