//! Error types for the modular-arithmetic substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the `dmw-modmath` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModMathError {
    /// The supplied modulus is not an odd prime greater than 2.
    NotPrime {
        /// The rejected modulus.
        modulus: u64,
    },
    /// A value was not a member of the expected field/group range.
    OutOfRange {
        /// The rejected value.
        value: u64,
        /// The modulus defining the valid range `[0, modulus)`.
        modulus: u64,
    },
    /// Attempted to invert an element with no inverse (zero or a value
    /// sharing a factor with the modulus).
    NotInvertible {
        /// The non-invertible value.
        value: u64,
        /// The modulus.
        modulus: u64,
    },
    /// Interpolation points were not pairwise distinct.
    DuplicatePoint {
        /// The duplicated abscissa.
        point: u64,
    },
    /// Interpolation was requested with no points at all.
    EmptyInterpolation,
    /// Group parameter generation exhausted its attempt budget.
    GroupGenerationFailed {
        /// The requested bit size of the group modulus `p`.
        p_bits: u32,
        /// The requested bit size of the subgroup order `q`.
        q_bits: u32,
    },
    /// The requested bit sizes cannot produce a Schnorr group (`q` must be
    /// meaningfully smaller than `p`).
    InvalidGroupSize {
        /// The requested bit size of `p`.
        p_bits: u32,
        /// The requested bit size of `q`.
        q_bits: u32,
    },
}

impl fmt::Display for ModMathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModMathError::NotPrime { modulus } => {
                write!(f, "modulus {modulus} is not an odd prime")
            }
            ModMathError::OutOfRange { value, modulus } => {
                write!(f, "value {value} is outside the range [0, {modulus})")
            }
            ModMathError::NotInvertible { value, modulus } => {
                write!(f, "value {value} has no inverse modulo {modulus}")
            }
            ModMathError::DuplicatePoint { point } => {
                write!(f, "interpolation point {point} appears more than once")
            }
            ModMathError::EmptyInterpolation => {
                write!(f, "interpolation requires at least one point")
            }
            ModMathError::GroupGenerationFailed { p_bits, q_bits } => {
                write!(
                    f,
                    "failed to generate a Schnorr group with |p| = {p_bits} bits, |q| = {q_bits} bits"
                )
            }
            ModMathError::InvalidGroupSize { p_bits, q_bits } => {
                write!(
                    f,
                    "invalid Schnorr group sizes: |p| = {p_bits} bits must exceed |q| = {q_bits} bits by at least 2, with |p| <= 63"
                )
            }
        }
    }
}

impl Error for ModMathError {}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = ModMathError::NotPrime { modulus: 10 };
        let msg = err.to_string();
        assert!(msg.starts_with("modulus 10"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<ModMathError>();
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", ModMathError::EmptyInterpolation).is_empty());
    }
}
