//! Lagrange interpolation at zero and polynomial degree resolution
//! (Section 2.4 of the paper).
//!
//! Given shares `(α_k, f(α_k))` of a polynomial `f` with **zero constant
//! term**, the degree of `f` is recovered by finding the smallest number of
//! shares `s` whose Lagrange interpolation at zero evaluates to `f(0) = 0`:
//! with `s` points the interpolant at 0 equals `f(0)` exactly when
//! `deg f ≤ s − 1`, and differs except with probability `1/q` otherwise
//! (the "mistaken success" probability the paper quotes). The resolved
//! degree is `s − 1`.
//!
//! > **Note on the paper's convention.** Definition 11 states that `s = d`
//! > points always satisfy `f^(d)(0) = f(0)` for a degree-`d` polynomial.
//! > Standard interpolation requires `d + 1` points; this module implements
//! > the consistent `d + 1` convention throughout (see DESIGN.md,
//! > "Deliberate clarifications"). The `false-positive` experiment measures
//! > the `≈ 1/q` accidental-success probability.
//!
//! Two evaluation strategies are provided and tested equal:
//! * [`interpolate_at_zero`] — the textbook basis-polynomial formula of
//!   Definition 11 / equation (2);
//! * [`interpolate_at_zero_steps`] — the paper's three-step `Θ(s²)`
//!   algorithm (`ψ_k`, `φ(0)`, `Σ ψ_k / α_k`) from \[14\].
//!
//! The *distributed* variant used by DMW operates in the exponent: each
//! agent publishes `Λ_k = z1^{E(α_k)}` and anyone checks
//! `Π Λ_k^{ρ_k} = 1` (equation (12)). [`zero_coefficients`] computes the
//! `ρ_k` for that check.

use crate::error::ModMathError;
use crate::field::PrimeField;

/// Computes the Lagrange basis coefficients at zero,
/// `ρ_k = Π_{i≠k} α_i / (α_i − α_k)`, for the given pairwise-distinct
/// non-zero points.
///
/// These are the exponents applied to the published `Λ_k` values in
/// equation (12) of the paper (reduced mod `q`, the generator order).
///
/// # Errors
///
/// * [`ModMathError::EmptyInterpolation`] if `points` is empty.
/// * [`ModMathError::DuplicatePoint`] if two points coincide.
/// * [`ModMathError::OutOfRange`] if a point is zero or not reduced.
pub fn zero_coefficients(field: &PrimeField, points: &[u64]) -> Result<Vec<u64>, ModMathError> {
    if points.is_empty() {
        return Err(ModMathError::EmptyInterpolation);
    }
    for (i, &a) in points.iter().enumerate() {
        if a == 0 || !field.contains(a) {
            return Err(ModMathError::OutOfRange {
                value: a,
                modulus: field.modulus(),
            });
        }
        if points.get(i + 1..).is_some_and(|tail| tail.contains(&a)) {
            return Err(ModMathError::DuplicatePoint { point: a });
        }
    }
    let mut coeffs = Vec::with_capacity(points.len());
    for (k, &ak) in points.iter().enumerate() {
        let mut num = 1u64;
        let mut den = 1u64;
        for (i, &ai) in points.iter().enumerate() {
            if i == k {
                continue;
            }
            num = field.mul(num, ai);
            den = field.mul(den, field.sub(ai, ak));
        }
        // `den` is a product of differences of distinct points, hence
        // nonzero, so `div` cannot fail; propagate rather than panic anyway.
        coeffs.push(field.div(num, den)?);
    }
    Ok(coeffs)
}

/// Interpolates `f(0)` from shares `(α_k, f(α_k))` using the basis-polynomial
/// formula of Definition 11. The result equals the true `f(0)` iff
/// `deg f ≤ s − 1` where `s = shares.len()` (up to the `1/q` accident).
///
/// # Errors
///
/// Propagates the validation errors of [`zero_coefficients`].
///
/// # Example
/// ```
/// use dmw_modmath::{PrimeField, Poly, lagrange};
///
/// let f = PrimeField::new(101)?;
/// let p = Poly::from_coeffs(&f, vec![42, 1, 1]); // degree 2
/// let shares: Vec<(u64, u64)> = (1..=3).map(|a| (a, p.eval(&f, a))).collect();
/// assert_eq!(lagrange::interpolate_at_zero(&f, &shares)?, 42);
/// # Ok::<(), dmw_modmath::ModMathError>(())
/// ```
pub fn interpolate_at_zero(field: &PrimeField, shares: &[(u64, u64)]) -> Result<u64, ModMathError> {
    let points: Vec<u64> = shares.iter().map(|&(a, _)| a).collect();
    let coeffs = zero_coefficients(field, &points)?;
    let mut acc = 0u64;
    for (&(_, v), &rho) in shares.iter().zip(&coeffs) {
        acc = field.add(acc, field.mul(v, rho));
    }
    Ok(acc)
}

/// The paper's three-step `Θ(s²)` algorithm for `f^(s)(0)` (Section 2.4,
/// citing \[14\]):
///
/// 1. `ψ_k = f(α_k) / Π_{i≠k}(α_i − α_k)`
/// 2. `φ(0) = Π_k α_k`
/// 3. `f^(s)(0) = φ(0) · Σ_k ψ_k / α_k`
///
/// Produces exactly the same value as [`interpolate_at_zero`]; kept separate
/// (and tested equal) because the paper's complexity analysis refers to this
/// formulation.
///
/// # Errors
///
/// Same conditions as [`interpolate_at_zero`].
pub fn interpolate_at_zero_steps(
    field: &PrimeField,
    shares: &[(u64, u64)],
) -> Result<u64, ModMathError> {
    if shares.is_empty() {
        return Err(ModMathError::EmptyInterpolation);
    }
    let points: Vec<u64> = shares.iter().map(|&(a, _)| a).collect();
    for (i, &a) in points.iter().enumerate() {
        if a == 0 || !field.contains(a) {
            return Err(ModMathError::OutOfRange {
                value: a,
                modulus: field.modulus(),
            });
        }
        if points.get(i + 1..).is_some_and(|tail| tail.contains(&a)) {
            return Err(ModMathError::DuplicatePoint { point: a });
        }
    }
    // Step 1: psi_k.
    let mut psi = Vec::with_capacity(shares.len());
    for (k, &(ak, vk)) in shares.iter().enumerate() {
        let mut den = 1u64;
        for (i, &ai) in points.iter().enumerate() {
            if i == k {
                continue;
            }
            den = field.mul(den, field.sub(ai, ak));
        }
        // Distinct validated points make `den` nonzero.
        psi.push(field.div(vk, den)?);
    }
    // Step 2: phi(0) = prod alpha_k.
    let mut phi = 1u64;
    for &a in &points {
        phi = field.mul(phi, a);
    }
    // Step 3: phi(0) * sum psi_k / alpha_k.
    let mut sum = 0u64;
    for (&(ak, _), &pk) in shares.iter().zip(&psi) {
        // Points were validated nonzero above.
        sum = field.add(sum, field.div(pk, ak)?);
    }
    Ok(field.mul(phi, sum))
}

/// Resolves the degree of a zero-constant-term polynomial from its shares:
/// returns the smallest `s − 1` such that the `s`-share interpolation at
/// zero vanishes, scanning `s = 1, 2, …`. Returns `None` if no prefix of the
/// shares resolves (i.e. `deg f ≥ shares.len()`, or the shares are
/// inconsistent).
///
/// For an honest degree-`d` polynomial this returns `Some(d)` whenever at
/// least `d + 1` shares are supplied, except for an `O(s/q)` chance of
/// resolving early (measured by the `false-positive` experiment).
///
/// # Errors
///
/// Propagates validation errors (duplicate or zero points).
///
/// # Example
/// ```
/// use dmw_modmath::{PrimeField, Poly, lagrange};
/// use rand::SeedableRng;
///
/// let f = PrimeField::new(1031)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let p = Poly::random_zero_constant(&f, 4, &mut rng);
/// let shares: Vec<(u64, u64)> = (1..=6).map(|a| (a, p.eval(&f, a))).collect();
/// assert_eq!(lagrange::resolve_zero_degree(&f, &shares), Some(4));
/// // Too few shares: cannot resolve.
/// assert_eq!(lagrange::resolve_zero_degree(&f, &shares[..4]), None);
/// # Ok::<(), dmw_modmath::ModMathError>(())
/// ```
pub fn resolve_zero_degree(field: &PrimeField, shares: &[(u64, u64)]) -> Option<usize> {
    for s in 1..=shares.len() {
        let prefix = shares.get(..s)?;
        match interpolate_at_zero(field, prefix) {
            Ok(0) => return Some(s - 1),
            Ok(_) => continue,
            Err(_) => return None,
        }
    }
    None
}

/// Like [`resolve_zero_degree`], but only tests the candidate degrees in
/// `candidates` (ascending): the protocol restricts bids to the discrete set
/// `W`, so only degrees `σ − w, w ∈ W` can occur (equation (12) scans
/// exactly that set).
pub fn resolve_zero_degree_among(
    field: &PrimeField,
    shares: &[(u64, u64)],
    candidates: &[usize],
) -> Option<usize> {
    for &d in candidates {
        let s = d + 1;
        let prefix = shares.get(..s)?;
        if let Ok(0) = interpolate_at_zero(field, prefix) {
            return Some(d);
        }
    }
    None
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::poly::Poly;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn field() -> PrimeField {
        PrimeField::new(1031).unwrap()
    }

    fn shares_of(p: &Poly, f: &PrimeField, n: u64) -> Vec<(u64, u64)> {
        (1..=n).map(|a| (a, p.eval(f, a))).collect()
    }

    #[test]
    fn zero_coefficients_sum_property() {
        // Interpolating the constant polynomial 1 at zero gives 1, so the
        // rho_k must sum to 1.
        let f = field();
        let coeffs = zero_coefficients(&f, &[3, 7, 11, 19]).unwrap();
        let sum = coeffs.iter().fold(0, |acc, &c| f.add(acc, c));
        assert_eq!(sum, 1);
    }

    #[test]
    fn zero_coefficients_validation() {
        let f = field();
        assert_eq!(
            zero_coefficients(&f, &[]),
            Err(ModMathError::EmptyInterpolation)
        );
        assert_eq!(
            zero_coefficients(&f, &[1, 2, 1]),
            Err(ModMathError::DuplicatePoint { point: 1 })
        );
        assert!(matches!(
            zero_coefficients(&f, &[0, 2]),
            Err(ModMathError::OutOfRange { .. })
        ));
        assert!(matches!(
            zero_coefficients(&f, &[1, 2000]),
            Err(ModMathError::OutOfRange { .. })
        ));
    }

    #[test]
    fn interpolation_recovers_constant_term() {
        let f = field();
        let p = Poly::from_coeffs(&f, vec![77, 3, 0, 9]); // degree 3
        let shares = shares_of(&p, &f, 4);
        assert_eq!(interpolate_at_zero(&f, &shares).unwrap(), 77);
        // Extra shares do not change the value.
        let shares = shares_of(&p, &f, 9);
        assert_eq!(interpolate_at_zero(&f, &shares).unwrap(), 77);
    }

    #[test]
    fn too_few_points_miss_constant_term() {
        // With s <= deg f the interpolant at zero differs from f(0) (w.h.p.).
        let f = field();
        let p = Poly::from_coeffs(&f, vec![77, 3, 0, 9]);
        let shares = shares_of(&p, &f, 3);
        assert_ne!(interpolate_at_zero(&f, &shares).unwrap(), 77);
    }

    #[test]
    fn steps_algorithm_matches_textbook_formula() {
        let f = field();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for d in 1..=8 {
            let p = Poly::random_zero_constant(&f, d, &mut rng);
            for s in 1..=10u64 {
                let shares = shares_of(&p, &f, s);
                assert_eq!(
                    interpolate_at_zero(&f, &shares).unwrap(),
                    interpolate_at_zero_steps(&f, &shares).unwrap(),
                    "d={d} s={s}"
                );
            }
        }
    }

    #[test]
    fn resolve_finds_exact_degree() {
        let f = field();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for d in 1..=12 {
            let p = Poly::random_zero_constant(&f, d, &mut rng);
            let shares = shares_of(&p, &f, 16);
            assert_eq!(resolve_zero_degree(&f, &shares), Some(d), "degree {d}");
        }
    }

    #[test]
    fn resolve_zero_polynomial_is_degree_zero() {
        let f = field();
        let shares: Vec<(u64, u64)> = (1..=4).map(|a| (a, 0)).collect();
        assert_eq!(resolve_zero_degree(&f, &shares), Some(0));
    }

    #[test]
    fn resolve_needs_degree_plus_one_shares() {
        let f = field();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let p = Poly::random_zero_constant(&f, 6, &mut rng);
        assert_eq!(resolve_zero_degree(&f, &shares_of(&p, &f, 6)), None);
        assert_eq!(resolve_zero_degree(&f, &shares_of(&p, &f, 7)), Some(6));
    }

    #[test]
    fn resolve_among_candidates_skips_impossible_degrees() {
        let f = field();
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let p = Poly::random_zero_constant(&f, 5, &mut rng);
        let shares = shares_of(&p, &f, 10);
        // Candidate set {3, 5, 7} (degrees sigma - w for w in W).
        assert_eq!(resolve_zero_degree_among(&f, &shares, &[3, 5, 7]), Some(5));
        // Candidate set without the true degree fails cleanly... w.h.p. the
        // wrong candidates do not accidentally resolve.
        assert_eq!(resolve_zero_degree_among(&f, &shares, &[3, 4]), None);
        // Not enough shares for any candidate.
        assert_eq!(resolve_zero_degree_among(&f, &shares[..3], &[5]), None);
    }

    #[test]
    fn resolve_on_inconsistent_duplicate_points_is_none() {
        let f = field();
        let shares = vec![(1u64, 5u64), (1, 6)];
        assert_eq!(resolve_zero_degree(&f, &shares), None);
    }

    proptest! {
        #[test]
        fn random_polynomials_resolve(
            d in 1usize..10,
            seed in 0u64..5000,
        ) {
            let f = field();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let p = Poly::random_zero_constant(&f, d, &mut rng);
            let shares: Vec<(u64, u64)> = (1..=(d as u64 + 3)).map(|a| (a, p.eval(&f, a))).collect();
            // resolve may (rarely, ~s/q) resolve early; never late.
            let resolved = resolve_zero_degree(&f, &shares);
            prop_assert!(resolved.is_some());
            prop_assert!(resolved.unwrap() <= d);
        }

        #[test]
        fn interpolation_is_linear(
            seed in 0u64..5000,
            d1 in 1usize..6,
            d2 in 1usize..6,
        ) {
            // interp(f + g) = interp(f) + interp(g) at fixed points — the
            // property that lets DMW interpolate the *sum* polynomial E from
            // published per-agent values.
            let f = field();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let p1 = Poly::random_zero_constant(&f, d1, &mut rng);
            let p2 = Poly::random_zero_constant(&f, d2, &mut rng);
            let points: Vec<u64> = (1..=8).collect();
            let s1: Vec<(u64, u64)> = points.iter().map(|&a| (a, p1.eval(&f, a))).collect();
            let s2: Vec<(u64, u64)> = points.iter().map(|&a| (a, p2.eval(&f, a))).collect();
            let ssum: Vec<(u64, u64)> = points
                .iter()
                .map(|&a| (a, f.add(p1.eval(&f, a), p2.eval(&f, a))))
                .collect();
            let lhs = interpolate_at_zero(&f, &ssum).unwrap();
            let rhs = f.add(
                interpolate_at_zero(&f, &s1).unwrap(),
                interpolate_at_zero(&f, &s2).unwrap(),
            );
            prop_assert_eq!(lhs, rhs);
        }
    }
}
