//! [`PrimeField`]: a runtime-modulus prime field `Z_p`.
//!
//! Protocol code manipulates two fields: `Z_q` (exponents, polynomial
//! coefficients, shares) and the order-`q` subgroup of `Z_p*` (commitments
//! and published values). `PrimeField` gives both a validated, ergonomic
//! surface over [`crate::arith`]. Elements are plain `u64` values already
//! reduced into `[0, p)`; the newtype lives at the field level rather than
//! the element level so that values can flow through messages and
//! serialization without carrying the modulus along.

use crate::arith;
use crate::error::ModMathError;
use crate::prime::is_prime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A prime field `Z_p` with a runtime modulus.
///
/// # Example
/// ```
/// use dmw_modmath::PrimeField;
///
/// let f = PrimeField::new(7)?;
/// assert_eq!(f.mul(3, 5), 1);
/// assert_eq!(f.inv(3)?, 5);
/// # Ok::<(), dmw_modmath::ModMathError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrimeField {
    modulus: u64,
}

impl PrimeField {
    /// Creates the field `Z_p`.
    ///
    /// # Errors
    ///
    /// Returns [`ModMathError::NotPrime`] if `p` is not an odd prime
    /// (`p = 2` is rejected because the protocol needs odd characteristic).
    pub fn new(p: u64) -> Result<Self, ModMathError> {
        if p < 3 || !is_prime(p) {
            return Err(ModMathError::NotPrime { modulus: p });
        }
        Ok(PrimeField { modulus: p })
    }

    /// Rebuilds a field whose modulus was already validated by [`Self::new`]
    /// (e.g. cached moduli inside [`crate::SchnorrGroup`]). Skips the
    /// primality re-check so reconstruction is infallible.
    pub(crate) fn from_validated_modulus(p: u64) -> Self {
        debug_assert!(p >= 3 && is_prime(p));
        PrimeField { modulus: p }
    }

    /// The field modulus `p`.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Number of bits in the modulus (the `log p` of the paper's Table 1).
    pub fn bits(&self) -> u32 {
        64 - self.modulus.leading_zeros()
    }

    /// Returns `true` iff `v` is a canonical field element (`v < p`).
    pub fn contains(&self, v: u64) -> bool {
        v < self.modulus
    }

    /// Reduces an arbitrary `u64` into the field.
    pub fn reduce(&self, v: u64) -> u64 {
        v % self.modulus
    }

    /// Reduces a signed value into the field (useful for small negative
    /// constants appearing in Lagrange coefficients).
    pub fn reduce_i128(&self, v: i128) -> u64 {
        let m = self.modulus as i128;
        // In range: `((v % m) + m) % m` lies in `[0, m)` and `m` fits in u64.
        #[allow(clippy::cast_possible_truncation)]
        {
            (((v % m) + m) % m) as u64
        }
    }

    /// Adds two field elements.
    ///
    /// # Panics
    /// Debug-panics if an operand is not reduced.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        arith::add_mod(a, b, self.modulus)
    }

    /// Subtracts `b` from `a`.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        arith::sub_mod(a, b, self.modulus)
    }

    /// Negates a field element.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        if a == 0 {
            0
        } else {
            self.modulus - a
        }
    }

    /// Multiplies two field elements.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        arith::mul_mod(a, b, self.modulus)
    }

    /// Raises `base` to `exp`.
    #[inline]
    pub fn pow(&self, base: u64, exp: u64) -> u64 {
        arith::pow_mod(base, exp, self.modulus)
    }

    /// Computes the multiplicative inverse of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`ModMathError::NotInvertible`] when `a == 0`.
    pub fn inv(&self, a: u64) -> Result<u64, ModMathError> {
        arith::inv_mod(a, self.modulus).ok_or(ModMathError::NotInvertible {
            value: a,
            modulus: self.modulus,
        })
    }

    /// Divides `a` by `b` (multiplication by the inverse).
    ///
    /// # Errors
    ///
    /// Returns [`ModMathError::NotInvertible`] when `b == 0`.
    pub fn div(&self, a: u64, b: u64) -> Result<u64, ModMathError> {
        Ok(self.mul(a, self.inv(b)?))
    }

    /// Samples a uniform field element.
    pub fn rand_element<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.modulus)
    }

    /// Samples a uniform *non-zero* field element, as required for the random
    /// polynomial coefficients of the paper's Section 2.4 ("assuming random
    /// picking of the polynomial coefficients from `Z_p*`").
    pub fn rand_nonzero<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(1..self.modulus)
    }

    /// Samples `count` pairwise-distinct non-zero elements — the pseudonym
    /// set `A = {α_1, …, α_n}` of the protocol's initialization phase.
    ///
    /// # Panics
    ///
    /// Panics if `count >= p` (not enough distinct non-zero elements).
    pub fn rand_distinct_nonzero<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<u64> {
        assert!(
            (count as u128) < self.modulus as u128,
            "cannot draw {count} distinct non-zero elements from Z_{}",
            self.modulus
        );
        let mut out = Vec::with_capacity(count);
        let mut seen = std::collections::HashSet::with_capacity(count);
        while out.len() < count {
            let v = self.rand_nonzero(rng);
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_composite_and_even_moduli() {
        assert!(PrimeField::new(0).is_err());
        assert!(PrimeField::new(1).is_err());
        assert!(
            PrimeField::new(2).is_err(),
            "characteristic two is rejected"
        );
        assert!(PrimeField::new(9).is_err());
        assert!(PrimeField::new(7).is_ok());
    }

    #[test]
    fn bits_counts_modulus_size() {
        assert_eq!(PrimeField::new(7).unwrap().bits(), 3);
        assert_eq!(PrimeField::new(1031).unwrap().bits(), 11);
    }

    #[test]
    fn reduce_i128_handles_negatives() {
        let f = PrimeField::new(7).unwrap();
        assert_eq!(f.reduce_i128(-1), 6);
        assert_eq!(f.reduce_i128(-7), 0);
        assert_eq!(f.reduce_i128(15), 1);
    }

    #[test]
    fn neg_is_additive_inverse() {
        let f = PrimeField::new(1031).unwrap();
        for a in [0u64, 1, 515, 1030] {
            assert_eq!(f.add(a, f.neg(a)), 0);
        }
    }

    #[test]
    fn div_by_zero_errors() {
        let f = PrimeField::new(7).unwrap();
        assert_eq!(
            f.div(3, 0),
            Err(ModMathError::NotInvertible {
                value: 0,
                modulus: 7
            })
        );
    }

    #[test]
    fn distinct_nonzero_draws_are_distinct_and_nonzero() {
        let f = PrimeField::new(1031).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let xs = f.rand_distinct_nonzero(100, &mut rng);
        assert_eq!(xs.len(), 100);
        let set: std::collections::HashSet<_> = xs.iter().copied().collect();
        assert_eq!(set.len(), 100);
        assert!(xs.iter().all(|&x| x != 0 && x < 1031));
    }

    #[test]
    #[should_panic(expected = "distinct non-zero")]
    fn distinct_nonzero_panics_when_field_too_small() {
        let f = PrimeField::new(7).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let _ = f.rand_distinct_nonzero(7, &mut rng);
    }

    proptest! {
        #[test]
        fn div_inverts_mul(a in 0u64..1031, b in 1u64..1031) {
            let f = PrimeField::new(1031).unwrap();
            prop_assert_eq!(f.div(f.mul(a, b), b).unwrap(), a);
        }

        #[test]
        fn fermat_little_theorem(a in 1u64..1031) {
            let f = PrimeField::new(1031).unwrap();
            prop_assert_eq!(f.pow(a, 1030), 1);
        }
    }
}
