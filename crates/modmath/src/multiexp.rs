//! Simultaneous multi-exponentiation (Shamir's trick).
//!
//! The hottest operation in DMW is evaluating a commitment vector "in the
//! exponent": `Π_ℓ v_ℓ^{e_ℓ} (mod p)` with `σ = n` bases — it appears in
//! every instance of equations (7)–(9), (11) and (13). Computing each
//! factor separately costs `≈ 1.5·k·log p` multiplications for `k` bases;
//! interleaving the square-and-multiply ladders shares the squarings
//! across all bases:
//!
//! ```text
//! acc ← 1
//! for bit from MSB to LSB:
//!     acc ← acc²
//!     for every ℓ with bit set in e_ℓ: acc ← acc · v_ℓ
//! ```
//!
//! which costs `log p` squarings plus one multiplication per set bit —
//! `≈ log p · (1 + k/2)`, roughly a 3× saving for large `k`. The
//! `primitives` bench measures the gap; the correctness proptest pins the
//! identity against the naive product.

use crate::field::PrimeField;

/// Computes `Π bases[i]^{exps[i]}` in `field` by interleaved
/// square-and-multiply.
///
/// # Panics
///
/// Panics if the slices differ in length or any base is not a canonical
/// field element.
///
/// # Example
/// ```
/// use dmw_modmath::{multiexp::multi_pow, PrimeField};
///
/// let f = PrimeField::new(101)?;
/// // 2^5 · 3^4 mod 101 == 32 · 81 mod 101
/// assert_eq!(multi_pow(&f, &[2, 3], &[5, 4]), f.mul(f.pow(2, 5), f.pow(3, 4)));
/// # Ok::<(), dmw_modmath::ModMathError>(())
/// ```
pub fn multi_pow(field: &PrimeField, bases: &[u64], exps: &[u64]) -> u64 {
    assert_eq!(bases.len(), exps.len(), "one exponent per base");
    debug_assert!(bases.iter().all(|&b| field.contains(b)));
    let top_bit = match exps.iter().map(|e| 64 - e.leading_zeros()).max() {
        None | Some(0) => return 1,
        Some(b) => b,
    };
    let mut acc = 1u64;
    for bit in (0..top_bit).rev() {
        acc = field.mul(acc, acc);
        for (&base, &exp) in bases.iter().zip(exps) {
            if (exp >> bit) & 1 == 1 {
                acc = field.mul(acc, base);
            }
        }
    }
    acc
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::ops;
    use proptest::prelude::*;
    use rand::SeedableRng;

    const P: u64 = 0x7FFF_FFFF_FFFF_FFE7;

    fn naive(field: &PrimeField, bases: &[u64], exps: &[u64]) -> u64 {
        bases
            .iter()
            .zip(exps)
            .fold(1u64, |acc, (&b, &e)| field.mul(acc, field.pow(b, e)))
    }

    #[test]
    fn empty_product_is_one() {
        let f = PrimeField::new(P).unwrap();
        assert_eq!(multi_pow(&f, &[], &[]), 1);
        assert_eq!(multi_pow(&f, &[5], &[0]), 1);
    }

    #[test]
    fn single_base_matches_pow() {
        let f = PrimeField::new(P).unwrap();
        for (b, e) in [(2u64, 10u64), (12345, 678910), (P - 1, 3)] {
            assert_eq!(multi_pow(&f, &[b], &[e]), f.pow(b, e));
        }
    }

    #[test]
    #[should_panic(expected = "one exponent per base")]
    fn length_mismatch_panics() {
        let f = PrimeField::new(P).unwrap();
        let _ = multi_pow(&f, &[1, 2], &[3]);
    }

    #[test]
    fn saves_multiplications_over_naive() {
        let f = PrimeField::new(P).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let bases: Vec<u64> = (0..16).map(|_| f.rand_nonzero(&mut rng)).collect();
        let exps: Vec<u64> = (0..16).map(|_| f.rand_element(&mut rng)).collect();
        ops::reset_ops();
        let fast = multi_pow(&f, &bases, &exps);
        let fast_muls = ops::take_ops().mul;
        let slow = naive(&f, &bases, &exps);
        let slow_muls = ops::take_ops().mul;
        assert_eq!(fast, slow);
        assert!(
            fast_muls * 2 < slow_muls,
            "expected ≥2x saving, got {fast_muls} vs {slow_muls}"
        );
    }

    proptest! {
        #[test]
        fn matches_naive_product(
            seed in 0u64..10_000,
            k in 1usize..12,
        ) {
            let f = PrimeField::new(P).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let bases: Vec<u64> = (0..k).map(|_| f.rand_nonzero(&mut rng)).collect();
            let exps: Vec<u64> = (0..k).map(|_| f.rand_element(&mut rng)).collect();
            prop_assert_eq!(multi_pow(&f, &bases, &exps), naive(&f, &bases, &exps));
        }

        #[test]
        fn exponent_zero_bases_are_ignored(seed in 0u64..1000) {
            let f = PrimeField::new(P).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let b = f.rand_nonzero(&mut rng);
            let e = f.rand_element(&mut rng);
            prop_assert_eq!(
                multi_pow(&f, &[b, 999], &[e, 0]),
                f.pow(b, e)
            );
        }
    }
}
