//! Dense polynomials over a prime field.
//!
//! DMW encodes an agent's bid in the *degree* of a randomly chosen
//! polynomial with **zero constant term** (Section 3, Phase II): for a bid
//! `y` and parameter `σ`, the agent samples
//!
//! ```text
//! e(x) = a_1·x + … + a_τ·x^τ           with τ = σ − y,
//! f(x) = b_1·x + … + b_{σ−τ}·x^{σ−τ},
//! g(x), h(x)  of degree σ,
//! ```
//!
//! all with uniformly random non-zero leading coefficients. [`Poly`] provides
//! exactly those constructors plus the evaluation (Horner's rule, the
//! algorithm the paper's Theorem 12 costs at `O(n)` multiplications per
//! share) and ring operations the protocol needs — notably the product
//! `e(x)·f(x)` whose coefficients `v_ℓ` are committed in equation (6).

use crate::field::PrimeField;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense polynomial `c_0 + c_1·x + … + c_d·x^d` over a prime field.
///
/// The coefficient vector is kept *normalized*: no trailing zero
/// coefficients (except the zero polynomial, represented by an empty
/// vector).
///
/// # Example
/// ```
/// use dmw_modmath::{Poly, PrimeField};
///
/// let f = PrimeField::new(101)?;
/// let p = Poly::from_coeffs(&f, vec![0, 2, 3]); // 2x + 3x²
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.eval(&f, 10), (2 * 10 + 3 * 100) % 101);
/// # Ok::<(), dmw_modmath::ModMathError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Poly {
    coeffs: Vec<u64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// Builds a polynomial from coefficients `c_0, c_1, …` (lowest degree
    /// first), reducing each into the field and trimming trailing zeros.
    pub fn from_coeffs(field: &PrimeField, coeffs: Vec<u64>) -> Self {
        let mut coeffs: Vec<u64> = coeffs.into_iter().map(|c| field.reduce(c)).collect();
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// Samples a uniformly random polynomial of degree *exactly* `degree`
    /// with zero constant term — the bid-encoding polynomial family of
    /// Phase II. All of `a_1 … a_{d−1}` are uniform in `Z_q` and the leading
    /// coefficient is uniform in `Z_q \ {0}` so the degree is exact.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`; a zero-constant polynomial of degree 0 does
    /// not exist.
    pub fn random_zero_constant<R: Rng + ?Sized>(
        field: &PrimeField,
        degree: usize,
        rng: &mut R,
    ) -> Self {
        assert!(degree >= 1, "a zero-constant polynomial has degree >= 1");
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(0);
        for _ in 1..degree {
            coeffs.push(field.rand_element(rng));
        }
        coeffs.push(field.rand_nonzero(rng));
        Poly { coeffs }
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// The coefficient of `x^i` (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> u64 {
        self.coeffs.get(i).copied().unwrap_or(0)
    }

    /// The coefficients, lowest degree first (normalized).
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// `true` iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// `true` iff the constant term is zero (vacuously true for the zero
    /// polynomial) — the structural invariant the commitment check of
    /// equation (7) enforces on every bid polynomial.
    pub fn has_zero_constant(&self) -> bool {
        self.coeff(0) == 0
    }

    /// Evaluates the polynomial at `x` by Horner's rule (`deg` multiplications
    /// and additions, as costed in the paper's Theorem 12).
    pub fn eval(&self, field: &PrimeField, x: u64) -> u64 {
        let x = field.reduce(x);
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = field.add(field.mul(acc, x), c);
        }
        acc
    }

    /// Adds two polynomials. The degree of a sum of bid polynomials is the
    /// maximum degree except when leading terms cancel (probability `1/q`,
    /// the resolution-failure probability quoted in Section 2.4).
    pub fn add(&self, field: &PrimeField, other: &Poly) -> Poly {
        let len = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..len)
            .map(|i| field.add(self.coeff(i), other.coeff(i)))
            .collect();
        Poly::from_coeffs(field, coeffs)
    }

    /// Multiplies two polynomials (schoolbook; degrees here are `O(n)`).
    ///
    /// This is the `e_i(x)·f_i(x)` product whose coefficients `v_ℓ` feed the
    /// `O` commitments of equation (6); note `v_0 = v_1 = 0` whenever both
    /// factors have zero constant terms, which is exactly what equation (7)
    /// verifies.
    pub fn mul(&self, field: &PrimeField, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![0u64; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                if let Some(slot) = coeffs.get_mut(i + j) {
                    *slot = field.add(*slot, field.mul(a, b));
                }
            }
        }
        Poly::from_coeffs(field, coeffs)
    }

    /// Evaluates the polynomial at many points, producing the share vector
    /// an agent sends out in Phase II.2.
    pub fn eval_many(&self, field: &PrimeField, xs: &[u64]) -> Vec<u64> {
        xs.iter().map(|&x| self.eval(field, x)).collect()
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn field() -> PrimeField {
        PrimeField::new(1031).unwrap()
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn zero_polynomial_properties() {
        let f = field();
        let z = Poly::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert!(z.has_zero_constant());
        assert_eq!(z.eval(&f, 123), 0);
    }

    #[test]
    fn from_coeffs_normalizes() {
        let f = field();
        let p = Poly::from_coeffs(&f, vec![1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs(), &[1, 2]);
        // Coefficients reduce mod q.
        let p = Poly::from_coeffs(&f, vec![1031, 1032]);
        assert_eq!(p.coeffs(), &[0, 1]);
    }

    #[test]
    fn eval_matches_naive() {
        let f = field();
        let p = Poly::from_coeffs(&f, vec![5, 0, 7, 11]); // 5 + 7x² + 11x³
        let x = 29u64;
        let naive = (5 + 7 * x * x + 11 * x * x * x) % 1031;
        assert_eq!(p.eval(&f, x), naive);
    }

    #[test]
    fn random_zero_constant_has_exact_degree_and_zero_constant() {
        let f = field();
        let mut r = rng();
        for d in 1..=20 {
            let p = Poly::random_zero_constant(&f, d, &mut r);
            assert_eq!(p.degree(), Some(d));
            assert!(p.has_zero_constant());
            assert_eq!(p.eval(&f, 0), 0);
        }
    }

    #[test]
    #[should_panic(expected = "degree >= 1")]
    fn random_zero_constant_rejects_degree_zero() {
        let f = field();
        let _ = Poly::random_zero_constant(&f, 0, &mut rng());
    }

    #[test]
    fn sum_of_bid_polynomials_has_max_degree() {
        // The degree-resolution argument: deg(Σ e_k) = max deg e_k w.h.p.
        let f = field();
        let mut r = rng();
        let e1 = Poly::random_zero_constant(&f, 3, &mut r);
        let e2 = Poly::random_zero_constant(&f, 7, &mut r);
        let e3 = Poly::random_zero_constant(&f, 5, &mut r);
        let sum = e1.add(&f, &e2).add(&f, &e3);
        assert_eq!(sum.degree(), Some(7));
        assert!(sum.has_zero_constant());
    }

    #[test]
    fn product_of_zero_constant_polys_has_zero_v0_v1() {
        // e(x)·f(x) = v_2 x² + … + v_σ x^σ, the structure committed in (6).
        let f = field();
        let mut r = rng();
        let e = Poly::random_zero_constant(&f, 4, &mut r);
        let fp = Poly::random_zero_constant(&f, 3, &mut r);
        let prod = e.mul(&f, &fp);
        assert_eq!(prod.degree(), Some(7));
        assert_eq!(prod.coeff(0), 0);
        assert_eq!(prod.coeff(1), 0);
    }

    #[test]
    fn mul_by_zero_is_zero() {
        let f = field();
        let p = Poly::from_coeffs(&f, vec![0, 1, 2]);
        assert!(p.mul(&f, &Poly::zero()).is_zero());
        assert!(Poly::zero().mul(&f, &p).is_zero());
    }

    proptest! {
        #[test]
        fn add_is_pointwise(
            a in proptest::collection::vec(0u64..1031, 0..8),
            b in proptest::collection::vec(0u64..1031, 0..8),
            x in 0u64..1031,
        ) {
            let f = field();
            let pa = Poly::from_coeffs(&f, a);
            let pb = Poly::from_coeffs(&f, b);
            prop_assert_eq!(
                pa.add(&f, &pb).eval(&f, x),
                f.add(pa.eval(&f, x), pb.eval(&f, x))
            );
        }

        #[test]
        fn mul_is_pointwise(
            a in proptest::collection::vec(0u64..1031, 0..8),
            b in proptest::collection::vec(0u64..1031, 0..8),
            x in 0u64..1031,
        ) {
            let f = field();
            let pa = Poly::from_coeffs(&f, a);
            let pb = Poly::from_coeffs(&f, b);
            prop_assert_eq!(
                pa.mul(&f, &pb).eval(&f, x),
                f.mul(pa.eval(&f, x), pb.eval(&f, x))
            );
        }

        #[test]
        fn eval_many_matches_eval(
            a in proptest::collection::vec(0u64..1031, 0..8),
            xs in proptest::collection::vec(0u64..1031, 0..8),
        ) {
            let f = field();
            let p = Poly::from_coeffs(&f, a);
            let many = p.eval_many(&f, &xs);
            for (x, v) in xs.iter().zip(&many) {
                prop_assert_eq!(p.eval(&f, *x), *v);
            }
        }
    }
}
