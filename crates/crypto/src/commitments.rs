//! Pedersen commitment vectors and share verification — Phase II.3 and
//! Phase III.1 of the protocol (equations (6)–(9)).
//!
//! An agent publishes three commitment vectors of length `σ`:
//!
//! * `O_ℓ = z1^{v_ℓ} · z2^{c_ℓ}` — to the coefficients `v` of the product
//!   `e·f`, blinded by `g`'s coefficients `c`;
//! * `Q_ℓ = z1^{a_ℓ} · z2^{d_ℓ}` — to `e`'s coefficients `a`, blinded by
//!   `h`'s coefficients `d` (entries beyond `τ` have `a_ℓ = 0`, which is
//!   invisible thanks to Pedersen hiding — the bid does not leak);
//! * `R_ℓ = z1^{b_ℓ} · z2^{d_ℓ}` — to `f`'s coefficients `b`, blinded by
//!   the same `d`.
//!
//! A receiver holding the share bundle `(e(α), f(α), g(α), h(α))` checks:
//!
//! * **(7)** `z1^{e(α)·f(α)} · z2^{g(α)} = Π_ℓ O_ℓ^{α^ℓ}` — binds the
//!   product structure and zero constant terms;
//! * **(8)** `z1^{e(α)} · z2^{h(α)} = Γ = Π_ℓ Q_ℓ^{α^ℓ}`;
//! * **(9)** `z1^{f(α)} · z2^{h(α)} = Φ = Π_ℓ R_ℓ^{α^ℓ}`.
//!
//! The right-hand sides `Γ` and `Φ` are computable by *anyone* from public
//! data; they are reused in equations (11) and (13) to validate later
//! protocol messages, which is why the paper computes (8) and (9) even
//! though (7) already binds the shares.

use crate::encoding::BidEncoding;
use crate::error::CryptoError;
use crate::polynomials::{BidPolynomials, ShareBundle};
use dmw_modmath::SchnorrGroup;
use serde::{Deserialize, Serialize};

/// The published commitment triple `(O, Q, R)` of one agent for one task
/// (equation (6)). Each vector has exactly `σ` entries; entry `ℓ` (1-based
/// in the paper) is stored at index `ℓ − 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Commitments {
    o: Vec<u64>,
    q: Vec<u64>,
    r: Vec<u64>,
}

impl Commitments {
    /// Computes the commitments of `polys` (Phase II.3).
    pub fn commit(group: &SchnorrGroup, encoding: &BidEncoding, polys: &BidPolynomials) -> Self {
        let sigma = encoding.sigma();
        let zq = group.zq();
        let v = polys.ef_product(&zq);
        let mut o = Vec::with_capacity(sigma);
        let mut q = Vec::with_capacity(sigma);
        let mut r = Vec::with_capacity(sigma);
        for l in 1..=sigma {
            o.push(group.commit(v.coeff(l), polys.g().coeff(l)));
            q.push(group.commit(polys.e().coeff(l), polys.h().coeff(l)));
            r.push(group.commit(polys.f().coeff(l), polys.h().coeff(l)));
        }
        Commitments { o, q, r }
    }

    /// Builds a commitment triple from raw published vectors (e.g. received
    /// over the network).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::LengthMismatch`] unless all three vectors
    /// have exactly `σ` entries.
    pub fn from_parts(
        encoding: &BidEncoding,
        o: Vec<u64>,
        q: Vec<u64>,
        r: Vec<u64>,
    ) -> Result<Self, CryptoError> {
        let sigma = encoding.sigma();
        for (what, v) in [
            ("O commitment vector", &o),
            ("Q commitment vector", &q),
            ("R commitment vector", &r),
        ] {
            if v.len() != sigma {
                return Err(CryptoError::LengthMismatch {
                    what,
                    got: v.len(),
                    expected: sigma,
                });
            }
        }
        Ok(Commitments { o, q, r })
    }

    /// The `O` vector (commitments to `e·f`, blinded by `g`).
    pub fn o(&self) -> &[u64] {
        &self.o
    }

    /// The `Q` vector (commitments to `e`, blinded by `h`).
    pub fn q(&self) -> &[u64] {
        &self.q
    }

    /// The `R` vector (commitments to `f`, blinded by `h`).
    pub fn r(&self) -> &[u64] {
        &self.r
    }

    /// Tampers with one `Q` entry (multiplies it by `z1`). Used by
    /// deviation strategies; an honest agent never calls this.
    pub fn with_tampered_q(mut self, group: &SchnorrGroup, index: usize) -> Self {
        let zp = group.zp();
        if let Some(entry) = self.q.get_mut(index) {
            *entry = zp.mul(*entry, group.z1());
        }
        self
    }

    /// Evaluates a commitment vector "in the exponent" at pseudonym
    /// `alpha`: `Π_ℓ vec_ℓ^{α^ℓ} (mod p)` with `α^ℓ` reduced mod `q`. This
    /// is the right-hand side shape shared by equations (7)–(9) — the
    /// protocol's hottest operation, computed by simultaneous
    /// multi-exponentiation ([`dmw_modmath::multiexp`], ≈ 3× fewer
    /// multiplications than one ladder per entry).
    fn eval_vector(group: &SchnorrGroup, vec: &[u64], alpha: u64) -> u64 {
        let zp = group.zp();
        let zq = group.zq();
        let mut exps = Vec::with_capacity(vec.len());
        let mut alpha_pow = 1u64; // alpha^0; loop raises it to alpha^l.
        for _ in vec {
            alpha_pow = zq.mul(alpha_pow, alpha);
            exps.push(alpha_pow);
        }
        dmw_modmath::multiexp::multi_pow(&zp, vec, &exps)
    }

    /// The public value `Γ = Π_ℓ Q_ℓ^{α^ℓ}` — equals
    /// `z1^{e(α)} · z2^{h(α)}` for honest commitments (equation (8)).
    pub fn gamma(&self, group: &SchnorrGroup, alpha: u64) -> u64 {
        Self::eval_vector(group, &self.q, alpha)
    }

    /// The public value `Φ = Π_ℓ R_ℓ^{α^ℓ}` — equals
    /// `z1^{f(α)} · z2^{h(α)}` for honest commitments (equation (9)).
    pub fn phi(&self, group: &SchnorrGroup, alpha: u64) -> u64 {
        Self::eval_vector(group, &self.r, alpha)
    }

    /// The public value `Π_ℓ O_ℓ^{α^ℓ}` — equals
    /// `z1^{e(α)·f(α)} · z2^{g(α)}` for honest commitments (equation (7)).
    pub fn omicron(&self, group: &SchnorrGroup, alpha: u64) -> u64 {
        Self::eval_vector(group, &self.o, alpha)
    }
}

/// Verifies a received share bundle against the sender's commitments —
/// Phase III.1, equations (7), (8) and (9), in that order.
///
/// # Errors
///
/// Returns [`CryptoError::ShareVerificationFailed`] naming the first
/// equation that failed. An agent receiving this error aborts the protocol,
/// which is the detection mechanism behind Theorems 4 and 8.
///
/// # Example
/// ```
/// use dmw_crypto::{BidEncoding, BidPolynomials, Commitments, commitments::verify_shares};
/// use dmw_modmath::SchnorrGroup;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let group = SchnorrGroup::generate(40, 16, &mut rng)?;
/// let encoding = BidEncoding::new(5, 1)?;
/// let polys = BidPolynomials::generate(&group, &encoding, 2, &mut rng)?;
/// let commitments = Commitments::commit(&group, &encoding, &polys);
/// let alpha = 7;
/// let bundle = polys.share_for(&group.zq(), alpha);
/// assert!(verify_shares(&group, &commitments, alpha, &bundle).is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn verify_shares(
    group: &SchnorrGroup,
    commitments: &Commitments,
    alpha: u64,
    bundle: &ShareBundle,
) -> Result<(), CryptoError> {
    let zq = group.zq();
    // (7): z1^{e(α)f(α)} z2^{g(α)} == Π O_ℓ^{α^ℓ}.
    let lhs7 = group.commit(zq.mul(bundle.e, bundle.f), bundle.g);
    if lhs7 != commitments.omicron(group, alpha) {
        return Err(CryptoError::ShareVerificationFailed { equation: 7 });
    }
    // (8): z1^{e(α)} z2^{h(α)} == Γ.
    let lhs8 = group.commit(bundle.e, bundle.h);
    if lhs8 != commitments.gamma(group, alpha) {
        return Err(CryptoError::ShareVerificationFailed { equation: 8 });
    }
    // (9): z1^{f(α)} z2^{h(α)} == Φ.
    let lhs9 = group.commit(bundle.f, bundle.h);
    if lhs9 != commitments.phi(group, alpha) {
        return Err(CryptoError::ShareVerificationFailed { equation: 9 });
    }
    Ok(())
}

/// A failure inside [`verify_shares_batch`]: which batch item failed, and
/// the verification error it failed with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareBatchFailure {
    /// Index of the failing item in the submitted batch.
    pub index: usize,
    /// The per-item verification error.
    pub error: CryptoError,
}

/// Verifies a batch of `(commitments, bundle)` pairs at one evaluation
/// point `alpha`, fanning the per-item work of equations (7)–(9) across
/// `width` threads.
///
/// Phase III.1 is embarrassingly parallel: each received bundle is checked
/// against its sender's commitments independently, across both tasks and
/// senders. Whatever the width, the result is **bit-identical** to calling
/// [`verify_shares`] in a sequential loop over `items`: every item is
/// verified by a pure function of its inputs, and a failure reports the
/// first failing item in submission order.
///
/// `width <= 1` short-circuits to the sequential loop (and keeps its
/// early-exit behavior); parallel verification always checks the whole
/// batch before scanning for the first failure.
///
/// # Errors
///
/// Returns [`ShareBatchFailure`] naming the first item (in submission
/// order) whose verification failed, with the underlying
/// [`CryptoError::ShareVerificationFailed`].
pub fn verify_shares_batch(
    group: &SchnorrGroup,
    alpha: u64,
    items: &[(&Commitments, ShareBundle)],
    width: usize,
) -> Result<(), ShareBatchFailure> {
    if width <= 1 || items.len() <= 1 {
        for (index, (commitments, bundle)) in items.iter().enumerate() {
            if let Err(error) = verify_shares(group, commitments, alpha, bundle) {
                return Err(ShareBatchFailure { index, error });
            }
        }
        return Ok(());
    }
    let results: Vec<Result<(), CryptoError>> =
        match rayon::ThreadPoolBuilder::new().num_threads(width).build() {
            Ok(pool) => pool.install(|| {
                use rayon::prelude::*;
                items
                    .par_iter()
                    .map(|(commitments, bundle)| verify_shares(group, commitments, alpha, bundle))
                    .collect()
            }),
            // A pool that cannot be built degrades to sequential verification.
            Err(_) => items
                .iter()
                .map(|(commitments, bundle)| verify_shares(group, commitments, alpha, bundle))
                .collect(),
        };
    match results
        .into_iter()
        .enumerate()
        .find_map(|(index, result)| result.err().map(|error| ShareBatchFailure { index, error }))
    {
        Some(failure) => Err(failure),
        None => Ok(()),
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (SchnorrGroup, BidEncoding, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let group = SchnorrGroup::generate(40, 16, &mut rng).unwrap();
        let encoding = BidEncoding::new(6, 1).unwrap();
        (group, encoding, rng)
    }

    #[test]
    fn honest_shares_verify_at_every_point() {
        let (group, encoding, mut rng) = setup();
        let zq = group.zq();
        for bid in encoding.bid_set() {
            let polys = BidPolynomials::generate(&group, &encoding, bid, &mut rng).unwrap();
            let commitments = Commitments::commit(&group, &encoding, &polys);
            let alphas = zq.rand_distinct_nonzero(encoding.agents(), &mut rng);
            for &alpha in &alphas {
                let bundle = polys.share_for(&zq, alpha);
                verify_shares(&group, &commitments, alpha, &bundle)
                    .unwrap_or_else(|e| panic!("bid {bid}, alpha {alpha}: {e}"));
            }
        }
    }

    #[test]
    fn corrupted_e_share_fails_equation_7_or_8() {
        let (group, encoding, mut rng) = setup();
        let zq = group.zq();
        let polys = BidPolynomials::generate(&group, &encoding, 2, &mut rng).unwrap();
        let commitments = Commitments::commit(&group, &encoding, &polys);
        let mut bundle = polys.share_for(&zq, 9);
        bundle.e = zq.add(bundle.e, 1);
        let err = verify_shares(&group, &commitments, 9, &bundle).unwrap_err();
        assert!(matches!(
            err,
            CryptoError::ShareVerificationFailed { equation: 7 | 8 }
        ));
    }

    #[test]
    fn corrupted_f_g_h_shares_are_each_detected() {
        let (group, encoding, mut rng) = setup();
        let zq = group.zq();
        let polys = BidPolynomials::generate(&group, &encoding, 3, &mut rng).unwrap();
        let commitments = Commitments::commit(&group, &encoding, &polys);
        let honest = polys.share_for(&zq, 11);
        for field in 0..3 {
            let mut bundle = honest;
            match field {
                0 => bundle.f = zq.add(bundle.f, 1),
                1 => bundle.g = zq.add(bundle.g, 1),
                _ => bundle.h = zq.add(bundle.h, 1),
            }
            assert!(
                verify_shares(&group, &commitments, 11, &bundle).is_err(),
                "tampered field {field} slipped through"
            );
        }
    }

    #[test]
    fn shares_at_wrong_point_fail() {
        let (group, encoding, mut rng) = setup();
        let zq = group.zq();
        let polys = BidPolynomials::generate(&group, &encoding, 2, &mut rng).unwrap();
        let commitments = Commitments::commit(&group, &encoding, &polys);
        let bundle = polys.share_for(&zq, 9);
        assert!(verify_shares(&group, &commitments, 10, &bundle).is_err());
    }

    #[test]
    fn tampered_commitments_fail() {
        let (group, encoding, mut rng) = setup();
        let zq = group.zq();
        let polys = BidPolynomials::generate(&group, &encoding, 2, &mut rng).unwrap();
        let commitments = Commitments::commit(&group, &encoding, &polys).with_tampered_q(&group, 0);
        let bundle = polys.share_for(&zq, 9);
        assert!(matches!(
            verify_shares(&group, &commitments, 9, &bundle),
            Err(CryptoError::ShareVerificationFailed { equation: 8 })
        ));
    }

    #[test]
    fn mismatched_polynomials_fail_equation_7() {
        // Commit to one quadruple but send shares of a different e: the
        // product check (7) catches the substitution even when the degree
        // is unchanged.
        let (group, encoding, mut rng) = setup();
        let zq = group.zq();
        let polys = BidPolynomials::generate(&group, &encoding, 2, &mut rng).unwrap();
        let commitments = Commitments::commit(&group, &encoding, &polys);
        let substituted = polys.clone().with_substituted_e(&zq, polys.tau(), &mut rng);
        let bundle = substituted.share_for(&zq, 5);
        let err = verify_shares(&group, &commitments, 5, &bundle).unwrap_err();
        assert!(matches!(err, CryptoError::ShareVerificationFailed { .. }));
    }

    #[test]
    fn from_parts_validates_lengths() {
        let (group, encoding, mut rng) = setup();
        let polys = BidPolynomials::generate(&group, &encoding, 1, &mut rng).unwrap();
        let c = Commitments::commit(&group, &encoding, &polys);
        let rebuilt =
            Commitments::from_parts(&encoding, c.o().to_vec(), c.q().to_vec(), c.r().to_vec())
                .unwrap();
        assert_eq!(rebuilt, c);
        assert!(matches!(
            Commitments::from_parts(&encoding, vec![1], c.q().to_vec(), c.r().to_vec()),
            Err(CryptoError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn gamma_phi_match_share_commitments() {
        // Gamma and Phi computed from public data equal the left-hand sides
        // computed from private shares — the identity that (11) and (13)
        // rely on.
        let (group, encoding, mut rng) = setup();
        let zq = group.zq();
        let polys = BidPolynomials::generate(&group, &encoding, 3, &mut rng).unwrap();
        let commitments = Commitments::commit(&group, &encoding, &polys);
        let alpha = 13;
        let bundle = polys.share_for(&zq, alpha);
        assert_eq!(
            commitments.gamma(&group, alpha),
            group.commit(bundle.e, bundle.h)
        );
        assert_eq!(
            commitments.phi(&group, alpha),
            group.commit(bundle.f, bundle.h)
        );
    }

    #[test]
    fn batch_verification_is_width_invariant() {
        let (group, encoding, mut rng) = setup();
        let zq = group.zq();
        let alpha = 9;
        let committed: Vec<(Commitments, crate::polynomials::ShareBundle)> = (0..12)
            .map(|i| {
                let polys =
                    BidPolynomials::generate(&group, &encoding, 1 + i % 3, &mut rng).unwrap();
                let commitments = Commitments::commit(&group, &encoding, &polys);
                let bundle = polys.share_for(&zq, alpha);
                (commitments, bundle)
            })
            .collect();
        let items: Vec<(&Commitments, crate::polynomials::ShareBundle)> =
            committed.iter().map(|(c, b)| (c, *b)).collect();
        for width in [1, 2, 8] {
            assert!(verify_shares_batch(&group, alpha, &items, width).is_ok());
        }
        // Corrupt two items; every width must report the *first* one.
        let mut corrupted = items.clone();
        corrupted[3].1.e = zq.add(corrupted[3].1.e, 1);
        corrupted[9].1.f = zq.add(corrupted[9].1.f, 1);
        for width in [1, 2, 8] {
            let failure = verify_shares_batch(&group, alpha, &corrupted, width).unwrap_err();
            assert_eq!(failure.index, 3, "width {width}");
            assert!(matches!(
                failure.error,
                CryptoError::ShareVerificationFailed { .. }
            ));
        }
    }
}
