//! The discrete bid encoding of DMW (Section 3, Notation).
//!
//! DMW encodes a bid `y` as the degree of a random polynomial `e`. Because
//! lower bids become *higher* degrees, resolving the degree of the summed
//! polynomial `E = Σ_k e_k` reveals the *minimum* bid — exactly what the
//! procurement Vickrey auction needs — while the individual bids stay
//! hidden.
//!
//! Following the paper's resilience rule ("this is achieved by adding the
//! maximum number of faulty agents `c` to the bids before encoding them"),
//! the encoded degree is
//!
//! ```text
//! τ = σ − (y + c),    σ = w_max + c + 1,    W = {1, …, w_max}
//! ```
//!
//! with `w_max = n − c − 1` ("the bid is … less than the number of
//! operational agents", i.e. `y < n − c`). Hence **`σ = n`** and:
//!
//! * `deg e = τ ∈ [1, n − c − 1]` — the summed polynomial `E` has degree at
//!   most `n − c − 1` and is resolvable from the `n − c` share points that
//!   survive even when `c` agents crash (the computability threshold of
//!   Open Problem 11);
//! * `deg f = σ − τ = y + c ∈ [c + 1, n − 1]` — the complementary witness
//!   polynomial always has degree at least `c + 1`, so a coalition of `c`
//!   agents cannot reconstruct it (Theorem 10);
//! * exposing a bid `y` by reconstructing `e` requires `τ + 1 = n − c − y + 1`
//!   colluders — *more* colluders for *lower* (better) bids, the
//!   "inversely proportional" property noted under Theorem 10. The privacy
//!   experiment measures exactly this curve.
//!
//! The paper's own Definition 11 resolves a degree-`d` polynomial from `d`
//! shares; standard interpolation requires `d + 1`, and this implementation
//! uses the consistent `d + 1` convention throughout (see DESIGN.md,
//! "Deliberate clarifications").

use crate::error::CryptoError;
use serde::{Deserialize, Serialize};

/// Public parameters of the bid discretization for one auction.
///
/// # Example
/// ```
/// use dmw_crypto::BidEncoding;
///
/// let enc = BidEncoding::new(8, 2)?; // n = 8 agents, c = 2 faults
/// assert_eq!(enc.w_max(), 5);        // W = {1, …, 5}
/// assert_eq!(enc.sigma(), 8);        // σ = w_max + c + 1 = n
/// assert_eq!(enc.degree_of_bid(1)?, 5); // low bid, high degree
/// assert_eq!(enc.degree_of_bid(5)?, 1); // high bid, low degree
/// assert_eq!(enc.bid_of_degree(5), Some(1));
/// # Ok::<(), dmw_crypto::CryptoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BidEncoding {
    agents: usize,
    faults: usize,
}

impl BidEncoding {
    /// Creates the encoding for `agents` participants tolerating `faults`
    /// faulty ones.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidEncoding`] unless `agents ≥ faults + 2`
    /// (at least one bid level must exist) and `agents ≥ 2`.
    pub fn new(agents: usize, faults: usize) -> Result<Self, CryptoError> {
        if agents < 2 || agents < faults + 2 {
            return Err(CryptoError::InvalidEncoding { agents, faults });
        }
        Ok(BidEncoding { agents, faults })
    }

    /// Number of agents `n`.
    pub fn agents(&self) -> usize {
        self.agents
    }

    /// The fault-tolerance threshold `c`: fewer than `c` colluding agents
    /// learn nothing about well-protected bids, and up to `c` crashed
    /// agents leave first-price resolution computable.
    pub fn faults(&self) -> usize {
        self.faults
    }

    /// The largest bid `w_max = n − c − 1`; the bid set is `1..=w_max`.
    pub fn w_max(&self) -> u64 {
        (self.agents - self.faults - 1) as u64
    }

    /// The polynomial size parameter `σ = w_max + c + 1 = n`: `g` and `h`
    /// have degree `σ`, commitment vectors have `σ` entries, and
    /// `deg e + deg f = σ`.
    pub fn sigma(&self) -> usize {
        self.agents
    }

    /// The discrete bid set `W` in ascending order.
    pub fn bid_set(&self) -> Vec<u64> {
        (1..=self.w_max()).collect()
    }

    /// Returns `true` iff `bid` is a member of `W`.
    pub fn contains_bid(&self, bid: u64) -> bool {
        bid >= 1 && bid <= self.w_max()
    }

    /// The degree `τ = σ − (y + c)` of the `e`-polynomial encoding bid `y`
    /// (the paper's resilience-shifted encoding).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BidOutOfRange`] for bids outside `W`.
    pub fn degree_of_bid(&self, bid: u64) -> Result<usize, CryptoError> {
        let index = usize::try_from(bid)
            .ok()
            .filter(|_| self.contains_bid(bid))
            .ok_or(CryptoError::BidOutOfRange {
                bid,
                w_max: self.w_max(),
            })?;
        Ok(self.sigma() - index - self.faults)
    }

    /// The degree `σ − τ = y + c` of the `f`-polynomial for bid `y`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BidOutOfRange`] for bids outside `W`.
    pub fn f_degree_of_bid(&self, bid: u64) -> Result<usize, CryptoError> {
        Ok(self.sigma() - self.degree_of_bid(bid)?)
    }

    /// The bid `y = σ − c − d` encoded by `e`-degree `d`, or `None` if `d`
    /// does not correspond to a bid in `W`.
    pub fn bid_of_degree(&self, degree: usize) -> Option<u64> {
        let shifted = degree + self.faults;
        if shifted >= self.sigma() {
            return None;
        }
        let bid = (self.sigma() - shifted) as u64;
        self.contains_bid(bid).then_some(bid)
    }

    /// The candidate degrees of the summed polynomial `E`, ascending —
    /// `{σ − (w + c) : w ∈ W}` — which is the exact set equation (12)
    /// scans. The smallest resolving candidate is the true degree
    /// `σ − (y_min + c)`.
    pub fn candidate_degrees(&self) -> Vec<usize> {
        let w_max = self.agents - self.faults - 1;
        (1..=w_max)
            .rev() // descending bids = ascending degrees
            .map(|w| self.sigma() - w - self.faults)
            .collect()
    }

    /// Share points needed to identify a winner whose bid is `first_price`:
    /// the winner's `f` has degree `y* + c`, so `y* + c + 1` points resolve
    /// it (step III.3).
    pub fn winner_points(&self, first_price: u64) -> usize {
        // A price too large for `usize` cannot be a real bid; demanding
        // `σ + c + 1` points (more than can exist) surfaces it as
        // `LengthMismatch` downstream instead of truncating.
        let fp = usize::try_from(first_price).unwrap_or(self.sigma());
        fp + self.faults + 1
    }

    /// Minimum subgroup order `q` for this encoding: `n` distinct non-zero
    /// pseudonyms are needed plus headroom for degree-`σ` evaluation, so we
    /// require `q ≥ σ + 2`.
    pub fn min_group_order(&self) -> u64 {
        (self.sigma() + 2) as u64
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_requires_headroom() {
        assert!(BidEncoding::new(1, 0).is_err());
        assert!(BidEncoding::new(2, 1).is_err(), "no bid level would remain");
        assert!(BidEncoding::new(2, 0).is_ok());
        assert!(BidEncoding::new(5, 3).is_ok());
        assert!(BidEncoding::new(5, 4).is_err());
    }

    #[test]
    fn parameters_match_the_paper_structure() {
        let enc = BidEncoding::new(8, 2).unwrap();
        // sigma = w_max + c + 1, the paper's definition.
        assert_eq!(enc.sigma(), (enc.w_max() as usize) + enc.faults() + 1);
        assert_eq!(enc.bid_set(), vec![1, 2, 3, 4, 5]);
        // Highest e-degree (lowest bid) is n - c - 1: resolvable from the
        // n - c points surviving c crashes.
        assert_eq!(
            enc.degree_of_bid(1).unwrap(),
            enc.agents() - enc.faults() - 1
        );
        // Lowest e-degree is 1 (highest bid).
        assert_eq!(enc.degree_of_bid(enc.w_max()).unwrap(), 1);
        // f-degrees are bid + c, never below c + 1.
        assert_eq!(enc.f_degree_of_bid(1).unwrap(), enc.faults() + 1);
        assert_eq!(enc.f_degree_of_bid(enc.w_max()).unwrap(), enc.agents() - 1);
    }

    #[test]
    fn zero_fault_encoding() {
        let enc = BidEncoding::new(4, 0).unwrap();
        assert_eq!(enc.w_max(), 3);
        assert_eq!(enc.sigma(), 4);
        assert_eq!(enc.candidate_degrees(), vec![1, 2, 3]);
        assert_eq!(enc.winner_points(2), 3);
    }

    #[test]
    fn bid_degree_round_trip() {
        let enc = BidEncoding::new(9, 3).unwrap();
        for w in enc.bid_set() {
            let d = enc.degree_of_bid(w).unwrap();
            assert_eq!(enc.bid_of_degree(d), Some(w));
            // e and f degrees always sum to sigma.
            assert_eq!(d + enc.f_degree_of_bid(w).unwrap(), enc.sigma());
        }
        assert_eq!(enc.bid_of_degree(0), None);
        assert_eq!(enc.bid_of_degree(enc.sigma()), None);
        assert!(enc.degree_of_bid(0).is_err());
        assert!(enc.degree_of_bid(enc.w_max() + 1).is_err());
    }

    #[test]
    fn candidate_degrees_are_ascending_and_crash_resolvable() {
        let enc = BidEncoding::new(7, 2).unwrap();
        let degrees = enc.candidate_degrees();
        assert_eq!(degrees, vec![1, 2, 3, 4]);
        assert!(degrees.windows(2).all(|w| w[0] < w[1]));
        // Every candidate resolves from the n - c surviving points.
        for d in degrees {
            assert!(d < enc.agents() - enc.faults());
        }
    }

    proptest! {
        #[test]
        fn invariants(n in 3usize..40, c in 0usize..10) {
            prop_assume!(n >= c + 2);
            let enc = BidEncoding::new(n, c).unwrap();
            prop_assert_eq!(enc.sigma(), n);
            prop_assert_eq!(enc.w_max() as usize, n - c - 1);
            for d in enc.candidate_degrees() {
                // Resolvable even when c agents crash.
                prop_assert!(d < n - c);
                prop_assert!(d >= 1);
            }
            for w in enc.bid_set() {
                // The f witness always stays beyond a c-coalition's reach.
                prop_assert!(enc.f_degree_of_bid(w).unwrap() > c);
            }
        }
    }
}
