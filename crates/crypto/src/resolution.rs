//! The public "blackboard" mathematics of Phase III: validating published
//! aggregates, resolving the first price in the exponent, identifying the
//! winner, and resolving the second price (equations (10)–(15)).
//!
//! After share verification, each agent `i` publishes (Phase III.2,
//! equation (10)):
//!
//! ```text
//! Λ_i = z1^{E(α_i)}   with E = Σ_ℓ e_ℓ  (computable from received shares)
//! Ψ_i = z2^{H(α_i)}   with H = Σ_ℓ h_ℓ
//! ```
//!
//! Anyone can validate a published pair against the commitments via
//! equation (11): `Π_ℓ Γ_{i,ℓ} = Λ_i · Ψ_i`. The first price is then the
//! bid `y* = σ − deg E`, where `deg E` is resolved *in the exponent* by
//! testing `Π_k Λ_k^{ρ_k} = 1` over candidate degrees (equation (12)) —
//! `z1` has order `q`, so the product is 1 exactly when the plain Lagrange
//! interpolation of `E` at zero vanishes mod `q`.

use crate::commitments::Commitments;
use crate::encoding::BidEncoding;
use crate::error::CryptoError;
use dmw_modmath::{lagrange, SchnorrGroup};
use serde::{Deserialize, Serialize};

/// A published `(Λ_i, Ψ_i)` pair (equation (10)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LambdaPsi {
    /// `Λ_i = z1^{E(α_i)}`.
    pub lambda: u64,
    /// `Ψ_i = z2^{H(α_i)}`.
    pub psi: u64,
}

/// Computes agent `i`'s `(Λ_i, Ψ_i)` from the `e`- and `h`-shares it
/// received from every agent (including itself), i.e.
/// `Λ_i = z1^{Σ_ℓ e_ℓ(α_i)}`, `Ψ_i = z2^{Σ_ℓ h_ℓ(α_i)}` (Phase III.2).
pub fn compute_lambda_psi(group: &SchnorrGroup, e_shares: &[u64], h_shares: &[u64]) -> LambdaPsi {
    let zq = group.zq();
    let e_sum = e_shares.iter().fold(0u64, |acc, &v| zq.add(acc, v));
    let h_sum = h_shares.iter().fold(0u64, |acc, &v| zq.add(acc, v));
    LambdaPsi {
        lambda: group.pow_z1(e_sum),
        psi: group.pow_z2(h_sum),
    }
}

/// Verifies a published `(Λ_i, Ψ_i)` against the public commitments —
/// equation (11): `Π_{ℓ ∉ excluded} Γ_{i,ℓ} = Λ_i · Ψ_i`.
///
/// With `excluded = Some(w)` this is the *second-price* variant used after
/// the winner `w`'s polynomial has been divided out (step III.4).
///
/// # Errors
///
/// Returns [`CryptoError::LambdaPsiInvalid`] when the identity fails.
pub fn verify_lambda_psi(
    group: &SchnorrGroup,
    all_commitments: &[Commitments],
    agent: usize,
    alpha_i: u64,
    pair: &LambdaPsi,
    excluded: Option<usize>,
) -> Result<(), CryptoError> {
    let zp = group.zp();
    let mut gamma_product = 1u64;
    for (l, commitments) in all_commitments.iter().enumerate() {
        if excluded == Some(l) {
            continue;
        }
        gamma_product = zp.mul(gamma_product, commitments.gamma(group, alpha_i));
    }
    if gamma_product != zp.mul(pair.lambda, pair.psi) {
        return Err(CryptoError::LambdaPsiInvalid { agent });
    }
    Ok(())
}

/// The result of a first- or second-price resolution (equation (12)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolvedPrice {
    /// The resolved bid value `y = σ − degree`.
    pub bid: u64,
    /// The resolved degree of the summed polynomial.
    pub degree: usize,
    /// How many share points the resolution consumed (`degree + 1`).
    pub points_used: usize,
}

/// Resolves the minimum encoded bid from published `Λ` values — the
/// distributed degree resolution of equation (12).
///
/// Scans the candidate degrees `σ − w` (ascending, i.e. bids descending
/// from `w_max`) and for each candidate `d` tests whether
/// `Π_{k=1}^{d+1} Λ_k^{ρ_k} = 1`, where `ρ_k` are the Lagrange-at-zero
/// coefficients mod `q` of the first `d + 1` pseudonyms. The first success
/// gives `deg E` and hence the minimum bid `y* = σ − deg E`.
///
/// # Errors
///
/// * [`CryptoError::LengthMismatch`] if `lambdas` and `alphas` differ in
///   length;
/// * [`CryptoError::ResolutionFailed`] if no candidate resolves — under
///   honest execution this can only happen with probability `≈ |W|/q`, so
///   it indicates a protocol violation (Theorem 4's `τ* = n` case).
pub fn resolve_min_bid(
    group: &SchnorrGroup,
    encoding: &BidEncoding,
    alphas: &[u64],
    lambdas: &[u64],
) -> Result<ResolvedPrice, CryptoError> {
    if lambdas.len() != alphas.len() {
        return Err(CryptoError::LengthMismatch {
            what: "lambda vector",
            got: lambdas.len(),
            expected: alphas.len(),
        });
    }
    let zq = group.zq();
    let zp = group.zp();
    for degree in encoding.candidate_degrees() {
        let s = degree + 1;
        let (Some(alpha_head), Some(lambda_head)) = (alphas.get(..s), lambdas.get(..s)) else {
            break;
        };
        let rho = lagrange::zero_coefficients(&zq, alpha_head)
            .map_err(|_| CryptoError::ResolutionFailed)?;
        let mut product = 1u64;
        for (&lam, &r) in lambda_head.iter().zip(&rho) {
            product = zp.mul(product, zp.pow(lam, r));
        }
        if product == 1 {
            let bid = encoding
                .bid_of_degree(degree)
                .ok_or(CryptoError::ResolutionFailed)?;
            return Ok(ResolvedPrice {
                bid,
                degree,
                points_used: s,
            });
        }
    }
    Err(CryptoError::ResolutionFailed)
}

/// Verifies one claimed `(f_ℓ(α), h_ℓ(α))` evaluation against agent `ℓ`'s
/// published `R` commitment vector — equation (9) applied to a single
/// point: `z1^{f} · z2^{h} = Φ_ℓ(α) = Π_j R_{ℓ,j}^{α^j}`.
///
/// This backs the winner-identification fallback: when crashes before
/// bidding leave fewer live share points than identification needs, the
/// winner itself supplies its polynomial's evaluations at the missing
/// pseudonyms, and every verifier binds those claims to the commitments
/// published back in Phase II.3.
///
/// # Errors
///
/// Returns [`CryptoError::DisclosureInvalid`] (naming `point_index`) when
/// the claimed pair does not match the commitment.
pub fn verify_claimed_f_point(
    group: &SchnorrGroup,
    commitments: &Commitments,
    point_index: usize,
    alpha: u64,
    f_value: u64,
    h_value: u64,
) -> Result<(), CryptoError> {
    if group.commit(f_value, h_value) != commitments.phi(group, alpha) {
        return Err(CryptoError::DisclosureInvalid { point: point_index });
    }
    Ok(())
}

/// Verifies a round of disclosed `f`-shares at one point — equation (13):
/// `z1^{F(α_k)} · Ψ_k = Π_ℓ Φ_{k,ℓ}` with `F(α_k) = Σ_ℓ f_ℓ(α_k)`.
///
/// `disclosed_f[ℓ]` is agent `ℓ`'s `f_ℓ(α_k)` as disclosed by the agent
/// holding point `α_k`; `psi_k` is that agent's published `Ψ_k`.
///
/// # Errors
///
/// Returns [`CryptoError::DisclosureInvalid`] when the aggregate identity
/// fails (some disclosed value was tampered with).
pub fn verify_f_disclosure(
    group: &SchnorrGroup,
    all_commitments: &[Commitments],
    point_index: usize,
    alpha_k: u64,
    disclosed_f: &[u64],
    psi_k: u64,
) -> Result<(), CryptoError> {
    if disclosed_f.len() != all_commitments.len() {
        return Err(CryptoError::LengthMismatch {
            what: "disclosed f-share vector",
            got: disclosed_f.len(),
            expected: all_commitments.len(),
        });
    }
    let zq = group.zq();
    let zp = group.zp();
    let f_sum = disclosed_f.iter().fold(0u64, |acc, &v| zq.add(acc, v));
    let lhs = zp.mul(group.pow_z1(f_sum), psi_k);
    let mut phi_product = 1u64;
    for commitments in all_commitments {
        phi_product = zp.mul(phi_product, commitments.phi(group, alpha_k));
    }
    if lhs != phi_product {
        return Err(CryptoError::DisclosureInvalid { point: point_index });
    }
    Ok(())
}

/// Identifies the winning agent from disclosed `f`-shares — equation (14).
///
/// The winner's `f` has degree `y* + c` (the first price plus the
/// resilience shift), so its `(y* + c + 1)`-point Lagrange interpolation at
/// zero vanishes; every loser's `f` has a strictly larger degree and does
/// not (w.h.p.). Ties are broken toward the smallest pseudonym index,
/// matching step III.3.
///
/// `f_columns[ℓ]` holds agent `ℓ`'s disclosed `f_ℓ(α_k)` for the first
/// [`BidEncoding::winner_points`] points in `alphas`.
///
/// # Errors
///
/// * [`CryptoError::LengthMismatch`] when fewer than `y* + 1` points are
///   supplied;
/// * [`CryptoError::NoWinner`] when no polynomial resolves at degree `y*`.
pub fn identify_winner(
    group: &SchnorrGroup,
    encoding: &BidEncoding,
    first_price: u64,
    alphas: &[u64],
    f_columns: &[Vec<u64>],
) -> Result<usize, CryptoError> {
    let needed = encoding.winner_points(first_price);
    if alphas.len() < needed {
        return Err(CryptoError::LengthMismatch {
            what: "winner-identification points",
            got: alphas.len(),
            expected: needed,
        });
    }
    let zq = group.zq();
    for (agent, column) in f_columns.iter().enumerate() {
        if column.len() < needed {
            return Err(CryptoError::LengthMismatch {
                what: "disclosed f-share column",
                got: column.len(),
                expected: needed,
            });
        }
        let shares: Vec<(u64, u64)> = alphas
            .iter()
            .copied()
            .zip(column.iter().copied())
            .take(needed)
            .collect();
        if let Ok(0) = lagrange::interpolate_at_zero(&zq, &shares) {
            return Ok(agent);
        }
    }
    Err(CryptoError::NoWinner)
}

/// Excludes the winner's polynomial from a published pair — step III.4,
/// equation (15): `Λ'_i = Λ_i / z1^{e_*(α_i)}`, `Ψ'_i = Ψ_i / z2^{h_*(α_i)}`,
/// where `(e_*(α_i), h_*(α_i))` are the winner's shares held by agent `i`.
///
/// # Errors
///
/// Never fails for valid group elements; an error indicates `Λ` or `Ψ` was
/// zero, which cannot happen for honestly computed values.
pub fn exclude_winner(
    group: &SchnorrGroup,
    pair: &LambdaPsi,
    winner_e_share: u64,
    winner_h_share: u64,
) -> Result<LambdaPsi, CryptoError> {
    let zp = group.zp();
    let lambda = zp
        .div(pair.lambda, group.pow_z1(winner_e_share))
        .map_err(|_| CryptoError::ResolutionFailed)?;
    let psi = zp
        .div(pair.psi, group.pow_z2(winner_h_share))
        .map_err(|_| CryptoError::ResolutionFailed)?;
    Ok(LambdaPsi { lambda, psi })
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::polynomials::BidPolynomials;
    use rand::SeedableRng;

    struct Setup {
        group: SchnorrGroup,
        encoding: BidEncoding,
        alphas: Vec<u64>,
        polys: Vec<BidPolynomials>,
        commitments: Vec<Commitments>,
        pairs: Vec<LambdaPsi>,
    }

    /// Builds a fully honest auction state for the given bids.
    fn setup(bids: &[u64], seed: u64) -> Setup {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let group = SchnorrGroup::generate(40, 16, &mut rng).unwrap();
        let n = bids.len();
        let encoding = BidEncoding::new(n, 1).unwrap();
        let zq = group.zq();
        let alphas = zq.rand_distinct_nonzero(n, &mut rng);
        let polys: Vec<BidPolynomials> = bids
            .iter()
            .map(|&b| BidPolynomials::generate(&group, &encoding, b, &mut rng).unwrap())
            .collect();
        let commitments: Vec<Commitments> = polys
            .iter()
            .map(|p| Commitments::commit(&group, &encoding, p))
            .collect();
        let pairs: Vec<LambdaPsi> = alphas
            .iter()
            .map(|&a| {
                let e_shares: Vec<u64> = polys.iter().map(|p| p.e().eval(&zq, a)).collect();
                let h_shares: Vec<u64> = polys.iter().map(|p| p.h().eval(&zq, a)).collect();
                compute_lambda_psi(&group, &e_shares, &h_shares)
            })
            .collect();
        Setup {
            group,
            encoding,
            alphas,
            polys,
            commitments,
            pairs,
        }
    }

    #[test]
    fn published_pairs_pass_equation_11() {
        let s = setup(&[3, 1, 2, 4, 2, 3], 7);
        for (i, pair) in s.pairs.iter().enumerate() {
            verify_lambda_psi(&s.group, &s.commitments, i, s.alphas[i], pair, None)
                .unwrap_or_else(|e| panic!("agent {i}: {e}"));
        }
    }

    #[test]
    fn tampered_lambda_fails_equation_11() {
        let s = setup(&[3, 1, 2, 4, 2, 3], 8);
        let mut bad = s.pairs[2];
        bad.lambda = s.group.zp().mul(bad.lambda, s.group.z1());
        assert!(matches!(
            verify_lambda_psi(&s.group, &s.commitments, 2, s.alphas[2], &bad, None),
            Err(CryptoError::LambdaPsiInvalid { agent: 2 })
        ));
    }

    #[test]
    fn first_price_resolves_to_minimum_bid() {
        for (bids, expected) in [
            (vec![3u64, 1, 2, 4, 2, 3], 1u64),
            (vec![4, 4, 4, 4, 4, 4], 4),
            (vec![2, 3, 2, 3, 3], 2),
        ] {
            let s = setup(&bids, 9);
            let lambdas: Vec<u64> = s.pairs.iter().map(|p| p.lambda).collect();
            let r = resolve_min_bid(&s.group, &s.encoding, &s.alphas, &lambdas).unwrap();
            assert_eq!(r.bid, expected, "bids {bids:?}");
            assert_eq!(r.degree, s.encoding.degree_of_bid(expected).unwrap());
            assert_eq!(r.points_used, r.degree + 1);
        }
    }

    #[test]
    fn resolution_length_mismatch_rejected() {
        let s = setup(&[1, 2, 2, 1], 10);
        let lambdas: Vec<u64> = s.pairs.iter().map(|p| p.lambda).take(2).collect();
        assert!(matches!(
            resolve_min_bid(&s.group, &s.encoding, &s.alphas, &lambdas),
            Err(CryptoError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn garbage_lambdas_fail_resolution() {
        let s = setup(&[2, 1, 2, 1], 11);
        let garbage: Vec<u64> = (0..4).map(|i| s.group.pow_z1(100 + i)).collect();
        assert!(matches!(
            resolve_min_bid(&s.group, &s.encoding, &s.alphas, &garbage),
            Err(CryptoError::ResolutionFailed)
        ));
    }

    #[test]
    fn disclosure_verifies_and_tampering_is_caught() {
        let s = setup(&[3, 1, 2, 4, 2, 3], 12);
        let zq = s.group.zq();
        let k = 0;
        let disclosed: Vec<u64> = s
            .polys
            .iter()
            .map(|p| p.f().eval(&zq, s.alphas[k]))
            .collect();
        verify_f_disclosure(
            &s.group,
            &s.commitments,
            k,
            s.alphas[k],
            &disclosed,
            s.pairs[k].psi,
        )
        .unwrap();
        let mut tampered = disclosed;
        tampered[3] = zq.add(tampered[3], 1);
        assert!(matches!(
            verify_f_disclosure(
                &s.group,
                &s.commitments,
                k,
                s.alphas[k],
                &tampered,
                s.pairs[k].psi
            ),
            Err(CryptoError::DisclosureInvalid { point: 0 })
        ));
    }

    #[test]
    fn claimed_f_point_verifies_and_tampering_is_caught() {
        let s = setup(&[3, 1, 2, 4, 2, 3], 19);
        let zq = s.group.zq();
        // Agent 1 proves its f/h evaluations at agent 4's pseudonym, as it
        // would if agent 4 had crashed before bidding.
        let alpha = s.alphas[4];
        let f = s.polys[1].f().eval(&zq, alpha);
        let h = s.polys[1].h().eval(&zq, alpha);
        verify_claimed_f_point(&s.group, &s.commitments[1], 4, alpha, f, h).unwrap();
        assert!(matches!(
            verify_claimed_f_point(&s.group, &s.commitments[1], 4, alpha, zq.add(f, 1), h),
            Err(CryptoError::DisclosureInvalid { point: 4 })
        ));
    }

    #[test]
    fn winner_identification_picks_lowest_bidder() {
        let bids = [3u64, 1, 2, 4, 2, 3];
        let s = setup(&bids, 13);
        let zq = s.group.zq();
        let first_price = 1u64;
        let f_columns: Vec<Vec<u64>> = s
            .polys
            .iter()
            .map(|p| s.alphas.iter().map(|&a| p.f().eval(&zq, a)).collect())
            .collect();
        let winner =
            identify_winner(&s.group, &s.encoding, first_price, &s.alphas, &f_columns).unwrap();
        assert_eq!(winner, 1);
    }

    #[test]
    fn tie_breaks_to_smallest_index() {
        let bids = [2u64, 1, 1, 2];
        let s = setup(&bids, 14);
        let zq = s.group.zq();
        let f_columns: Vec<Vec<u64>> = s
            .polys
            .iter()
            .map(|p| s.alphas.iter().map(|&a| p.f().eval(&zq, a)).collect())
            .collect();
        let winner = identify_winner(&s.group, &s.encoding, 1, &s.alphas, &f_columns).unwrap();
        assert_eq!(winner, 1, "smallest pseudonym among the tied bidders");
    }

    #[test]
    fn winner_identification_needs_enough_points() {
        let s = setup(&[2, 1, 2, 2], 15);
        let zq = s.group.zq();
        let f_columns: Vec<Vec<u64>> = s
            .polys
            .iter()
            .map(|p| s.alphas[..1].iter().map(|&a| p.f().eval(&zq, a)).collect())
            .collect();
        assert!(matches!(
            identify_winner(&s.group, &s.encoding, 1, &s.alphas[..1], &f_columns),
            Err(CryptoError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn second_price_resolves_after_exclusion() {
        let bids = [3u64, 1, 2, 4, 2, 3];
        let s = setup(&bids, 16);
        let zq = s.group.zq();
        let winner = 1usize;
        let excluded: Vec<LambdaPsi> = s
            .pairs
            .iter()
            .enumerate()
            .map(|(i, pair)| {
                let e_star = s.polys[winner].e().eval(&zq, s.alphas[i]);
                let h_star = s.polys[winner].h().eval(&zq, s.alphas[i]);
                exclude_winner(&s.group, pair, e_star, h_star).unwrap()
            })
            .collect();
        // Excluded pairs still verify equation (11) without the winner.
        for (i, pair) in excluded.iter().enumerate() {
            verify_lambda_psi(&s.group, &s.commitments, i, s.alphas[i], pair, Some(winner))
                .unwrap();
        }
        let lambdas: Vec<u64> = excluded.iter().map(|p| p.lambda).collect();
        let r = resolve_min_bid(&s.group, &s.encoding, &s.alphas, &lambdas).unwrap();
        assert_eq!(r.bid, 2, "second price");
    }

    #[test]
    fn second_price_equals_first_on_tied_minimum() {
        let bids = [1u64, 1, 2, 2];
        let s = setup(&bids, 17);
        let zq = s.group.zq();
        let winner = 0usize;
        let lambdas: Vec<u64> = s
            .pairs
            .iter()
            .enumerate()
            .map(|(i, pair)| {
                let e_star = s.polys[winner].e().eval(&zq, s.alphas[i]);
                let h_star = s.polys[winner].h().eval(&zq, s.alphas[i]);
                exclude_winner(&s.group, pair, e_star, h_star)
                    .unwrap()
                    .lambda
            })
            .collect();
        let r = resolve_min_bid(&s.group, &s.encoding, &s.alphas, &lambdas).unwrap();
        assert_eq!(r.bid, 1);
    }
}
