//! A transport-free reference execution of one DMW task auction.
//!
//! [`honest_auction`] runs every cryptographic step of Phases II and III on
//! an in-memory "blackboard", with all agents honest. It serves three
//! purposes:
//!
//! * a *reference semantics* against which the networked implementation in
//!   the `dmw` crate is tested for equivalence;
//! * the micro-benchmark target for the computational-cost row of Table 1
//!   (no networking noise);
//! * an executable specification that mirrors the paper's protocol listing
//!   step by step.

use crate::commitments::{verify_shares, Commitments};
use crate::encoding::BidEncoding;
use crate::error::CryptoError;
use crate::polynomials::BidPolynomials;
use crate::resolution::{
    compute_lambda_psi, exclude_winner, identify_winner, resolve_min_bid, verify_f_disclosure,
    verify_lambda_psi, LambdaPsi,
};
use dmw_modmath::SchnorrGroup;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The outcome of one fully verified task auction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuctionOutcome {
    /// Index of the winning agent (task is assigned to it).
    pub winner: usize,
    /// The lowest bid `y*`.
    pub first_price: u64,
    /// The second-lowest bid `y**` — the winner's payment.
    pub second_price: u64,
}

/// Runs one complete, honest DMW task auction for the given discrete bids.
///
/// Executes, in order: polynomial generation (II.1), share distribution
/// (II.2), commitment publication (II.3), share verification (III.1,
/// equations (7)–(9)), `Λ/Ψ` publication and validation (III.2, equations
/// (10)–(11)), first-price resolution (equation (12)), `f`-share disclosure
/// with validation and winner identification (III.3, equations (13)–(14)),
/// winner exclusion and second-price resolution (III.4, equation (15)).
///
/// # Errors
///
/// * [`CryptoError::BidOutOfRange`] / [`CryptoError::GroupTooSmall`] for
///   invalid inputs;
/// * [`CryptoError::LengthMismatch`] if `bids.len() != encoding.agents()`;
/// * verification errors cannot occur on this honest path except for the
///   `≈ |W|/q` accidental-resolution probability, surfaced as
///   [`CryptoError::ResolutionFailed`].
pub fn honest_auction<R: Rng + ?Sized>(
    group: &SchnorrGroup,
    encoding: &BidEncoding,
    bids: &[u64],
    rng: &mut R,
) -> Result<AuctionOutcome, CryptoError> {
    let n = encoding.agents();
    if bids.len() != n {
        return Err(CryptoError::LengthMismatch {
            what: "bid vector",
            got: bids.len(),
            expected: n,
        });
    }
    let zq = group.zq();

    // Phase I: pseudonyms (published by the initializer in the real
    // protocol; sampled here).
    let alphas = zq.rand_distinct_nonzero(n, rng);

    // Phase II.1: every agent samples its polynomial quadruple.
    let polys: Vec<BidPolynomials> = bids
        .iter()
        .map(|&b| BidPolynomials::generate(group, encoding, b, rng))
        .collect::<Result<_, _>>()?;

    // Phase II.2–II.3: shares and commitments.
    let commitments: Vec<Commitments> = polys
        .iter()
        .map(|p| Commitments::commit(group, encoding, p))
        .collect();

    // Phase III.1: every agent verifies every received bundle (every
    // receiver checks every sender, itself included).
    for &alpha in &alphas {
        for (poly, comm) in polys.iter().zip(&commitments) {
            let bundle = poly.share_for(&zq, alpha);
            verify_shares(group, comm, alpha, &bundle)?;
        }
    }

    // Phase III.2: publish and validate lambda/psi.
    let pairs: Vec<LambdaPsi> = alphas
        .iter()
        .map(|&a| {
            let e_shares: Vec<u64> = polys.iter().map(|p| p.e().eval(&zq, a)).collect();
            let h_shares: Vec<u64> = polys.iter().map(|p| p.h().eval(&zq, a)).collect();
            compute_lambda_psi(group, &e_shares, &h_shares)
        })
        .collect();
    for (i, (pair, &alpha)) in pairs.iter().zip(&alphas).enumerate() {
        verify_lambda_psi(group, &commitments, i, alpha, pair, None)?;
    }

    // First-price resolution (equation (12)).
    let lambdas: Vec<u64> = pairs.iter().map(|p| p.lambda).collect();
    let first = resolve_min_bid(group, encoding, &alphas, &lambdas)?;

    // Phase III.3: f-share disclosure (equation (13)) and winner
    // identification (equation (14)).
    let needed = encoding.winner_points(first.bid);
    let disclosed_alphas: Vec<u64> = alphas.iter().copied().take(needed).collect();
    for (k, (&alpha, pair)) in disclosed_alphas.iter().zip(&pairs).enumerate() {
        let disclosed: Vec<u64> = polys.iter().map(|p| p.f().eval(&zq, alpha)).collect();
        verify_f_disclosure(group, &commitments, k, alpha, &disclosed, pair.psi)?;
    }
    let f_columns: Vec<Vec<u64>> = polys
        .iter()
        .map(|p| {
            disclosed_alphas
                .iter()
                .map(|&a| p.f().eval(&zq, a))
                .collect()
        })
        .collect();
    let winner = identify_winner(group, encoding, first.bid, &disclosed_alphas, &f_columns)?;

    // Phase III.4: exclusion and second-price resolution (equation (15)).
    // `identify_winner` returns an index into `f_columns`, which has one
    // column per agent, so the lookup cannot miss.
    let winner_poly = polys.get(winner).ok_or(CryptoError::NoWinner)?;
    let excluded: Vec<LambdaPsi> = pairs
        .iter()
        .zip(&alphas)
        .map(|(pair, &alpha)| {
            let e_star = winner_poly.e().eval(&zq, alpha);
            let h_star = winner_poly.h().eval(&zq, alpha);
            exclude_winner(group, pair, e_star, h_star)
        })
        .collect::<Result<_, _>>()?;
    for (i, (pair, &alpha)) in excluded.iter().zip(&alphas).enumerate() {
        verify_lambda_psi(group, &commitments, i, alpha, pair, Some(winner))?;
    }
    let lambdas2: Vec<u64> = excluded.iter().map(|p| p.lambda).collect();
    let second = resolve_min_bid(group, encoding, &alphas, &lambdas2)?;

    Ok(AuctionOutcome {
        winner,
        first_price: first.bid,
        second_price: second.bid,
    })
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn group(seed: u64) -> SchnorrGroup {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        SchnorrGroup::generate(40, 20, &mut rng).unwrap()
    }

    #[test]
    fn auction_matches_plain_vickrey() {
        let g = group(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let encoding = BidEncoding::new(6, 1).unwrap();
        let bids = [4u64, 2, 3, 4, 1, 3];
        let outcome = honest_auction(&g, &encoding, &bids, &mut rng).unwrap();
        assert_eq!(outcome.winner, 4);
        assert_eq!(outcome.first_price, 1);
        assert_eq!(outcome.second_price, 2);
    }

    #[test]
    fn rejects_wrong_bid_count() {
        let g = group(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let encoding = BidEncoding::new(4, 0).unwrap();
        assert!(matches!(
            honest_auction(&g, &encoding, &[1, 2], &mut rng),
            Err(CryptoError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn smallest_network_two_agents() {
        let g = group(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        // n = 2, c = 0: a single bid level W = {1}.
        let encoding = BidEncoding::new(2, 0).unwrap();
        let outcome = honest_auction(&g, &encoding, &[1, 1], &mut rng).unwrap();
        assert_eq!(outcome.winner, 0);
        assert_eq!(outcome.first_price, 1);
        assert_eq!(outcome.second_price, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn distributed_outcome_equals_centralized_vickrey(
            seed in 0u64..10_000,
            n in 3usize..8,
            c in 0usize..2,
        ) {
            prop_assume!(n >= c + 3);
            let g = group(seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(1));
            let encoding = BidEncoding::new(n, c).unwrap();
            let w_max = encoding.w_max();
            let bids: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=w_max)).collect();
            let outcome = honest_auction(&g, &encoding, &bids, &mut rng).unwrap();
            // Centralized reference.
            let min = *bids.iter().min().unwrap();
            let winner = bids.iter().position(|&b| b == min).unwrap();
            let second = bids.iter().enumerate()
                .filter(|&(i, _)| i != winner)
                .map(|(_, &b)| b).min().unwrap();
            prop_assert_eq!(outcome.winner, winner);
            prop_assert_eq!(outcome.first_price, min);
            prop_assert_eq!(outcome.second_price, second);
        }
    }
}
