//! Error types for the DMW cryptographic layer.

use std::error::Error;
use std::fmt;

/// Errors produced by the `dmw-crypto` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A bid was outside the discrete bid set `W = {1, …, w_max}`.
    BidOutOfRange {
        /// The rejected bid.
        bid: u64,
        /// The largest admissible bid `w_max = n − c − 1`.
        w_max: u64,
    },
    /// The `(n, c)` pair cannot form an encoding (`n ≥ c + 2` and `n ≥ 2`
    /// are required so that at least one bid level exists).
    InvalidEncoding {
        /// Number of agents.
        agents: usize,
        /// Fault threshold.
        faults: usize,
    },
    /// The subgroup order `q` is too small for the encoding (`σ` distinct
    /// non-zero pseudonyms plus exponent arithmetic need `q > n + 1`).
    GroupTooSmall {
        /// The subgroup order.
        q: u64,
        /// Minimum required order.
        required: u64,
    },
    /// A received share bundle failed verification against the sender's
    /// commitments — equations (7), (8) or (9).
    ShareVerificationFailed {
        /// Which equation failed first (7, 8 or 9).
        equation: u8,
    },
    /// A published `(Λ_i, Ψ_i)` pair is inconsistent with the commitments —
    /// equation (11).
    LambdaPsiInvalid {
        /// Index of the offending agent.
        agent: usize,
    },
    /// Degree resolution failed: no candidate degree satisfied the
    /// interpolation identity (equation (12)). Under honest execution this
    /// happens only with probability `≈ |W|/q`.
    ResolutionFailed,
    /// Disclosed `f`-shares failed the aggregate consistency check of
    /// equation (13) at some point.
    DisclosureInvalid {
        /// Index of the share point whose aggregate check failed.
        point: usize,
    },
    /// No agent's disclosed polynomial resolved to the winning degree
    /// (equation (14)) — inconsistent disclosures or a protocol violation.
    NoWinner,
    /// A vector had the wrong length for the encoding (commitment vectors
    /// must have exactly `σ` entries; share/pseudonym vectors `n`).
    LengthMismatch {
        /// What was being validated.
        what: &'static str,
        /// The observed length.
        got: usize,
        /// The required length.
        expected: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BidOutOfRange { bid, w_max } => {
                write!(f, "bid {bid} outside the discrete bid set 1..={w_max}")
            }
            CryptoError::InvalidEncoding { agents, faults } => {
                write!(
                    f,
                    "no bid encoding exists for n = {agents} agents with c = {faults} faults (need n >= c + 2)"
                )
            }
            CryptoError::GroupTooSmall { q, required } => {
                write!(f, "subgroup order {q} too small, need at least {required}")
            }
            CryptoError::ShareVerificationFailed { equation } => {
                write!(
                    f,
                    "share bundle inconsistent with commitments (equation ({equation}))"
                )
            }
            CryptoError::LambdaPsiInvalid { agent } => {
                write!(
                    f,
                    "published lambda/psi of agent {agent} fails equation (11)"
                )
            }
            CryptoError::ResolutionFailed => {
                write!(
                    f,
                    "polynomial degree resolution failed for every candidate bid"
                )
            }
            CryptoError::DisclosureInvalid { point } => {
                write!(
                    f,
                    "disclosed f-shares fail equation (13) at point index {point}"
                )
            }
            CryptoError::NoWinner => {
                write!(
                    f,
                    "no disclosed polynomial matches the winning degree (equation (14))"
                )
            }
            CryptoError::LengthMismatch {
                what,
                got,
                expected,
            } => {
                write!(f, "{what} has length {got}, expected {expected}")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_well_behaved() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<CryptoError>();
        assert!(CryptoError::ResolutionFailed
            .to_string()
            .contains("degree resolution"));
        assert!(!format!("{:?}", CryptoError::NoWinner).is_empty());
    }
}
