//! The per-agent secret polynomials of Phase II.
//!
//! For each task auction an agent with bid `y` samples four random
//! polynomials over `Z_q`, all with zero constant term (Phase II.1,
//! equations (3)–(4)):
//!
//! | polynomial | degree      | role                                        |
//! |------------|-------------|---------------------------------------------|
//! | `e`        | `τ = σ − y` | carries the bid in its degree                |
//! | `f`        | `σ − τ = y` | complementary witness, disclosed to prove a win |
//! | `g`        | `σ`         | blinds the `O` commitments to `e·f`          |
//! | `h`        | `σ`         | blinds the `Q`/`R` commitments and `Ψ`       |
//!
//! The agent sends agent `k` the private [`ShareBundle`]
//! `(e(α_k), f(α_k), g(α_k), h(α_k))` and publishes the Pedersen
//! commitments of [`crate::commitments`].

use crate::encoding::BidEncoding;
use crate::error::CryptoError;
use dmw_modmath::{Poly, PrimeField, SchnorrGroup};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The four private evaluations an agent sends to one peer (Phase II.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShareBundle {
    /// `e(α_k)` — bid polynomial share.
    pub e: u64,
    /// `f(α_k)` — witness polynomial share.
    pub f: u64,
    /// `g(α_k)` — blinding share for the `O` commitments.
    pub g: u64,
    /// `h(α_k)` — blinding share for the `Q`/`R` commitments and `Ψ`.
    pub h: u64,
}

/// An agent's secret polynomial quadruple for one task auction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BidPolynomials {
    bid: u64,
    tau: usize,
    e: Poly,
    f: Poly,
    g: Poly,
    h: Poly,
}

impl BidPolynomials {
    /// Samples the quadruple encoding `bid` under `encoding`, with
    /// coefficients in the exponent field `Z_q` of `group`.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::BidOutOfRange`] for a bid outside `W`;
    /// * [`CryptoError::GroupTooSmall`] when `q` cannot host the encoding.
    pub fn generate<R: Rng + ?Sized>(
        group: &SchnorrGroup,
        encoding: &BidEncoding,
        bid: u64,
        rng: &mut R,
    ) -> Result<Self, CryptoError> {
        if group.q() < encoding.min_group_order() {
            return Err(CryptoError::GroupTooSmall {
                q: group.q(),
                required: encoding.min_group_order(),
            });
        }
        let tau = encoding.degree_of_bid(bid)?;
        let sigma = encoding.sigma();
        let zq = group.zq();
        Ok(BidPolynomials {
            bid,
            tau,
            e: Poly::random_zero_constant(&zq, tau, rng),
            f: Poly::random_zero_constant(&zq, sigma - tau, rng),
            g: Poly::random_zero_constant(&zq, sigma, rng),
            h: Poly::random_zero_constant(&zq, sigma, rng),
        })
    }

    /// The encoded bid `y`.
    pub fn bid(&self) -> u64 {
        self.bid
    }

    /// The bid's degree encoding `τ = σ − y`.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The bid polynomial `e` (degree `τ`).
    pub fn e(&self) -> &Poly {
        &self.e
    }

    /// The witness polynomial `f` (degree `σ − τ = y`).
    pub fn f(&self) -> &Poly {
        &self.f
    }

    /// The blinding polynomial `g` (degree `σ`).
    pub fn g(&self) -> &Poly {
        &self.g
    }

    /// The blinding polynomial `h` (degree `σ`).
    pub fn h(&self) -> &Poly {
        &self.h
    }

    /// The share bundle destined for the agent with pseudonym `alpha`
    /// (Phase II.2).
    pub fn share_for(&self, zq: &PrimeField, alpha: u64) -> ShareBundle {
        ShareBundle {
            e: self.e.eval(zq, alpha),
            f: self.f.eval(zq, alpha),
            g: self.g.eval(zq, alpha),
            h: self.h.eval(zq, alpha),
        }
    }

    /// Share bundles for every pseudonym, in order.
    pub fn shares_for_all(&self, zq: &PrimeField, alphas: &[u64]) -> Vec<ShareBundle> {
        alphas.iter().map(|&a| self.share_for(zq, a)).collect()
    }

    /// The product polynomial `e(x)·f(x)` of degree `σ` whose coefficients
    /// `v_2 … v_σ` (with `v_0 = v_1 = 0`) are committed in the `O` vector
    /// (Phase II.2, equation (5)).
    pub fn ef_product(&self, zq: &PrimeField) -> Poly {
        self.e.mul(zq, &self.f)
    }

    /// Deliberately corrupts the constructed polynomials (replaces `e` by a
    /// fresh polynomial of a *different* degree while keeping commitments
    /// computed from the originals). Used by deviation strategies in tests
    /// and faithfulness experiments; an honest agent never calls this.
    pub fn with_substituted_e(
        mut self,
        zq: &PrimeField,
        degree: usize,
        rng: &mut impl Rng,
    ) -> Self {
        self.e = Poly::random_zero_constant(zq, degree, rng);
        self
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (SchnorrGroup, BidEncoding, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(321);
        let group = SchnorrGroup::generate(40, 16, &mut rng).unwrap();
        let encoding = BidEncoding::new(6, 1).unwrap();
        (group, encoding, rng)
    }

    #[test]
    fn degrees_follow_the_encoding() {
        let (group, encoding, mut rng) = setup();
        for bid in encoding.bid_set() {
            let p = BidPolynomials::generate(&group, &encoding, bid, &mut rng).unwrap();
            assert_eq!(p.bid(), bid);
            assert_eq!(p.e().degree(), Some(encoding.degree_of_bid(bid).unwrap()));
            assert_eq!(p.f().degree(), Some(encoding.f_degree_of_bid(bid).unwrap()));
            assert_eq!(p.g().degree(), Some(encoding.sigma()));
            assert_eq!(p.h().degree(), Some(encoding.sigma()));
            assert_eq!(p.tau() + p.f().degree().unwrap(), encoding.sigma());
        }
    }

    #[test]
    fn all_polynomials_have_zero_constant() {
        let (group, encoding, mut rng) = setup();
        let p = BidPolynomials::generate(&group, &encoding, 2, &mut rng).unwrap();
        let zq = group.zq();
        for poly in [p.e(), p.f(), p.g(), p.h()] {
            assert!(poly.has_zero_constant());
            assert_eq!(poly.eval(&zq, 0), 0);
        }
    }

    #[test]
    fn rejects_out_of_range_bids() {
        let (group, encoding, mut rng) = setup();
        assert!(matches!(
            BidPolynomials::generate(&group, &encoding, 0, &mut rng),
            Err(CryptoError::BidOutOfRange { .. })
        ));
        assert!(matches!(
            BidPolynomials::generate(&group, &encoding, encoding.w_max() + 1, &mut rng),
            Err(CryptoError::BidOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_tiny_groups() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let group = SchnorrGroup::generate_with_order(8, 5, &mut rng).unwrap();
        let encoding = BidEncoding::new(6, 1).unwrap();
        assert!(matches!(
            BidPolynomials::generate(&group, &encoding, 1, &mut rng),
            Err(CryptoError::GroupTooSmall { .. })
        ));
    }

    #[test]
    fn shares_are_evaluations() {
        let (group, encoding, mut rng) = setup();
        let zq = group.zq();
        let p = BidPolynomials::generate(&group, &encoding, 3, &mut rng).unwrap();
        let alphas = zq.rand_distinct_nonzero(encoding.agents(), &mut rng);
        let bundles = p.shares_for_all(&zq, &alphas);
        assert_eq!(bundles.len(), 6);
        for (&a, b) in alphas.iter().zip(&bundles) {
            assert_eq!(b.e, p.e().eval(&zq, a));
            assert_eq!(b.f, p.f().eval(&zq, a));
            assert_eq!(b.g, p.g().eval(&zq, a));
            assert_eq!(b.h, p.h().eval(&zq, a));
        }
    }

    #[test]
    fn ef_product_has_degree_sigma_and_double_zero_root() {
        let (group, encoding, mut rng) = setup();
        let zq = group.zq();
        let p = BidPolynomials::generate(&group, &encoding, 2, &mut rng).unwrap();
        let ef = p.ef_product(&zq);
        assert_eq!(ef.degree(), Some(encoding.sigma()));
        assert_eq!(ef.coeff(0), 0);
        assert_eq!(ef.coeff(1), 0);
    }

    #[test]
    fn substitution_changes_degree() {
        let (group, encoding, mut rng) = setup();
        let zq = group.zq();
        let p = BidPolynomials::generate(&group, &encoding, 2, &mut rng).unwrap();
        let corrupted = p.with_substituted_e(&zq, 2, &mut rng);
        assert_eq!(corrupted.e().degree(), Some(2));
    }
}
