//! Cryptographic primitives of the **Distributed MinWork** auction
//! (Section 3 of Carroll & Grosu, JPDC 2011).
//!
//! One DMW task auction proceeds, per agent, through the objects of this
//! crate:
//!
//! 1. [`encoding::BidEncoding`] fixes the public discretization: the bid set
//!    `W`, the polynomial size parameter `σ` and the bid↔degree map
//!    `τ = σ − y`.
//! 2. [`polynomials::BidPolynomials`] samples the four random zero-constant
//!    polynomials `(e, f, g, h)` of Phase II.1 that encode a bid in the
//!    *degree* of `e` (inversely: low bid ⇒ high degree).
//! 3. [`polynomials::ShareBundle`] carries the evaluations
//!    `(e(α_k), f(α_k), g(α_k), h(α_k))` sent privately to agent `k`
//!    (Phase II.2), and [`commitments::Commitments`] the published Pedersen
//!    vectors `O, Q, R` (Phase II.3, equation (6)).
//! 4. [`commitments::verify_shares`] checks a received bundle against the
//!    sender's commitments — equations (7)–(9) (Phase III.1).
//! 5. [`resolution`] implements the public blackboard math of Phases
//!    III.2–III.4: validation of the published `Λ_i = z1^{E(α_i)}`,
//!    `Ψ_i = z2^{H(α_i)}` (equation (11)), first-price resolution in the
//!    exponent (equation (12)), winner identification from disclosed
//!    `f`-shares (equations (13)–(14)) and second-price resolution after
//!    excluding the winner (equation (15)).
//!
//! The crate is *transport-agnostic*: it contains no networking. The `dmw`
//! crate drives these primitives over a simulated network and adds the
//! strategy/deviation layer.
//!
//! # Example: one complete auction on a blackboard
//!
//! ```
//! use dmw_crypto::encoding::BidEncoding;
//! use dmw_crypto::blackboard::honest_auction;
//! use dmw_modmath::SchnorrGroup;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let group = SchnorrGroup::generate(40, 16, &mut rng)?;
//! let encoding = BidEncoding::new(5, 1)?; // n = 5 agents, c = 1 fault
//! let bids = [3, 1, 2, 3, 2];
//! let outcome = honest_auction(&group, &encoding, &bids, &mut rng)?;
//! assert_eq!(outcome.winner, 1);        // lowest bid
//! assert_eq!(outcome.first_price, 1);
//! assert_eq!(outcome.second_price, 2);  // what the winner is paid
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Protocol cryptography must not panic or silently truncate: failures
// surface as `CryptoError`, and the workspace-level `warn` on these
// lints escalates to a hard failure here (tests are exempted at each
// `mod tests`). The dmw-lint pass enforces the complementary token-level
// rules; see docs/static_analysis.md.
#![deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::cast_possible_truncation
)]

pub mod blackboard;
pub mod commitments;
pub mod encoding;
pub mod error;
pub mod polynomials;
pub mod resolution;

pub use commitments::Commitments;
pub use encoding::BidEncoding;
pub use error::CryptoError;
pub use polynomials::{BidPolynomials, ShareBundle};
