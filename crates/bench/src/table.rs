//! Markdown-ish table rendering shared by every experiment.

use dmw_obs::MetricsSnapshot;

/// A rendered experiment: a title, explanatory notes, and one or more
/// tables.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment title.
    pub title: String,
    /// Free-form notes printed under the title.
    pub notes: Vec<String>,
    /// Tables: `(caption, header, rows)`.
    pub tables: Vec<(String, Vec<String>, Vec<Vec<String>>)>,
    /// Deterministic metrics aggregated over the experiment's runs, when
    /// the experiment collects them. `reproduce --metrics <out.json>`
    /// merges these across every selected experiment; rendering ignores
    /// them so report text stays unchanged.
    pub metrics: Option<MetricsSnapshot>,
}

impl Report {
    /// Creates an empty report with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Adds a note line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Attaches the experiment's aggregated metrics snapshot.
    pub fn attach_metrics(&mut self, metrics: MetricsSnapshot) {
        self.metrics = Some(metrics);
    }

    /// Adds a table.
    pub fn table(&mut self, caption: impl Into<String>, header: &[&str], rows: Vec<Vec<String>>) {
        self.tables.push((
            caption.into(),
            header.iter().map(|s| s.to_string()).collect(),
            rows,
        ));
    }

    /// Renders the full report as markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        for note in &self.notes {
            out.push_str(&format!("{note}\n"));
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        for (caption, header, rows) in &self.tables {
            if !caption.is_empty() {
                out.push_str(&format!("**{caption}**\n\n"));
            }
            out.push_str(&render_table(header, rows));
            out.push('\n');
        }
        out
    }
}

/// Renders one markdown table with padded columns.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    let mut out = fmt(header);
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt(&sep));
    for row in rows {
        out.push_str(&fmt(row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_title_notes_and_tables() {
        let mut r = Report::new("demo");
        r.note("a note");
        r.table("numbers", &["x", "y"], vec![vec!["1".into(), "2".into()]]);
        let s = r.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("a note"));
        assert!(s.contains("**numbers**"));
        assert!(s.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }
}
