//! EQUIV — correctness of the distribution (§3): DMW computes exactly the
//! centralized MinWork outcome (allocation and payments) on every
//! instance.

use super::{config, random_bids, rng};
use crate::table::Report;
use dmw::runner::DmwRunner;
use dmw_mechanism::{MinWork, TieBreak};

/// Builds the equivalence report.
pub fn run(seed: u64) -> Report {
    let mut r = rng(seed);
    let mut report = Report::new("DMW ≡ centralized MinWork (outcome equivalence)");
    report.note("Identical schedule and payment vector required on every run; ties broken to the smallest pseudonym in both.");

    let mut rows = Vec::new();
    for &(n, c, m, trials) in &[
        (4usize, 0usize, 2usize, 20u32),
        (6, 1, 3, 20),
        (8, 2, 4, 15),
    ] {
        let mut matches = 0u32;
        for _ in 0..trials {
            let cfg = config(n, c, &mut r);
            let bids = random_bids(&cfg, m, &mut r);
            let centralized = MinWork::new(TieBreak::LowestIndex)
                .run(&bids)
                .expect("valid matrix");
            let run = DmwRunner::new(cfg)
                .run_honest(&bids, &mut r)
                .expect("valid run");
            let distributed = run.completed().expect("honest run completes");
            if distributed.schedule == centralized.schedule
                && distributed.payments == centralized.payments
            {
                matches += 1;
            }
        }
        rows.push(vec![
            format!("n={n}, c={c}, m={m}"),
            format!("{matches}/{trials}"),
        ]);
    }
    report.table(
        "equivalence runs",
        &["configuration", "identical outcomes"],
        rows,
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_runs_match() {
        let report = super::run(71);
        let (_, _, rows) = &report.tables[0];
        for row in rows {
            let parts: Vec<&str> = row[1].split('/').collect();
            assert_eq!(parts[0], parts[1], "non-equivalent runs: {row:?}");
        }
    }
}
