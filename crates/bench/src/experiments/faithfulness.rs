//! THM-faith — Theorems 4–5: DMW is a faithful implementation.
//!
//! Every protocol deviation in the catalogue, run against random
//! instances: the deviator's utility never exceeds the suggested
//! strategy's, and the table records how each deviation ends (detected
//! and aborted, tolerated as silence, or outvoted).

use super::{config, random_bids, rng};
use crate::table::Report;
use dmw::audit::faithfulness_table;

/// Builds the faithfulness report: per-deviation aggregates over
/// `instances` random instances.
pub fn run(seed: u64) -> Report {
    let mut r = rng(seed);
    let n = 6;
    let c = 2;
    let m = 2;
    let instances = 10u32;
    let mut report = Report::new("Theorems 4–5 — faithfulness of DMW (deviation playbook)");
    report.note(format!(
        "{instances} random instances, n = {n}, c = {c}, m = {m}; one deviator (agent 2). \
         Faithfulness predicts max(U_dev − U_sugg) ≤ 0 on every row."
    ));

    // label -> (completions, max advantage, example abort)
    let mut agg: Vec<(&'static str, u32, i128, Option<String>)> = Vec::new();
    for i in 0..instances {
        let cfg = config(n, c, &mut r);
        let truth = random_bids(&cfg, m, &mut r);
        let rows = faithfulness_table(&cfg, &truth, 1, &mut r).expect("valid run");
        for row in rows {
            let advantage = row.deviating_utility - row.suggested_utility;
            match agg.iter_mut().find(|(l, ..)| *l == row.behavior) {
                Some((_, completions, max_adv, abort)) => {
                    *completions += u32::from(row.completed);
                    *max_adv = (*max_adv).max(advantage);
                    if abort.is_none() {
                        *abort = row.abort.clone();
                    }
                }
                None => agg.push((
                    row.behavior,
                    u32::from(row.completed),
                    advantage,
                    row.abort.clone(),
                )),
            }
        }
        let _ = i;
    }

    let rows: Vec<Vec<String>> = agg
        .iter()
        .map(|(label, completions, max_adv, abort)| {
            vec![
                label.to_string(),
                format!("{completions}/{instances}"),
                max_adv.to_string(),
                if *max_adv <= 0 {
                    "yes".into()
                } else {
                    "NO".into()
                },
                abort.clone().unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    report.table(
        "per-deviation aggregate",
        &[
            "deviation",
            "runs completed",
            "max(U_dev − U_sugg)",
            "faithful?",
            "detected as (example)",
        ],
        rows,
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_row_is_faithful() {
        let report = super::run(31);
        let (_, _, rows) = &report.tables[0];
        for row in rows {
            assert_eq!(row[3], "yes", "unfaithful row: {row:?}");
        }
    }
}
