//! SCALE — the n-sweep behind `BENCH_scale.json`: how one protocol run
//! scales with the number of agents, and what the discrete-event
//! scheduler buys over the poll-every-tick oracle.
//!
//! Each sweep point runs up to three workloads on the lockstep
//! transport:
//!
//! * **honest** — a clean run, the paper's six synchronous rounds: all
//!   work, no dead air, so the event engine processes every tick and
//!   the point measures pure per-tick protocol cost (crypto dominates;
//!   the per-run work grows like `m·n³`–`m·n⁴` because the encoding
//!   degree σ equals `n`);
//! * **backoff** — recovery mode with a deep retry budget and one
//!   mid-protocol crash: the run's length is the retransmission
//!   backoff horizon (`base·2^budget` ticks of mostly idle waiting),
//!   which is exactly the shape the event engine was built for. The
//!   point records both `run_ticks` (simulated time) and
//!   `events_processed` (scheduler activations); their ratio is the
//!   idle fraction the event engine skips;
//! * **silence** — every node crashed from round 0, a fixed two tasks:
//!   the bidding broadcasts are all tombstoned at enqueue, nothing is
//!   ever delivered, and every agent sits out its patience window
//!   before aborting. This is a pure *scheduler-saturation* workload —
//!   no useful mechanism work, maximal idle air — and it is cheap by
//!   construction, so it carries the sweep to `n = 1024` where a full
//!   protocol run is infeasible on one host (hours of `Θ(m·n³)` share
//!   verification, and tens of gigabytes of in-flight commitment
//!   broadcasts).
//!
//! The honest and backoff workloads run only up to
//! [`ScaleBaseline::protocol_ceiling`] agents; beyond it the point
//! records `null` rather than silently extrapolating, and the silence
//! workload is the curve that continues. Up to
//! [`ScaleBaseline::oracle_ceiling`] agents the backoff workload is
//! re-run under `Engine::Polling` and the artifacts cross-checked
//! bit-for-bit (the same contract `tests/tests/event_parity.rs` pins);
//! the cheap silence workload is oracle-checked at *every* point, so
//! the committed baseline proves bit parity through `n = 1024`.
//!
//! [`ScaleBaseline::to_json`] emits the `dmw-bench-scale/v1` schema
//! documented in `docs/benchmarks.md`.

use super::{config, rng};
use dmw::reliable::RetryPolicy;
use dmw::runner::{DmwRun, DmwRunner, Engine};
use dmw::Behavior;
use dmw_mechanism::ExecutionTimes;
use dmw_obs::Key;
use dmw_simnet::{FaultPlan, NodeId};
use std::time::Instant;

/// The retry policy of the backoff workload: a deep budget whose
/// worst-case repair horizon (`4·2⁶ = 256` ticks) dwarfs the six active
/// protocol rounds, so the run is dominated by idle waiting.
pub const BACKOFF_POLICY: RetryPolicy = RetryPolicy {
    base_timeout: 4,
    budget: 6,
};

/// Task count of the silence workload — fixed so the (discarded)
/// bidding prologue stays flat across the sweep and the point measures
/// the scheduler, not the mechanism.
pub const SILENCE_TASKS: usize = 2;

/// Patience window of the silence workload: every agent waits this
/// many ticks for commitments that never arrive before aborting, so a
/// silence run is ~`SILENCE_PATIENCE` ticks of which only a handful
/// activate.
pub const SILENCE_PATIENCE: u64 = 256;

/// One requested sweep point: `n` agents bidding on `m` tasks,
/// measured over `trials` independent runs (more at small `n`, where a
/// single run is too fast to time honestly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleShape {
    /// Agents `n`.
    pub agents: usize,
    /// Tasks `m` (protocol workloads; silence pins [`SILENCE_TASKS`]).
    pub tasks: usize,
    /// Runs to time (each with its own bid matrix).
    pub trials: usize,
}

/// The default sweep: `n` doubling 8 → 1024 with the task count
/// growing alongside (`m = max(2, n/32)`), trials thinning as the runs
/// get heavier.
pub fn default_shapes() -> Vec<ScaleShape> {
    [8usize, 64, 256, 1024]
        .into_iter()
        .map(|agents| ScaleShape {
            agents,
            tasks: (agents / 32).max(2),
            trials: (64 / agents).max(1),
        })
        .collect()
}

/// One timed workload at one sweep point. Everything but `wall_secs`
/// is deterministic (it comes from the run artifacts, summed over the
/// point's trials).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadTiming {
    /// Wall-clock seconds over all trials.
    pub wall_secs: f64,
    /// Simulated ticks, summed over trials (`run_ticks` gauge).
    pub run_ticks: u64,
    /// Scheduler activations, summed over trials (`events_processed`
    /// gauge) — equals `run_ticks` for the polling engine, and for any
    /// run with no idle air.
    pub events_processed: u64,
    /// Point-to-point messages, summed over trials.
    pub messages: u64,
    /// Wire bytes, summed over trials.
    pub bytes: u64,
}

/// One measured sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// The requested shape.
    pub shape: ScaleShape,
    /// The clean six-round workload under the event engine — `None`
    /// above the protocol ceiling.
    pub honest: Option<WorkloadTiming>,
    /// The crash-plus-deep-backoff recovery workload under the event
    /// engine — `None` above the protocol ceiling.
    pub backoff: Option<WorkloadTiming>,
    /// Wall-clock of the identical backoff workload under the polling
    /// oracle — `None` above the oracle (or protocol) ceiling.
    pub backoff_polling_wall_secs: Option<f64>,
    /// The all-crashed scheduler-saturation workload under the event
    /// engine — measured at every point.
    pub silence: WorkloadTiming,
    /// Wall-clock of the identical silence workload under the polling
    /// oracle — always measured (the workload is cheap by design).
    pub silence_polling_wall_secs: f64,
    /// Whether every oracle re-run at this point matched the event
    /// engine's artifacts bit-for-bit (modulo the `events_processed`
    /// gauge). The silence oracle always contributes; the backoff
    /// oracle contributes up to the oracle ceiling.
    pub bit_identical: bool,
}

/// A measured scale sweep: the artifact `BENCH_scale.json` records.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleBaseline {
    /// The sweep seed (each point's bids derive from it).
    pub seed: u64,
    /// Largest `n` at which the full-protocol workloads (honest,
    /// backoff) run at all — beyond it a single run costs hours of
    /// crypto on one core, so the point records `null`.
    pub protocol_ceiling: usize,
    /// Largest `n` at which the polling oracle re-runs the backoff
    /// workload for the wall-clock comparison and the bit-parity check.
    pub oracle_ceiling: usize,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_parallelism: usize,
    /// The measured points, in sweep order.
    pub points: Vec<ScalePoint>,
}

/// Sums the deterministic artifact counters of one batch of runs into
/// a [`WorkloadTiming`] (the caller supplies the wall clock).
fn timing(runs: &[DmwRun], wall_secs: f64) -> WorkloadTiming {
    WorkloadTiming {
        wall_secs,
        run_ticks: runs
            .iter()
            .map(|r| r.metrics.gauge(&Key::named("run_ticks")))
            .sum(),
        events_processed: runs
            .iter()
            .map(|r| r.metrics.gauge(&Key::named("events_processed")))
            .sum(),
        messages: runs.iter().map(|r| r.network.point_to_point).sum(),
        bytes: runs.iter().map(|r| r.network.bytes).sum(),
    }
}

/// Bit-parity between matched event/polling runs, ignoring only the
/// engine-dependent `events_processed` gauge.
fn runs_identical(event: &[DmwRun], polling: &[DmwRun]) -> bool {
    event.len() == polling.len()
        && event.iter().zip(polling).all(|(e, p)| {
            e.result == p.result
                && e.network == p.network
                && e.trace == p.trace
                && e.metrics.clone().without_metric("events_processed")
                    == p.metrics.clone().without_metric("events_processed")
        })
}

/// Runs every shape through its workloads and returns the measured
/// sweep. Deterministic in everything but wall clock.
///
/// # Panics
///
/// Panics on invalid shapes or failed runs — harness callers pass
/// valid sweeps.
pub fn measure_scale(
    seed: u64,
    shapes: &[ScaleShape],
    oracle_ceiling: usize,
    protocol_ceiling: usize,
) -> ScaleBaseline {
    let points = shapes
        .iter()
        .map(|&shape| {
            let n = shape.agents;
            let mut r = rng(seed ^ n as u64);
            let cfg = config(n, 1, &mut r);
            let behaviors = vec![Behavior::Suggested; n];

            let run_all = |runner: &DmwRunner,
                           bids: &[ExecutionTimes],
                           faults: &FaultPlan|
             -> (Vec<DmwRun>, f64) {
                let started = Instant::now();
                let runs: Vec<DmwRun> = bids
                    .iter()
                    .map(|b| {
                        runner
                            .run(b, &behaviors, faults.clone(), &mut rng(seed ^ 0xACE))
                            .expect("valid sweep run")
                    })
                    .collect();
                (runs, started.elapsed().as_secs_f64())
            };

            let (honest, backoff, backoff_polling_wall_secs, backoff_identical) =
                if n <= protocol_ceiling {
                    let bids: Vec<ExecutionTimes> = (0..shape.trials)
                        .map(|_| super::random_bids(&cfg, shape.tasks, &mut r))
                        .collect();
                    // The crash lands on tick 4 — late enough that the
                    // victim has bid (so the survivors must vote it out
                    // and re-auction its tasks), early enough that its
                    // silence matters.
                    let crash = FaultPlan::none(n).crash_at(NodeId(n / 2), 4);
                    let honest_runner = DmwRunner::new(cfg.clone());
                    let backoff_runner =
                        DmwRunner::new(cfg.clone()).with_recovery_policy(BACKOFF_POLICY);

                    let (honest_runs, honest_wall) =
                        run_all(&honest_runner, &bids, &FaultPlan::none(n));
                    let (event_runs, event_wall) = run_all(&backoff_runner, &bids, &crash);

                    let (polling_wall, identical) = if n <= oracle_ceiling {
                        let polling_runner = backoff_runner.clone().with_engine(Engine::Polling);
                        let (polling_runs, polling_wall) = run_all(&polling_runner, &bids, &crash);
                        (
                            Some(polling_wall),
                            runs_identical(&event_runs, &polling_runs),
                        )
                    } else {
                        (None, true)
                    };
                    (
                        Some(timing(&honest_runs, honest_wall)),
                        Some(timing(&event_runs, event_wall)),
                        polling_wall,
                        identical,
                    )
                } else {
                    (None, None, None, true)
                };

            // Silence: every node crashed before it can deliver a single
            // message; each agent bids into the void, waits out its
            // patience for commitments that never arrive, and aborts.
            let silence_bids = vec![super::random_bids(&cfg, SILENCE_TASKS, &mut r)];
            let all_crashed = (0..n).fold(FaultPlan::none(n), |plan, node| {
                plan.crash_at(NodeId(node), 0)
            });
            let silence_runner = DmwRunner::new(cfg)
                .with_patience(SILENCE_PATIENCE)
                .with_round_budget(SILENCE_PATIENCE * 4);
            let (silence_runs, silence_wall) =
                run_all(&silence_runner, &silence_bids, &all_crashed);
            let (silence_polling_runs, silence_polling_wall) = run_all(
                &silence_runner.clone().with_engine(Engine::Polling),
                &silence_bids,
                &all_crashed,
            );
            let silence_identical = runs_identical(&silence_runs, &silence_polling_runs);

            ScalePoint {
                shape,
                honest,
                backoff,
                backoff_polling_wall_secs,
                silence: timing(&silence_runs, silence_wall),
                silence_polling_wall_secs: silence_polling_wall,
                bit_identical: backoff_identical && silence_identical,
            }
        })
        .collect();
    ScaleBaseline {
        seed,
        protocol_ceiling,
        oracle_ceiling,
        host_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        points,
    }
}

impl ScaleBaseline {
    /// `true` when every oracle-checked point was bit-identical.
    pub fn all_bit_identical(&self) -> bool {
        self.points.iter().all(|p| p.bit_identical)
    }

    /// Serializes to the `dmw-bench-scale/v1` JSON schema (see
    /// `docs/benchmarks.md`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dmw-bench-scale/v1\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"protocol_ceiling\": {},\n",
            self.protocol_ceiling
        ));
        out.push_str(&format!("  \"oracle_ceiling\": {},\n", self.oracle_ceiling));
        out.push_str("  \"host\": {\n");
        out.push_str(&format!("    \"os\": \"{}\",\n", std::env::consts::OS));
        out.push_str(&format!(
            "    \"available_parallelism\": {}\n",
            self.host_parallelism
        ));
        out.push_str("  },\n");
        out.push_str("  \"points\": [\n");
        let rows: Vec<String> = self.points.iter().map(point_json).collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str(&format!(
            "  \"bit_identical_vs_polling_oracle\": {}\n",
            self.all_bit_identical()
        ));
        out.push_str("}\n");
        out
    }
}

/// One point of the schema's `points` array.
fn point_json(point: &ScalePoint) -> String {
    let workload = |w: &WorkloadTiming| {
        format!(
            "{{ \"wall_secs\": {:.6}, \"run_ticks\": {}, \"events_processed\": {}, \
             \"messages\": {}, \"bytes\": {} }}",
            w.wall_secs, w.run_ticks, w.events_processed, w.messages, w.bytes
        )
    };
    let optional = |w: &Option<WorkloadTiming>| match w {
        Some(w) => workload(w),
        None => "null".to_owned(),
    };
    let oracle = match point.backoff_polling_wall_secs {
        Some(secs) => format!("{secs:.6}"),
        None => "null".to_owned(),
    };
    format!(
        "    {{\n      \"agents\": {}, \"tasks\": {}, \"trials\": {},\n      \
         \"honest\": {},\n      \"backoff\": {},\n      \
         \"backoff_polling_wall_secs\": {},\n      \
         \"silence\": {},\n      \
         \"silence_polling_wall_secs\": {:.6},\n      \"bit_identical\": {}\n    }}",
        point.shape.agents,
        point.shape.tasks,
        point.shape.trials,
        optional(&point.honest),
        optional(&point.backoff),
        oracle,
        workload(&point.silence),
        point.silence_polling_wall_secs,
        point.bit_identical
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_point_measures_all_workloads_and_matches_the_oracle() {
        let shapes = [ScaleShape {
            agents: 8,
            tasks: 2,
            trials: 2,
        }];
        let baseline = measure_scale(3, &shapes, 8, 8);
        assert_eq!(baseline.points.len(), 1);
        let point = &baseline.points[0];
        assert!(point.bit_identical, "event engine must match the oracle");
        assert!(point.backoff_polling_wall_secs.is_some());
        let honest = point.honest.expect("below the protocol ceiling");
        let backoff = point.backoff.expect("below the protocol ceiling");
        // Honest lockstep runs have no dead air: every tick activates.
        assert_eq!(honest.events_processed, honest.run_ticks);
        // The backoff workload is mostly dead air: the event engine
        // must activate on well under half its ticks.
        assert!(
            backoff.events_processed * 2 < backoff.run_ticks,
            "expected idle skipping, got {}/{} activations",
            backoff.events_processed,
            backoff.run_ticks
        );
        assert!(honest.messages > 0);
    }

    #[test]
    fn silence_workload_is_almost_entirely_skipped_idle_air() {
        let shapes = [ScaleShape {
            agents: 8,
            tasks: 2,
            trials: 1,
        }];
        // Protocol ceiling 0: only the silence workload runs, exactly
        // what the top of the sweep records.
        let baseline = measure_scale(6, &shapes, 0, 0);
        let point = &baseline.points[0];
        assert_eq!(point.honest, None);
        assert_eq!(point.backoff, None);
        assert_eq!(point.backoff_polling_wall_secs, None);
        assert!(point.bit_identical, "silence runs are oracle-checked");
        // Every agent waits out its patience window in silence: the run
        // spans hundreds of ticks but only a handful activate.
        assert!(
            point.silence.run_ticks >= SILENCE_PATIENCE,
            "silence runs span the patience window, got {} ticks",
            point.silence.run_ticks
        );
        assert!(
            point.silence.events_processed * 10 < point.silence.run_ticks,
            "expected near-total idle skipping, got {}/{} activations",
            point.silence.events_processed,
            point.silence.run_ticks
        );
        // Nothing is ever delivered, but the doomed sends are still
        // counted — the tombstones keep the books.
        assert!(point.silence.messages > 0);
    }

    #[test]
    fn above_the_oracle_ceiling_the_comparison_is_null_not_fabricated() {
        let shapes = [ScaleShape {
            agents: 8,
            tasks: 2,
            trials: 1,
        }];
        let baseline = measure_scale(4, &shapes, 0, 8);
        assert_eq!(baseline.points[0].backoff_polling_wall_secs, None);
        assert!(baseline.points[0].honest.is_some());
        assert!(baseline.points[0].bit_identical, "silence still checks");
        assert!(baseline
            .to_json()
            .contains("\"backoff_polling_wall_secs\": null"));
    }

    #[test]
    fn json_has_the_v1_shape() {
        let shapes = [ScaleShape {
            agents: 8,
            tasks: 2,
            trials: 1,
        }];
        let json = measure_scale(5, &shapes, 8, 8).to_json();
        for needle in [
            "\"schema\": \"dmw-bench-scale/v1\"",
            "\"protocol_ceiling\": 8",
            "\"oracle_ceiling\": 8",
            "\"points\": [",
            "\"agents\": 8, \"tasks\": 2, \"trials\": 1",
            "\"honest\": { \"wall_secs\": ",
            "\"backoff\": { \"wall_secs\": ",
            "\"silence\": { \"wall_secs\": ",
            "\"silence_polling_wall_secs\": ",
            "\"run_ticks\": ",
            "\"events_processed\": ",
            "\"bit_identical\": true",
            "\"bit_identical_vs_polling_oracle\": true",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn default_shapes_sweep_to_1024_with_scaling_tasks() {
        let shapes = default_shapes();
        assert_eq!(
            shapes.iter().map(|s| s.agents).collect::<Vec<_>>(),
            vec![8, 64, 256, 1024]
        );
        assert_eq!(
            shapes.iter().map(|s| s.tasks).collect::<Vec<_>>(),
            vec![2, 2, 8, 32]
        );
        assert!(shapes.iter().all(|s| s.trials >= 1));
    }
}
