//! T1-comm — Table 1, row "Communication cost": MinWork `Θ(mn)` vs DMW
//! `Θ(mn²)`.
//!
//! Centralized MinWork exchanges `m·n` bid values in and `n` outcome
//! messages out; DMW's traffic is measured from the simulated network
//! (broadcast = `n − 1` unicasts, the paper's accounting). The report
//! sweeps `n` at fixed `m` and `m` at fixed `n`, and fits the log–log
//! growth exponents, which should approach 2 in `n` and 1 in `m`.

use super::{config, log_log_slope, random_bids, rng};
use crate::table::Report;
use dmw::batch::BatchRunner;
use dmw::obedient::{run_obedient, LeaderBehavior};
use dmw::runner::DmwRunner;

/// Messages a centralized MinWork deployment exchanges: each agent sends
/// its `m`-entry bid vector to the center, the center answers each agent.
pub fn centralized_messages(n: usize, m: usize) -> u64 {
    let _ = m; // one message carries the whole m-vector; count transmissions
    (n + n) as u64
}

/// Point-to-point *values* transferred by centralized MinWork, `Θ(mn)` —
/// the paper's unit for Table 1 (each bid value counted).
pub fn centralized_values(n: usize, m: usize) -> u64 {
    (m * n + n) as u64
}

/// Measures one honest DMW run's traffic.
pub fn dmw_traffic(n: usize, c: usize, m: usize, seed: u64) -> dmw_simnet::NetworkStats {
    let mut r = rng(seed);
    let cfg = config(n, c, &mut r);
    let bids = random_bids(&cfg, m, &mut r);
    let run = DmwRunner::new(cfg)
        .run_honest(&bids, &mut r)
        .expect("valid run");
    assert!(run.is_completed(), "honest run must complete");
    run.network
}

/// Builds the full communication report.
pub fn run(seed: u64) -> Report {
    let mut report = Report::new("Table 1 — communication cost: MinWork Θ(mn) vs DMW Θ(mn²)");
    report.note(
        "DMW traffic measured on the simulated network; broadcast = n−1 unicasts (Theorem 11).",
    );
    report.note("MinWork counts the m·n bid values in plus n outcome messages out.");

    report.note("The obedient-leader column is the Open Problem 10 strawman: Θ(mn)-cheap but unverifiable trust in the leader.");

    let engine = BatchRunner::new();
    let c = 1usize;
    // Sweep n at fixed m. Every sweep point seeds its own streams (the
    // original per-point seeds), so fanning them across the engine leaves
    // each measurement byte-identical to a sequential run.
    let m = 4usize;
    let n_sweep = [4usize, 6, 8, 12, 16, 24, 32];
    let measurements = engine.map(&n_sweep, |_, &n| {
        let stats = dmw_traffic(n, c, m, seed + n as u64);
        let obedient = {
            let mut r = rng(seed + 1000 + n as u64);
            let cfg = config(n, c, &mut r);
            let bids = random_bids(&cfg, m, &mut r);
            run_obedient(&bids, LeaderBehavior::Honest)
                .expect("valid run")
                .network
                .point_to_point
        };
        (stats, obedient)
    });
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (&n, (stats, obedient)) in n_sweep.iter().zip(&measurements) {
        let centralized = centralized_values(n, m);
        points.push((n as f64, stats.point_to_point as f64));
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            centralized.to_string(),
            obedient.to_string(),
            stats.point_to_point.to_string(),
            stats.bytes.to_string(),
            format!("{:.1}", stats.point_to_point as f64 / centralized as f64),
        ]);
    }
    let slope_n = log_log_slope(&points);
    report.table(
        format!("sweep over n (m = {m}, c = {c}) — measured growth exponent in n: {slope_n:.2} (paper: 2)"),
        &["n", "m", "MinWork values Θ(mn)", "obedient msgs", "DMW messages", "DMW bytes", "ratio DMW/MinWork"],
        rows,
    );

    // Sweep m at fixed n.
    let n = 8usize;
    let m_sweep = [1usize, 2, 4, 8, 16, 32];
    let measurements = engine.map(&m_sweep, |_, &m| {
        dmw_traffic(n, c, m, seed + 100 + m as u64)
    });
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (&m, stats) in m_sweep.iter().zip(&measurements) {
        let centralized = centralized_values(n, m);
        points.push((m as f64, stats.point_to_point as f64));
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            centralized.to_string(),
            stats.point_to_point.to_string(),
            stats.bytes.to_string(),
            format!("{:.1}", stats.point_to_point as f64 / centralized as f64),
        ]);
    }
    let slope_m = log_log_slope(&points);
    report.table(
        format!("sweep over m (n = {n}, c = {c}) — measured growth exponent in m: {slope_m:.2} (paper: 1)"),
        &["n", "m", "MinWork values Θ(mn)", "DMW messages", "DMW bytes", "ratio"],
        rows,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_grows_quadratically_in_n() {
        let m = 2;
        let points: Vec<(f64, f64)> = [4usize, 8, 16]
            .iter()
            .map(|&n| (n as f64, dmw_traffic(n, 1, m, 1).point_to_point as f64))
            .collect();
        let slope = log_log_slope(&points);
        assert!((1.6..=2.4).contains(&slope), "slope {slope} not ≈ 2");
    }

    #[test]
    fn traffic_grows_linearly_in_m() {
        let n = 6;
        let points: Vec<(f64, f64)> = [2usize, 4, 8, 16]
            .iter()
            .map(|&m| (m as f64, dmw_traffic(n, 1, m, 2).point_to_point as f64))
            .collect();
        let slope = log_log_slope(&points);
        assert!((0.8..=1.2).contains(&slope), "slope {slope} not ≈ 1");
    }

    #[test]
    fn report_renders() {
        let r = run(3);
        let s = r.render();
        assert!(s.contains("Table 1"));
        assert!(s.contains("growth exponent"));
    }
}
