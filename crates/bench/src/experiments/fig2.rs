//! F2 — Fig. 2: the sequence of messages exchanged among participants.
//!
//! Renders one complete auction's message trace as an ASCII sequence
//! chart (solid `-->` arrows = private share transmissions, dashed `==>*`
//! arrows = published messages), with the per-phase counts.

use super::{config, random_bids, rng};
use crate::table::Report;
use dmw::batch::BatchRunner;
use dmw::runner::DmwRunner;
use dmw::trace::{kind_histogram, render_sequence_chart};

/// Builds the Fig. 2 report for a small auction (n = 4, m = 1).
pub fn run(seed: u64) -> Report {
    let mut r = rng(seed);
    let n = 4;
    let cfg = config(n, 0, &mut r);
    let bids = random_bids(&cfg, 1, &mut r);
    let runner = DmwRunner::new(cfg);
    let run = BatchRunner::new()
        .run_honest(&runner, seed, &[bids])
        .into_iter()
        .next()
        .expect("one trial submitted")
        .expect("valid run");
    assert!(run.is_completed());

    let mut report = Report::new("Fig. 2 — message sequence of one DMW auction (n = 4, m = 1)");
    report.note("`-->` solid arrow: private point-to-point share transmission.".to_string());
    report.note("`==>*` dashed arrow: published (broadcast) message.".to_string());
    report.note(String::new());
    report.note("```".to_string());
    for line in render_sequence_chart(&run.trace).lines() {
        report.note(line.to_string());
    }
    report.note("```".to_string());

    let rows: Vec<Vec<String>> = kind_histogram(&run.trace)
        .into_iter()
        .map(|(kind, count)| vec![kind.to_string(), count.to_string()])
        .collect();
    report.table("per-phase message counts", &["message kind", "count"], rows);
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn chart_contains_every_phase() {
        let report = super::run(11);
        let rendered = report.render();
        for kind in dmw::trace::PHASE_ORDER {
            assert!(rendered.contains(kind), "missing {kind}");
        }
    }
}
