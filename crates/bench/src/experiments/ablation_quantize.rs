//! ABL-q — the cost of DMW's discrete bid set.
//!
//! DMW can only auction bids from `W` (at most `n − c − 1` levels), so
//! continuous execution times must be quantized. This ablation sweeps the
//! level count and measures (a) the value distortion and (b) how often the
//! coarsened auction picks a different winner than the continuous
//! mechanism would — the allocation cost of distribution that the paper
//! leaves unquantified.

use super::rng;
use crate::table::Report;
use dmw_mechanism::quantize::Quantizer;
use dmw_mechanism::{AgentId, TaskId};
use rand::Rng;

/// One sweep cell: distortion and winner-divergence rate.
pub fn cell(n: usize, m: usize, levels: usize, trials: u32, seed: u64) -> (f64, f64) {
    let mut r = rng(seed);
    let mut distortion_sum = 0.0;
    let mut diverged = 0u32;
    let mut tasks_total = 0u32;
    for _ in 0..trials {
        let times: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| r.gen_range(1.0..100.0)).collect())
            .collect();
        let quantizer = Quantizer::fit(&times, levels).expect("valid levels");
        distortion_sum += quantizer.distortion(&times);
        let bids = quantizer.quantize(&times).expect("valid shape");
        #[allow(clippy::needless_range_loop)] // j indexes two parallel structures
        for j in 0..m {
            // Continuous winner: the true minimum time.
            let continuous_winner = (0..n)
                .min_by(|&a, &b| times[a][j].partial_cmp(&times[b][j]).expect("finite"))
                .expect("n >= 2");
            // Quantized winner with lowest-index tie-break.
            let column = bids.task_column(TaskId(j));
            let quantized_winner = (0..n).min_by_key(|&i| (column[i], i)).expect("n >= 2");
            let _ = AgentId(quantized_winner);
            if continuous_winner != quantized_winner {
                diverged += 1;
            }
            tasks_total += 1;
        }
    }
    (
        distortion_sum / trials as f64,
        diverged as f64 / tasks_total as f64,
    )
}

/// Builds the quantization ablation report.
pub fn run(seed: u64) -> Report {
    let n = 8usize;
    let m = 4usize;
    let trials = 50u32;
    let mut report = Report::new("Ablation — bid quantization (the price of discrete bids)");
    report.note(format!(
        "{trials} random continuous instances (times ∈ [1, 100)), n = {n}, m = {m}. \
         DMW at c faults admits |W| = n − c − 1 levels."
    ));

    let mut rows = Vec::new();
    for &levels in &[2usize, 3, 5, 7, 15, 31] {
        let (distortion, divergence) = cell(n, m, levels, trials, seed + levels as u64);
        rows.push(vec![
            levels.to_string(),
            format!("{:.1}%", distortion * 100.0),
            format!("{:.1}%", divergence * 100.0),
        ]);
    }
    report.table(
        "coarseness sweep",
        &[
            "bid levels |W|",
            "mean value distortion",
            "winner divergence vs continuous",
        ],
        rows,
    );
    report.note("More levels require more agents (|W| = n − c − 1): precision is bought with participation.".to_string());
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn finer_grids_reduce_both_metrics() {
        let (d2, w2) = super::cell(6, 3, 2, 30, 7);
        let (d31, w31) = super::cell(6, 3, 31, 30, 7);
        assert!(d31 < d2, "distortion must shrink: {d31} vs {d2}");
        assert!(w31 <= w2, "divergence must not grow: {w31} vs {w2}");
    }
}
