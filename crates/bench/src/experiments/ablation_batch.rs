//! ABL-batch — message batching: is Θ(mn²) messages intrinsic?
//!
//! Theorem 11 counts one transmission per task per pair, giving `Θ(mn²)`
//! messages. An implementation free to coalesce each round's traffic to
//! the same recipient sends `Θ(n²)` *messages* per run — the per-task
//! factor survives only in the *byte* volume, which stays `Θ(mn²)`. This
//! ablation sweeps `m` under both policies and fits the growth exponents,
//! separating the protocol's intrinsic information cost from the
//! accounting convention.

use super::{config, log_log_slope, random_bids, rng};
use crate::table::Report;
use dmw::runner::DmwRunner;

/// Traffic of one honest run, optionally batched.
pub fn traffic(n: usize, m: usize, batching: bool, seed: u64) -> (u64, u64) {
    let mut r = rng(seed);
    let cfg = config(n, 1, &mut r);
    let bids = random_bids(&cfg, m, &mut r);
    let run = DmwRunner::new(cfg)
        .with_batching(batching)
        .run_honest(&bids, &mut r)
        .expect("valid run");
    assert!(run.is_completed());
    (run.network.point_to_point, run.network.bytes)
}

/// Builds the batching ablation report.
pub fn run(seed: u64) -> Report {
    let n = 8usize;
    let mut report = Report::new("Ablation — message batching (is Θ(mn²) messages intrinsic?)");
    report.note(format!(
        "n = {n}, c = 1; batching coalesces each round's messages per recipient into one transmission."
    ));

    let mut rows = Vec::new();
    let mut plain_msgs = Vec::new();
    let mut batch_msgs = Vec::new();
    let mut batch_bytes = Vec::new();
    for &m in &[1usize, 2, 4, 8, 16, 32] {
        let (pm, pb) = traffic(n, m, false, seed + m as u64);
        let (bm, bb) = traffic(n, m, true, seed + m as u64);
        plain_msgs.push((m as f64, pm as f64));
        batch_msgs.push((m as f64, bm as f64));
        batch_bytes.push((m as f64, bb as f64));
        rows.push(vec![
            m.to_string(),
            pm.to_string(),
            bm.to_string(),
            pb.to_string(),
            bb.to_string(),
        ]);
    }
    report.table(
        format!(
            "sweep over m — message-count growth exponents: per-task {:.2}, batched {:.2}; batched byte exponent {:.2}",
            log_log_slope(&plain_msgs),
            log_log_slope(&batch_msgs),
            log_log_slope(&batch_bytes),
        ),
        &["m", "msgs (per-task)", "msgs (batched)", "bytes (per-task)", "bytes (batched)"],
        rows,
    );
    report.note("Batched message count is flat in m (exponent ≈ 0): the paper's Θ(mn²) message bound is an accounting convention; the information cost Θ(mn²) persists in bytes.".to_string());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_flattens_message_growth_but_not_bytes() {
        let (m1_plain, _) = traffic(6, 1, false, 3);
        let (m8_plain, _) = traffic(6, 8, false, 3);
        let (m1_batch, b1) = traffic(6, 1, true, 3);
        let (m8_batch, b8) = traffic(6, 8, true, 3);
        // Per-task messages grow with m; batched stay (almost) flat.
        assert!(m8_plain > 4 * m1_plain);
        assert!(m8_batch < 2 * m1_batch, "batched {m1_batch} -> {m8_batch}");
        // Bytes still grow with m under batching.
        assert!(b8 > 4 * b1);
    }
}
