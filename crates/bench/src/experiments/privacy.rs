//! THM-priv — Theorem 10: privacy of losing bids under collusion.
//!
//! The strongest share-pooling attack, swept over coalition sizes for
//! every bid value and several `(n, c)` deployments. Predicted exposure
//! threshold: `min(n − c − y, y + c) + 1`.

use super::{config, rng};
use crate::table::Report;
use dmw::collusion::{pool_and_attack, predicted_exposure_threshold, AttackOutcome};
use dmw_crypto::polynomials::BidPolynomials;

/// Sweeps coalition sizes until the bid is exposed; returns the smallest
/// exposing size.
pub fn measured_threshold(cfg: &dmw::DmwConfig, bid: u64, seed: u64) -> Option<usize> {
    let mut r = rng(seed);
    let zq = cfg.group().zq();
    let polys =
        BidPolynomials::generate(cfg.group(), cfg.encoding(), bid, &mut r).expect("valid bid");
    for size in 1..=cfg.agents() {
        let pooled: Vec<(u64, _)> = (0..size)
            .map(|k| {
                let alpha = cfg.pseudonym(k);
                (alpha, polys.share_for(&zq, alpha))
            })
            .collect();
        if let AttackOutcome::Exposed { bid: got } = pool_and_attack(cfg, &pooled) {
            assert_eq!(got, bid, "attack recovered the wrong bid");
            return Some(size);
        }
    }
    None
}

/// Builds the privacy report.
pub fn run(seed: u64) -> Report {
    let mut report = Report::new("Theorem 10 — bid privacy under collusion (share-pooling attack)");
    report.note(
        "Exposure threshold = smallest coalition that recovers the bid by pooling its shares.",
    );
    report.note(
        "Prediction: min(n − c − y, y + c) + 1. Coalitions below the threshold learn nothing.",
    );

    let mut r = rng(seed);
    for &(n, c) in &[(8usize, 2usize), (10, 2), (12, 3)] {
        let cfg = config(n, c, &mut r);
        let rows: Vec<Vec<String>> = cfg
            .encoding()
            .bid_set()
            .iter()
            .map(|&bid| {
                let predicted = predicted_exposure_threshold(&cfg, bid).expect("bid in W");
                let measured =
                    measured_threshold(&cfg, bid, seed + bid).expect("exposed at full size");
                vec![
                    bid.to_string(),
                    predicted.to_string(),
                    measured.to_string(),
                    if measured == predicted {
                        "match".into()
                    } else {
                        "MISMATCH".into()
                    },
                    if predicted > c {
                        "yes".into()
                    } else {
                        "no (e/f-channel cap)".into()
                    },
                ]
            })
            .collect();
        report.table(
            format!("n = {n}, c = {c}"),
            &[
                "bid",
                "predicted threshold",
                "measured threshold",
                "check",
                "survives c colluders?",
            ],
            rows,
        );
    }
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn measurements_match_predictions() {
        let report = super::run(51);
        for (_, _, rows) in &report.tables {
            for row in rows {
                assert_eq!(row[3], "match", "threshold mismatch: {row:?}");
            }
        }
    }
}
