//! BATCH — the parallel batch-execution engine: determinism evidence for
//! `reproduce`, and the wall-clock/throughput baseline behind
//! `BENCH_batch.json`.
//!
//! The workload is the natural unit of the paper's evaluation: many
//! independent honest DMW runs over one published configuration (one
//! deployment, thousands of auctions — the shape of every Section 5-style
//! sweep). [`measure`] times the *same* trial batch at several thread
//! counts and cross-checks that every width produces bit-identical
//! results; [`Baseline::to_json`] serializes the measurement into the
//! `dmw-bench-batch/v1` schema documented in `docs/benchmarks.md`.
//!
//! The [`run`] report (the `batch-engine` subcommand of `reproduce`)
//! deliberately contains **no wall-clock numbers** so that
//! `docs/reproduce_output.md` stays deterministic; timings belong to the
//! `bench_batch` binary and its committed `BENCH_batch.json`.

use super::{config, random_bids, rng};
use crate::table::Report;
use dmw::batch::{BatchRunner, TrialSpec};
use dmw::runner::{DmwRun, DmwRunner};
use dmw::DmwError;
use dmw_simnet::NetworkStats;
use std::time::Instant;

/// The workload shape of one baseline measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Agents `n`.
    pub agents: usize,
    /// Tolerated faults `c`.
    pub faults: usize,
    /// Tasks `m` per trial.
    pub tasks: usize,
    /// Independent honest trials in the batch.
    pub trials: usize,
}

/// One thread-count timing of the same trial batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadMeasurement {
    /// Worker threads the batch fanned over.
    pub threads: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Completed trials per second.
    pub trials_per_sec: f64,
    /// Sequential (1-thread) wall time divided by this run's wall time.
    pub speedup_vs_sequential: f64,
}

/// A measured baseline: the artifact `BENCH_batch.json` records.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// The experiment seed (trial streams derive from it).
    pub seed: u64,
    /// The measured workload.
    pub workload: Workload,
    /// `std::thread::available_parallelism()` on the measuring host — the
    /// hard ceiling on any honest speedup.
    pub host_parallelism: usize,
    /// Per-thread-count timings, in the order measured (first entry is
    /// the sequential reference).
    pub runs: Vec<ThreadMeasurement>,
    /// Whether every thread count produced bit-identical results
    /// (schedules, payments, traces, traffic counters).
    pub bit_identical: bool,
    /// Trials that completed (the honest workload completes all).
    pub completed_trials: usize,
    /// Whole-batch traffic, aggregated over every trial.
    pub traffic: NetworkStats,
}

/// Runs `trials` honest trials through [`BatchRunner`] at each requested
/// thread count, timing each pass over the identical batch, and
/// cross-checks the results for bit-identity.
///
/// The first entry of `thread_counts` is the sequential reference every
/// speedup is computed against (pass `1` first; [`measure`] does not
/// reorder).
///
/// # Panics
///
/// Panics on invalid workload shapes — harness callers pass valid ones.
pub fn measure(seed: u64, workload: Workload, thread_counts: &[usize]) -> Baseline {
    let mut r = rng(seed);
    let cfg = config(workload.agents, workload.faults, &mut r);
    let runner = DmwRunner::new(cfg);
    let trials: Vec<TrialSpec> = (0..workload.trials)
        .map(|_| TrialSpec::honest(random_bids(runner.config(), workload.tasks, &mut r)))
        .collect();

    let mut runs = Vec::new();
    let mut reference: Option<Vec<Result<DmwRun, DmwError>>> = None;
    let mut sequential_wall = None;
    let mut bit_identical = true;
    for &threads in thread_counts {
        let engine = BatchRunner::with_threads(threads);
        let started = Instant::now();
        let results = engine.run_trials(&runner, seed, &trials);
        let wall_secs = started.elapsed().as_secs_f64();
        let sequential = *sequential_wall.get_or_insert(wall_secs);
        runs.push(ThreadMeasurement {
            threads: engine.threads(),
            wall_secs,
            trials_per_sec: workload.trials as f64 / wall_secs,
            speedup_vs_sequential: sequential / wall_secs,
        });
        match &reference {
            Some(reference) => bit_identical &= equal_outcomes(reference, &results),
            None => reference = Some(results),
        }
    }

    let reference = reference.unwrap_or_default();
    let completed_trials = reference
        .iter()
        .filter(|r| r.as_ref().is_ok_and(DmwRun::is_completed))
        .count();
    let traffic = reference
        .iter()
        .filter_map(|r| r.as_ref().ok().map(|run| run.network))
        .sum();
    Baseline {
        seed,
        workload,
        host_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        runs,
        bit_identical,
        completed_trials,
        traffic,
    }
}

/// Full-artifact equality of two batch results: run results, traffic
/// counters and message traces.
fn equal_outcomes(a: &[Result<DmwRun, DmwError>], b: &[Result<DmwRun, DmwError>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Ok(x), Ok(y)) => x.result == y.result && x.network == y.network && x.trace == y.trace,
            (Err(x), Err(y)) => x == y,
            _ => false,
        })
}

impl Baseline {
    /// Serializes to the `dmw-bench-batch/v1` JSON schema (see
    /// `docs/benchmarks.md`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dmw-bench-batch/v1\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"workload\": {\n");
        out.push_str("    \"experiment\": \"honest-trial-sweep\",\n");
        out.push_str(&format!("    \"agents\": {},\n", self.workload.agents));
        out.push_str(&format!("    \"faults\": {},\n", self.workload.faults));
        out.push_str(&format!("    \"tasks\": {},\n", self.workload.tasks));
        out.push_str(&format!("    \"trials\": {}\n", self.workload.trials));
        out.push_str("  },\n");
        out.push_str("  \"host\": {\n");
        out.push_str(&format!("    \"os\": \"{}\",\n", std::env::consts::OS));
        out.push_str(&format!(
            "    \"available_parallelism\": {}\n",
            self.host_parallelism
        ));
        out.push_str("  },\n");
        out.push_str("  \"runs\": [\n");
        let rows: Vec<String> = self
            .runs
            .iter()
            .map(|m| {
                format!(
                    "    {{ \"threads\": {}, \"wall_secs\": {:.6}, \"trials_per_sec\": {:.2}, \"speedup_vs_sequential\": {:.3} }}",
                    m.threads, m.wall_secs, m.trials_per_sec, m.speedup_vs_sequential
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str(&format!(
            "  \"completed_trials\": {},\n",
            self.completed_trials
        ));
        out.push_str("  \"aggregate_traffic\": {\n");
        out.push_str(&format!(
            "    \"messages\": {},\n",
            self.traffic.point_to_point
        ));
        out.push_str(&format!("    \"bytes\": {}\n", self.traffic.bytes));
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"bit_identical_across_thread_counts\": {}\n",
            self.bit_identical
        ));
        out.push_str("}\n");
        out
    }
}

/// Builds the deterministic `batch-engine` report: engine composition,
/// determinism evidence and aggregate traffic — no wall-clock numbers
/// (those live in `BENCH_batch.json`; see the module docs).
pub fn run(seed: u64) -> Report {
    let workload = Workload {
        agents: 6,
        faults: 1,
        tasks: 3,
        trials: 24,
    };
    let baseline = measure(seed, workload, &[1, 2, 8]);
    let mut report = Report::new(
        "Batch engine — thread-count-invariant parallel execution of independent trials",
    );
    report.note("Every trial draws from a private stream seeded by trial_seed(batch_seed, index), so results are bit-identical whatever the thread count.");
    report.note("Wall-clock numbers are deliberately omitted here; regenerate BENCH_batch.json with the bench_batch binary — schema and interpretation in [benchmarks.md](benchmarks.md).");
    let rows = vec![vec![
        format!(
            "{}x{} (c = {})",
            workload.agents, workload.tasks, workload.faults
        ),
        workload.trials.to_string(),
        baseline.completed_trials.to_string(),
        baseline
            .runs
            .iter()
            .map(|m| m.threads.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        if baseline.bit_identical { "yes" } else { "NO" }.to_string(),
        baseline.traffic.point_to_point.to_string(),
        baseline.traffic.bytes.to_string(),
    ]];
    report.table(
        "honest-trial sweep, identical batch at several widths",
        &[
            "shape",
            "trials",
            "completed",
            "widths checked",
            "bit-identical",
            "total messages",
            "total bytes",
        ],
        rows,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_is_deterministic_and_bit_identical() {
        let workload = Workload {
            agents: 4,
            faults: 0,
            tasks: 2,
            trials: 6,
        };
        let baseline = measure(5, workload, &[1, 2, 8]);
        assert!(baseline.bit_identical);
        assert_eq!(baseline.completed_trials, 6);
        assert_eq!(baseline.runs.len(), 3);
        assert!((baseline.runs[0].speedup_vs_sequential - 1.0).abs() < 1e-9);
        assert!(baseline.traffic.point_to_point > 0);
    }

    #[test]
    fn json_has_the_v1_shape() {
        let workload = Workload {
            agents: 4,
            faults: 0,
            tasks: 1,
            trials: 3,
        };
        let json = measure(6, workload, &[1, 2]).to_json();
        for needle in [
            "\"schema\": \"dmw-bench-batch/v1\"",
            "\"trials\": 3",
            "\"threads\": 2",
            "\"speedup_vs_sequential\"",
            "\"bit_identical_across_thread_counts\": true",
            "\"available_parallelism\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn report_renders_with_determinism_evidence() {
        let report = run(9);
        let rendered = report.render();
        assert!(rendered.contains("bit-identical"));
        assert!(rendered.contains("yes"));
    }
}
