//! BATCH — the parallel batch-execution engine: determinism evidence for
//! `reproduce`, and the wall-clock/throughput baseline behind
//! `BENCH_batch.json`.
//!
//! The workload is the natural unit of the paper's evaluation: many
//! independent honest DMW runs over one published configuration (one
//! deployment, thousands of auctions — the shape of every Section 5-style
//! sweep). [`measure`] times the *same* trial batch at several thread
//! counts and cross-checks that every width produces bit-identical
//! results; [`Baseline::to_json`] serializes the measurement into the
//! `dmw-bench-batch/v4` schema documented in `docs/benchmarks.md` —
//! v2 added a per-phase breakdown (messages, bytes, dwell ticks)
//! aggregated from the deterministic `dmw-obs` metrics every run
//! carries; v3 added the chaos workload (reliable delivery over a seeded
//! fault matrix, with a crash rotation exercising graceful degradation)
//! and a `recovery` block of retransmit/ack/degradation counters; v4
//! turns that block into a `before`/`after` comparison — the same chaos
//! batch replayed once through the classic v3 fixed-backoff endpoints
//! (`before`, untimed) and once through the adaptive endpoints
//! (`after`: RTT-derived timeouts, selective acks, nack fast path,
//! coalesced repair), quantifying the recovery-overhead diet. Recovery
//! control traffic also gets its own `control` row in the `phases`
//! table, keeping protocol-phase traffic comparable with v3 artifacts.
//!
//! The [`run`] report (the `batch-engine` subcommand of `reproduce`)
//! deliberately contains **no wall-clock numbers** so that
//! `docs/reproduce_output.md` stays deterministic; timings belong to the
//! `bench_batch` binary and its committed `BENCH_batch.json`.

use super::{config, random_bids, rng};
use crate::table::Report;
use dmw::batch::{aggregate_metrics, BatchRunner, TrialSpec};
use dmw::runner::{DmwRun, DmwRunner};
use dmw::DmwError;
use dmw_obs::MetricsSnapshot;
use dmw_simnet::{FaultPlan, NetworkStats, NodeId};
use std::collections::BTreeSet;
use std::time::Instant;

/// The workload shape of one baseline measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Agents `n`.
    pub agents: usize,
    /// Tolerated faults `c`.
    pub faults: usize,
    /// Tasks `m` per trial.
    pub tasks: usize,
    /// Independent honest trials in the batch.
    pub trials: usize,
    /// Chaos mode: run with the reliable-delivery sublayer enabled,
    /// every trial under `drop_every(3)` packet loss, and (when
    /// `faults > 0`) every eighth trial crashing one agent mid-protocol,
    /// so the batch also times the ack/retransmit and
    /// graceful-degradation paths.
    pub chaos: bool,
}

/// One thread-count timing of the same trial batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadMeasurement {
    /// Worker threads the batch fanned over.
    pub threads: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Completed trials per second.
    pub trials_per_sec: f64,
    /// Sequential (1-thread) wall time divided by this run's wall time.
    pub speedup_vs_sequential: f64,
}

/// A measured baseline: the artifact `BENCH_batch.json` records.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// The experiment seed (trial streams derive from it).
    pub seed: u64,
    /// The measured workload.
    pub workload: Workload,
    /// `std::thread::available_parallelism()` on the measuring host — the
    /// hard ceiling on any honest speedup.
    pub host_parallelism: usize,
    /// Per-thread-count timings, in the order measured (first entry is
    /// the sequential reference).
    pub runs: Vec<ThreadMeasurement>,
    /// Whether every thread count produced bit-identical results
    /// (schedules, payments, traces, traffic counters).
    pub bit_identical: bool,
    /// Trials that completed cleanly (the honest workload completes
    /// all; the chaos workload's crash trials degrade instead).
    pub completed_trials: usize,
    /// Trials that ended in graceful degradation (survivor re-auction
    /// after an exclusion vote) — nonzero only for chaos workloads with
    /// a crash rotation.
    pub degraded_trials: usize,
    /// Whole-batch traffic, aggregated over every trial.
    pub traffic: NetworkStats,
    /// Deterministic `dmw-obs` metrics, aggregated over every trial —
    /// the source of the per-phase breakdown (added in schema v2) and
    /// of the `recovery.after` block (`dmw-bench-batch/v4`).
    pub metrics: MetricsSnapshot,
    /// Chaos workloads only: the same batch replayed sequentially
    /// through the classic v3 fixed-backoff endpoints — the
    /// `recovery.before` arm of the v4 comparison. Untimed on purpose:
    /// it exists to count recovery traffic, not to skew the wall-clock
    /// rows. `None` for honest workloads.
    pub classic_metrics: Option<MetricsSnapshot>,
}

/// Runs `trials` honest trials through [`BatchRunner`] at each requested
/// thread count, timing each pass over the identical batch, and
/// cross-checks the results for bit-identity.
///
/// The first entry of `thread_counts` is the sequential reference every
/// speedup is computed against (pass `1` first; [`measure`] does not
/// reorder).
///
/// # Panics
///
/// Panics on invalid workload shapes — harness callers pass valid ones.
pub fn measure(seed: u64, workload: Workload, thread_counts: &[usize]) -> Baseline {
    let mut r = rng(seed);
    let cfg = config(workload.agents, workload.faults, &mut r);
    let mut runner = DmwRunner::new(cfg);
    if workload.chaos {
        runner = runner.with_recovery();
    }
    let trials: Vec<TrialSpec> = (0..workload.trials)
        .map(|i| {
            let spec = TrialSpec::honest(random_bids(runner.config(), workload.tasks, &mut r));
            if !workload.chaos {
                return spec;
            }
            let mut faults = FaultPlan::none(workload.agents).drop_every(3);
            if workload.faults > 0 && i % 8 == 3 {
                // One mid-protocol crash per eighth trial — late enough
                // that the victim participates (and often wins), so the
                // batch also times the exclusion vote and the survivor
                // re-auction, not just early-silence masking.
                faults = faults.crash_at(NodeId(i % workload.agents), 40);
            }
            spec.with_faults(faults)
        })
        .collect();

    let mut runs = Vec::new();
    let mut reference: Option<Vec<Result<DmwRun, DmwError>>> = None;
    let mut sequential_wall = None;
    let mut bit_identical = true;
    for &threads in thread_counts {
        let engine = BatchRunner::with_threads(threads);
        let started = Instant::now();
        let results = engine.run_trials(&runner, seed, &trials);
        let wall_secs = started.elapsed().as_secs_f64();
        let sequential = *sequential_wall.get_or_insert(wall_secs);
        runs.push(ThreadMeasurement {
            threads: engine.threads(),
            wall_secs,
            trials_per_sec: workload.trials as f64 / wall_secs,
            speedup_vs_sequential: sequential / wall_secs,
        });
        match &reference {
            Some(reference) => bit_identical &= equal_outcomes(reference, &results),
            None => reference = Some(results),
        }
    }

    let reference = reference.unwrap_or_default();
    let completed_trials = reference
        .iter()
        .filter(|r| r.as_ref().is_ok_and(DmwRun::is_completed))
        .count();
    let degraded_trials = reference
        .iter()
        .filter(|r| r.as_ref().is_ok_and(DmwRun::is_degraded))
        .count();
    let traffic = reference
        .iter()
        .filter_map(|r| r.as_ref().ok().map(|run| run.network))
        .sum();
    let metrics = aggregate_metrics(&reference);
    // The `before` arm of the v4 recovery comparison: the identical
    // chaos batch through the classic fixed-backoff endpoints,
    // sequential and untimed. Both modes repair to the same outcomes
    // (the reliable sublayer is outcome-invariant); only the recovery
    // traffic differs, which is exactly what the block quantifies.
    let classic_metrics = workload.chaos.then(|| {
        let classic_runner = runner.clone().with_classic_recovery(true);
        let results = BatchRunner::with_threads(1).run_trials(&classic_runner, seed, &trials);
        aggregate_metrics(&results)
    });
    Baseline {
        seed,
        workload,
        host_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        runs,
        bit_identical,
        completed_trials,
        degraded_trials,
        traffic,
        metrics,
        classic_metrics,
    }
}

/// Full-artifact equality of two batch results: run results, traffic
/// counters, metrics snapshots and message traces.
fn equal_outcomes(a: &[Result<DmwRun, DmwError>], b: &[Result<DmwRun, DmwError>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Ok(x), Ok(y)) => {
                x.result == y.result
                    && x.network == y.network
                    && x.trace == y.trace
                    && x.metrics == y.metrics
            }
            (Err(x), Err(y)) => x == y,
            _ => false,
        })
}

/// The per-phase rows of the `phases` breakdown (schema v2+): every phase that
/// recorded messages, bytes or dwell ticks, in deterministic (sorted)
/// phase-label order, with the three counters summed over all agents.
fn phase_breakdown(metrics: &MetricsSnapshot) -> Vec<(&'static str, u64, u64, u64)> {
    let messages = metrics.counter_by_phase("phase_messages");
    let bytes = metrics.counter_by_phase("phase_bytes");
    let dwell = metrics.counter_by_phase("phase_dwell_ticks");
    let phases: BTreeSet<&'static str> = messages
        .keys()
        .chain(bytes.keys())
        .chain(dwell.keys())
        .copied()
        .collect();
    phases
        .into_iter()
        .map(|phase| {
            (
                phase,
                messages.get(phase).copied().unwrap_or(0),
                bytes.get(phase).copied().unwrap_or(0),
                dwell.get(phase).copied().unwrap_or(0),
            )
        })
        .collect()
}

/// The recovery counters of one endpoint mode, in the order the v4
/// `before`/`after` blocks serialize them.
pub const RECOVERY_COUNTERS: &[&str] = &[
    "retransmissions",
    "repair_payloads",
    "acks_sent",
    "nacks_sent",
    "duplicate_deliveries",
    "suppressed_retransmits",
    "rtt_samples",
    "sack_ranges",
    "suspect_dead",
    "degraded_runs",
    "reauctioned_tasks",
    "recovery_rounds",
];

/// Serializes one arm of the v4 recovery comparison as a JSON object
/// (with `indent` leading spaces inside it).
fn recovery_arm(metrics: &MetricsSnapshot, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let rows: Vec<String> = RECOVERY_COUNTERS
        .iter()
        .map(|name| format!("{pad}  \"{name}\": {}", metrics.counter_total(name)))
        .collect();
    format!("{{\n{}\n{pad}}}", rows.join(",\n"))
}

impl Baseline {
    /// Serializes to the `dmw-bench-batch/v4` JSON schema (see
    /// `docs/benchmarks.md`): v2's per-phase `phases` breakdown (plus
    /// the `control` row for recovery traffic), v3's workload `chaos`
    /// flag and `degraded_trials` count, and the v4 `recovery` object —
    /// a `before` (classic v3 endpoints, `null` for honest workloads)
    /// vs `after` (adaptive endpoints) comparison of the
    /// reliable-delivery and graceful-degradation counters aggregated
    /// over the whole batch.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dmw-bench-batch/v4\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"workload\": {\n");
        let experiment = if self.workload.chaos {
            "chaos-trial-sweep"
        } else {
            "honest-trial-sweep"
        };
        out.push_str(&format!("    \"experiment\": \"{experiment}\",\n"));
        out.push_str(&format!("    \"agents\": {},\n", self.workload.agents));
        out.push_str(&format!("    \"faults\": {},\n", self.workload.faults));
        out.push_str(&format!("    \"tasks\": {},\n", self.workload.tasks));
        out.push_str(&format!("    \"trials\": {},\n", self.workload.trials));
        out.push_str(&format!("    \"chaos\": {}\n", self.workload.chaos));
        out.push_str("  },\n");
        out.push_str("  \"host\": {\n");
        out.push_str(&format!("    \"os\": \"{}\",\n", std::env::consts::OS));
        out.push_str(&format!(
            "    \"available_parallelism\": {}\n",
            self.host_parallelism
        ));
        out.push_str("  },\n");
        out.push_str("  \"runs\": [\n");
        let rows: Vec<String> = self
            .runs
            .iter()
            .map(|m| {
                format!(
                    "    {{ \"threads\": {}, \"wall_secs\": {:.6}, \"trials_per_sec\": {:.2}, \"speedup_vs_sequential\": {:.3} }}",
                    m.threads, m.wall_secs, m.trials_per_sec, m.speedup_vs_sequential
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str(&format!(
            "  \"completed_trials\": {},\n",
            self.completed_trials
        ));
        out.push_str(&format!(
            "  \"degraded_trials\": {},\n",
            self.degraded_trials
        ));
        out.push_str("  \"recovery\": {\n");
        match &self.classic_metrics {
            Some(classic) => {
                out.push_str(&format!("    \"before\": {},\n", recovery_arm(classic, 4)));
            }
            None => out.push_str("    \"before\": null,\n"),
        }
        out.push_str(&format!(
            "    \"after\": {}\n",
            recovery_arm(&self.metrics, 4)
        ));
        out.push_str("  },\n");
        out.push_str("  \"aggregate_traffic\": {\n");
        out.push_str(&format!(
            "    \"messages\": {},\n",
            self.traffic.point_to_point
        ));
        out.push_str(&format!("    \"bytes\": {}\n", self.traffic.bytes));
        out.push_str("  },\n");
        out.push_str("  \"phases\": {\n");
        let phase_rows: Vec<String> = phase_breakdown(&self.metrics)
            .into_iter()
            .map(|(phase, messages, bytes, dwell)| {
                format!(
                    "    \"{phase}\": {{ \"messages\": {messages}, \"bytes\": {bytes}, \
                     \"dwell_ticks\": {dwell} }}"
                )
            })
            .collect();
        out.push_str(&phase_rows.join(",\n"));
        out.push_str("\n  },\n");
        out.push_str(&format!(
            "  \"bit_identical_across_thread_counts\": {}\n",
            self.bit_identical
        ));
        out.push_str("}\n");
        out
    }
}

/// Builds the deterministic `batch-engine` report: engine composition,
/// determinism evidence and aggregate traffic — no wall-clock numbers
/// (those live in `BENCH_batch.json`; see the module docs).
pub fn run(seed: u64) -> Report {
    let workload = Workload {
        agents: 6,
        faults: 1,
        tasks: 3,
        trials: 24,
        chaos: true,
    };
    let baseline = measure(seed, workload, &[1, 2, 8]);
    let mut report = Report::new(
        "Batch engine — thread-count-invariant parallel execution of independent trials",
    );
    report.note("Every trial draws from a private stream seeded by trial_seed(batch_seed, index), so results are bit-identical whatever the thread count.");
    report.note("The sweep runs in chaos mode: every trial repairs drop_every(3) packet loss through the reliable-delivery sublayer, and every eighth trial crashes one agent mid-protocol, degrading gracefully via the survivor re-auction (see [recovery.md](recovery.md)).");
    report.note("Wall-clock numbers are deliberately omitted here; regenerate BENCH_batch.json with the bench_batch binary — schema and interpretation in [benchmarks.md](benchmarks.md).");
    let rows = vec![vec![
        format!(
            "{}x{} (c = {})",
            workload.agents, workload.tasks, workload.faults
        ),
        workload.trials.to_string(),
        baseline.completed_trials.to_string(),
        baseline.degraded_trials.to_string(),
        baseline
            .runs
            .iter()
            .map(|m| m.threads.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        if baseline.bit_identical { "yes" } else { "NO" }.to_string(),
        baseline.traffic.point_to_point.to_string(),
        baseline.traffic.bytes.to_string(),
    ]];
    report.table(
        "chaos-trial sweep, identical batch at several widths",
        &[
            "shape",
            "trials",
            "completed",
            "degraded",
            "widths checked",
            "bit-identical",
            "total messages",
            "total bytes",
        ],
        rows,
    );
    let recovery_rows: Vec<Vec<String>> = RECOVERY_COUNTERS
        .iter()
        .map(|name| {
            let before = baseline
                .classic_metrics
                .as_ref()
                .map_or_else(|| "-".to_string(), |m| m.counter_total(name).to_string());
            vec![
                (*name).to_string(),
                before,
                baseline.metrics.counter_total(name).to_string(),
            ]
        })
        .collect();
    report.table(
        "recovery overhead, classic fixed-backoff (before) vs adaptive (after) endpoints",
        &["counter", "before (classic)", "after (adaptive)"],
        recovery_rows,
    );
    let phase_rows: Vec<Vec<String>> = phase_breakdown(&baseline.metrics)
        .into_iter()
        .map(|(phase, messages, bytes, dwell)| {
            vec![
                phase.to_string(),
                messages.to_string(),
                bytes.to_string(),
                dwell.to_string(),
            ]
        })
        .collect();
    report.table(
        "per-phase breakdown, aggregated over the whole batch (dmw-obs)",
        &["phase", "messages", "bytes", "dwell ticks"],
        phase_rows,
    );
    report.attach_metrics(baseline.metrics);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_is_deterministic_and_bit_identical() {
        let workload = Workload {
            agents: 4,
            faults: 0,
            tasks: 2,
            trials: 6,
            chaos: false,
        };
        let baseline = measure(5, workload, &[1, 2, 8]);
        assert!(baseline.bit_identical);
        assert_eq!(baseline.completed_trials, 6);
        assert_eq!(baseline.degraded_trials, 0);
        assert_eq!(baseline.runs.len(), 3);
        assert!((baseline.runs[0].speedup_vs_sequential - 1.0).abs() < 1e-9);
        assert!(baseline.traffic.point_to_point > 0);
        assert!(baseline.metrics.counter_total("phase_messages") > 0);
        assert_eq!(baseline.metrics.counter_total("retransmissions"), 0);
    }

    #[test]
    fn chaos_workload_repairs_loss_and_degrades_crash_trials() {
        let workload = Workload {
            agents: 5,
            faults: 1,
            tasks: 2,
            trials: 8,
            chaos: true,
        };
        let baseline = measure(7, workload, &[1, 2]);
        assert!(baseline.bit_identical);
        // Trial 3 carries the rotation's crash and degrades; the other
        // seven repair their packet loss and complete cleanly.
        assert_eq!(baseline.completed_trials, 7);
        assert_eq!(baseline.degraded_trials, 1);
        assert!(baseline.metrics.counter_total("retransmissions") > 0);
        assert_eq!(baseline.metrics.counter_total("degraded_runs"), 1);
        // The classic replay exists for chaos workloads, repairs the
        // same trials (same degradations), and spends strictly more
        // recovery traffic than the adaptive endpoints.
        let classic = baseline.classic_metrics.as_ref().expect("before arm");
        assert_eq!(classic.counter_total("degraded_runs"), 1);
        assert!(
            classic.counter_total("retransmissions")
                > baseline.metrics.counter_total("retransmissions")
        );
        assert!(
            classic.counter_total("duplicate_deliveries")
                >= baseline.metrics.counter_total("duplicate_deliveries")
        );
        assert_eq!(classic.counter_total("rtt_samples"), 0);
        assert!(baseline.metrics.counter_total("rtt_samples") > 0);
    }

    #[test]
    fn json_has_the_v4_shape() {
        let workload = Workload {
            agents: 4,
            faults: 0,
            tasks: 1,
            trials: 3,
            chaos: false,
        };
        let json = measure(6, workload, &[1, 2]).to_json();
        for needle in [
            "\"schema\": \"dmw-bench-batch/v4\"",
            "\"experiment\": \"honest-trial-sweep\"",
            "\"trials\": 3",
            "\"chaos\": false",
            "\"threads\": 2",
            "\"speedup_vs_sequential\"",
            "\"bit_identical_across_thread_counts\": true",
            "\"available_parallelism\"",
            "\"degraded_trials\": 0",
            "\"recovery\": {",
            "\"before\": null",
            "\"after\": {",
            "\"retransmissions\": 0",
            "\"suppressed_retransmits\": 0",
            "\"nacks_sent\": 0",
            "\"recovery_rounds\": 0",
            "\"phases\": {",
            "\"bidding\": { \"messages\": ",
            "\"dwell_ticks\": ",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn chaos_json_carries_both_recovery_arms() {
        let workload = Workload {
            agents: 4,
            faults: 0,
            tasks: 1,
            trials: 2,
            chaos: true,
        };
        let json = measure(8, workload, &[1]).to_json();
        assert!(json.contains("\"before\": {"), "classic arm missing");
        assert!(json.contains("\"after\": {"), "adaptive arm missing");
        assert!(!json.contains("\"before\": null"));
        assert!(
            json.contains("\"control\": { \"messages\": "),
            "recovery control traffic gets its own phase row"
        );
    }

    #[test]
    fn phase_breakdown_covers_every_protocol_phase_with_consistent_totals() {
        let workload = Workload {
            agents: 4,
            faults: 0,
            tasks: 2,
            trials: 4,
            chaos: false,
        };
        let baseline = measure(11, workload, &[1]);
        let breakdown = phase_breakdown(&baseline.metrics);
        assert!(!breakdown.is_empty());
        let message_sum: u64 = breakdown.iter().map(|(_, m, _, _)| m).sum();
        let byte_sum: u64 = breakdown.iter().map(|(_, _, b, _)| b).sum();
        assert_eq!(
            message_sum,
            baseline.metrics.counter_total("phase_messages")
        );
        assert_eq!(byte_sum, baseline.metrics.counter_total("phase_bytes"));
        // An honest run walks every phase, so the bidding fan-out and the
        // final claimed phase both appear.
        let phases: Vec<&str> = breakdown.iter().map(|(p, _, _, _)| *p).collect();
        assert!(phases.contains(&"bidding"), "phases were {phases:?}");
    }

    #[test]
    fn report_renders_with_determinism_evidence() {
        let report = run(9);
        let rendered = report.render();
        assert!(rendered.contains("bit-identical"));
        assert!(rendered.contains("yes"));
        assert!(rendered.contains("per-phase breakdown"));
        assert!(report.metrics.is_some());
    }
}
