//! ABL-c — the fault-threshold trade-off (Open Problem 11).
//!
//! Raising `c` buys crash tolerance but (a) shrinks the bid set
//! (`|W| = n − c − 1`), coarsening prices, and (b) grows the disclosure
//! and verification work. The completion matrix shows the exact
//! computability envelope: runs complete with up to `c` crashes and abort
//! beyond.

use super::{config, random_bids, rng};
use crate::table::Report;
use dmw::runner::DmwRunner;
use dmw::Behavior;
use dmw_simnet::{FaultPlan, NodeId};

/// Runs one (c, crashes) cell; returns (completed, messages).
pub fn cell(n: usize, c: usize, crashes: usize, m: usize, seed: u64) -> (bool, u64) {
    let mut r = rng(seed);
    let cfg = config(n, c, &mut r);
    let bids = random_bids(&cfg, m, &mut r);
    let mut plan = FaultPlan::none(n);
    for i in 0..crashes {
        plan = plan.crash_at(NodeId(n - 1 - i), 0);
    }
    let run = DmwRunner::new(cfg)
        .run(&bids, &vec![Behavior::Suggested; n], plan, &mut r)
        .expect("valid run");
    (run.is_completed(), run.network.point_to_point)
}

/// Builds the fault-threshold ablation report.
pub fn run(seed: u64) -> Report {
    let n = 9usize;
    let m = 2usize;
    let mut report = Report::new("Ablation — fault threshold c (Open Problem 11 envelope)");
    report.note(format!(
        "n = {n}, m = {m}; k agents crash at round 0. \
         The protocol must complete for k ≤ c and abort for k > c."
    ));

    let mut rows = Vec::new();
    for c in 0..=3usize {
        let mut cells = Vec::new();
        for k in 0..=4usize {
            let (completed, _) = cell(n, c, k, m, seed + (c * 10 + k) as u64);
            cells.push(if completed { "ok" } else { "abort" }.to_string());
        }
        let w_size = n - c - 1;
        rows.push(vec![
            c.to_string(),
            w_size.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            cells[4].clone(),
        ]);
    }
    report.table(
        "completion matrix (crashes at round 0)",
        &["c", "|W|", "k=0", "k=1", "k=2", "k=3", "k=4"],
        rows,
    );

    // Cost of the threshold: messages on fault-free runs as c grows.
    let mut rows = Vec::new();
    for c in 0..=3usize {
        let (completed, msgs) = cell(n, c, 0, m, seed + 100 + c as u64);
        assert!(completed);
        rows.push(vec![
            c.to_string(),
            (n - c - 1).to_string(),
            msgs.to_string(),
        ]);
    }
    report.table(
        "fault-free cost vs c (disclosure spares grow, bid set shrinks)",
        &["c", "|W|", "messages"],
        rows,
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn envelope_is_exact() {
        let report = super::run(91);
        let (_, _, rows) = &report.tables[0];
        for row in rows {
            let c: usize = row[0].parse().unwrap();
            for k in 0..=4usize {
                let cell = &row[2 + k];
                if k <= c {
                    assert_eq!(cell, "ok", "c={c}, k={k} should complete");
                } else {
                    assert_eq!(cell, "abort", "c={c}, k={k} should abort");
                }
            }
        }
    }
}
