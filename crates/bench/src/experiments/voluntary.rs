//! THM-svp — Theorems 6–9: strong voluntary participation.
//!
//! For every deviation by a peer, the minimum utility over all *compliant*
//! agents stays non-negative: following the suggested strategy never
//! costs an agent, no matter what the others do.

use super::{config, random_bids, rng};
use crate::table::Report;
use dmw::audit::voluntary_participation_table;

/// Builds the strong-voluntary-participation report.
pub fn run(seed: u64) -> Report {
    let mut r = rng(seed);
    let n = 6;
    let c = 2;
    let m = 2;
    let instances = 10u32;
    let mut report = Report::new("Theorems 6–9 — strong voluntary participation");
    report.note(format!(
        "{instances} random instances, n = {n}, c = {c}, m = {m}; agent 4 deviates. \
         The minimum compliant-agent utility must never go negative."
    ));

    let mut agg: Vec<(&'static str, i128, u32)> = Vec::new();
    for _ in 0..instances {
        let cfg = config(n, c, &mut r);
        let truth = random_bids(&cfg, m, &mut r);
        let rows = voluntary_participation_table(&cfg, &truth, 4, &mut r).expect("valid run");
        for row in rows {
            match agg.iter_mut().find(|(l, ..)| *l == row.behavior) {
                Some((_, min_u, completions)) => {
                    *min_u = (*min_u).min(row.min_compliant_utility);
                    *completions += u32::from(row.completed);
                }
                None => agg.push((
                    row.behavior,
                    row.min_compliant_utility,
                    u32::from(row.completed),
                )),
            }
        }
    }

    let rows: Vec<Vec<String>> = agg
        .iter()
        .map(|(label, min_u, completions)| {
            vec![
                label.to_string(),
                format!("{completions}/{instances}"),
                min_u.to_string(),
                if *min_u >= 0 {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    report.table(
        "worst compliant utility per peer deviation",
        &[
            "peer deviation",
            "runs completed",
            "min compliant utility",
            "non-negative?",
        ],
        rows,
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn compliant_agents_never_lose() {
        let report = super::run(41);
        let (_, _, rows) = &report.tables[0];
        for row in rows {
            assert_eq!(row[3], "yes", "compliant loss: {row:?}");
        }
    }
}
