//! The experiment implementations, one module per paper artifact.

pub mod ablation_batch;
pub mod ablation_c;
pub mod ablation_quantize;
pub mod approx;
pub mod batch;
pub mod comm;
pub mod comp;
pub mod equivalence;
pub mod extensions;
pub mod faithfulness;
pub mod false_positive;
pub mod fig2;
pub mod privacy;
pub mod scale;
pub mod truthfulness;
pub mod voluntary;

use dmw::config::DmwConfig;
use dmw_mechanism::ExecutionTimes;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG for an experiment.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Protocol configuration with default group sizes.
///
/// # Panics
///
/// Panics on invalid `(n, c)` — experiments pass valid shapes.
pub fn config(n: usize, c: usize, rng: &mut StdRng) -> DmwConfig {
    DmwConfig::generate(n, c, rng).expect("valid experiment configuration")
}

/// Uniform random bid matrix within the configuration's bid set.
///
/// # Panics
///
/// Panics on invalid shapes — experiments pass valid shapes.
pub fn random_bids(config: &DmwConfig, m: usize, rng: &mut StdRng) -> ExecutionTimes {
    dmw_mechanism::generators::uniform(config.agents(), m, 1..=config.encoding().w_max(), rng)
        .expect("valid experiment instance")
}

/// Least-squares slope of `log y` against `log x` — the measured growth
/// exponent used to check the Θ-claims of Table 1.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    assert!(points.len() >= 2, "need at least two points for a slope");
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_recovers_exponents() {
        let quadratic: Vec<(f64, f64)> =
            (2..10).map(|x| (x as f64, (x * x) as f64 * 3.0)).collect();
        assert!((log_log_slope(&quadratic) - 2.0).abs() < 1e-9);
        let linear: Vec<(f64, f64)> = (2..10).map(|x| (x as f64, x as f64 * 7.0)).collect();
        assert!((log_log_slope(&linear) - 1.0).abs() < 1e-9);
    }
}
