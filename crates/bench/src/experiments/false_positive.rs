//! FP — "the degree resolution mistakenly succeeds with probability 1/p"
//! (§2.4; `1/q` in this implementation's exponent-field formulation).
//!
//! With `s ≤ deg f − 1` shares, the Lagrange interpolation at zero of a
//! random zero-constant polynomial is a uniform field element, so it
//! vanishes — a *false* resolution success — with probability `1/q`.
//! Sweeping small `q` makes the rate measurable.
//!
//! A sharpening over the paper's claim falls out of the analysis: with
//! *exactly* `s = deg f` shares the interpolant at zero equals
//! `−a_d · Π α_j ≠ 0` (the leading coefficient is non-zero by
//! construction), so that boundary case can never falsely resolve — the
//! `1/q` accident applies only to candidates at least two degrees below
//! the truth.

use super::rng;
use crate::table::Report;
use dmw_modmath::{lagrange, Poly, PrimeField};

/// Measures the false-success rate for `trials` random degree-`d`
/// polynomials interpolated from `d − 1` shares (two fewer than needed
/// for a true resolution; see the module docs for why `d` shares can
/// never falsely resolve).
///
/// # Panics
///
/// Panics if `degree < 2`.
pub fn measure(q: u64, degree: usize, trials: u32, seed: u64) -> f64 {
    assert!(degree >= 2, "need at least two shares short of resolution");
    let field = PrimeField::new(q).expect("prime q");
    let mut r = rng(seed);
    let mut hits = 0u32;
    for _ in 0..trials {
        let poly = Poly::random_zero_constant(&field, degree, &mut r);
        let shares: Vec<(u64, u64)> = (1..degree as u64)
            .map(|a| (a, poly.eval(&field, a)))
            .collect();
        if lagrange::interpolate_at_zero(&field, &shares).expect("distinct points") == 0 {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

/// Builds the false-positive report.
pub fn run(seed: u64) -> Report {
    let mut report = Report::new("Accidental degree resolution — measured rate vs 1/q (§2.4)");
    report.note("Interpolating a degree-d zero-constant polynomial from d − 1 shares: the value at zero is uniform, so it vanishes with probability 1/q. (With exactly d shares the accident is impossible — the leading coefficient is non-zero — a sharpening of the paper's 1/p claim.)");

    let trials = 40_000u32;
    let degree = 5usize;
    let mut rows = Vec::new();
    for &q in &[11u64, 31, 101, 251, 1031] {
        let measured = measure(q, degree, trials, seed + q);
        rows.push(vec![
            q.to_string(),
            format!("{:.5}", 1.0 / q as f64),
            format!("{measured:.5}"),
            format!("{:.2}", measured * q as f64),
        ]);
    }
    report.table(
        format!("degree {degree}, {trials} trials per q"),
        &["q", "predicted 1/q", "measured rate", "measured × q (→ 1)"],
        rows,
    );
    report.note("At the production group size (|q| ≈ 24 bits and up) the accident probability is below 10⁻⁷ per candidate.".to_string());
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn rate_tracks_one_over_q() {
        for &q in &[11u64, 101] {
            let measured = super::measure(q, 4, 30_000, 81);
            let predicted = 1.0 / q as f64;
            assert!(
                (measured - predicted).abs() < 4.0 * (predicted / 30_000f64).sqrt() + 1e-3,
                "q={q}: measured {measured} vs predicted {predicted}"
            );
        }
    }
}
