//! APPROX — "MinWork … is a n-approximation to the scheduling on
//! unrelated machines problem" (§1.1, citing Nisan & Ronen).
//!
//! Two measurements:
//! * random instances, exact optimum by branch-and-bound — the *typical*
//!   makespan ratio is small;
//! * the adversarial instance family — the ratio approaches `n` exactly,
//!   showing the bound is tight.

use crate::table::Report;
use dmw::batch::BatchRunner;
use dmw_mechanism::generators::{adversarial_makespan, uniform};
use dmw_mechanism::objectives::{optimal_sum_completion_times, sum_completion_times};
use dmw_mechanism::optimal::optimal_makespan;
use dmw_mechanism::MinWork;

/// Builds the approximation-ratio report.
pub fn run(seed: u64) -> Report {
    let mechanism = MinWork::default();
    let engine = BatchRunner::new();
    let mut report = Report::new("n-approximation of the makespan (MinWork vs exact optimum)");
    report.note("MinWork minimizes total work; its makespan is at most n times the optimum, and the adversarial family shows the factor is tight.");

    // Random instances: each trial draws from its own seeded stream and
    // solves an independent exact optimum, so the sweep fans across the
    // batch engine.
    let mut rows = Vec::new();
    for (shape, &(n, m, trials)) in [(3usize, 4usize, 60u32), (4, 4, 60), (5, 5, 40)]
        .iter()
        .enumerate()
    {
        let jobs: Vec<u32> = (0..trials).collect();
        let ratios = engine.execute(seed ^ ((shape as u64) << 32), &jobs, |_, _, r| {
            let t = uniform(n, m, 1..=20, r).expect("valid shape");
            let mw = mechanism.run(&t).expect("valid matrix");
            let got = mw.schedule.makespan(&t).expect("same shape") as f64;
            let opt = optimal_makespan(&t).expect("small instance").makespan as f64;
            got / opt
        });
        let worst = ratios.iter().copied().fold(0.0f64, f64::max);
        let sum: f64 = ratios.iter().sum();
        rows.push(vec![
            format!("{n}x{m}"),
            trials.to_string(),
            format!("{:.2}", sum / trials as f64),
            format!("{worst:.2}"),
            n.to_string(),
        ]);
    }
    report.table(
        "random instances (uniform times 1..=20)",
        &["shape", "trials", "mean ratio", "worst ratio", "bound n"],
        rows,
    );

    // Adversarial family: ratio -> n. Deterministic per size, a plain
    // parallel map.
    let sizes = [2usize, 3, 4, 5, 6, 8];
    let rows: Vec<Vec<String>> = engine.map(&sizes, |_, &n| {
        let t = adversarial_makespan(n, 100).expect("valid family");
        let mw = mechanism.run(&t).expect("valid matrix");
        let got = mw.schedule.makespan(&t).expect("same shape") as f64;
        let opt = optimal_makespan(&t).expect("small instance").makespan as f64;
        vec![
            n.to_string(),
            format!("{got}"),
            format!("{opt}"),
            format!("{:.3}", got / opt),
        ]
    });
    report.table(
        "adversarial family (all tasks marginally cheapest on one machine)",
        &[
            "n = m",
            "MinWork makespan",
            "optimal makespan",
            "ratio (→ n)",
        ],
        rows,
    );

    // The other objective Definition 2 names: sum of completion times —
    // polynomially solvable exactly (min-cost matching), so the gap is
    // measured against the true optimum at larger sizes.
    let mut rows = Vec::new();
    for (shape, &(n, m, trials)) in [(4usize, 6usize, 40u32), (6, 10, 30)].iter().enumerate() {
        let jobs: Vec<u32> = (0..trials).collect();
        let ratios = engine.execute(seed ^ ((shape as u64) << 48), &jobs, |_, _, r| {
            let t = uniform(n, m, 1..=20, r).expect("valid shape");
            let mw = mechanism.run(&t).expect("valid matrix");
            let got = sum_completion_times(&mw.schedule, &t).expect("same shape") as f64;
            let (_, opt) = optimal_sum_completion_times(&t).expect("valid shape");
            got / opt as f64
        });
        let worst = ratios.iter().copied().fold(0.0f64, f64::max);
        let sum_ratio: f64 = ratios.iter().sum();
        rows.push(vec![
            format!("{n}x{m}"),
            trials.to_string(),
            format!("{:.2}", sum_ratio / trials as f64),
            format!("{worst:.2}"),
        ]);
    }
    report.table(
        "sum of completion times: MinWork vs the exact (Hungarian) optimum",
        &["shape", "trials", "mean ratio", "worst ratio"],
        rows,
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn adversarial_ratios_approach_n() {
        let report = super::run(61);
        let (_, _, rows) = &report.tables[1];
        for row in rows {
            let n: f64 = row[0].parse().unwrap();
            let ratio: f64 = row[3].parse().unwrap();
            assert!(ratio > 0.9 * n, "ratio {ratio} far below n = {n}");
            assert!(ratio <= n + 1e-9, "ratio cannot exceed n");
        }
    }
}
