//! THM-truth — Theorem 2: MinWork is truthful.
//!
//! Randomized and exhaustive misreport search over the centralized
//! mechanism: no unilateral misreport may beat truth-telling. The
//! distributed protocol inherits this for its information-revelation
//! actions (condition 1 of Theorem 1).

use super::rng;
use crate::table::Report;
use dmw::batch::BatchRunner;
use dmw_mechanism::audit::{exhaustive_truthfulness, randomized_truthfulness};
use dmw_mechanism::{AgentId, MinWork};

/// Builds the truthfulness report.
pub fn run(seed: u64) -> Report {
    let mut r = rng(seed);
    let mechanism = MinWork::default();
    let engine = BatchRunner::new();
    let mut report = Report::new("Theorem 2 — MinWork truthfulness (misreport search)");
    report.note("Utility of every unilateral misreport compared against truth-telling; a truthful mechanism yields zero violations.");

    // Randomized search across instance shapes. Each instance is an
    // independent audit drawing from its own seeded stream, so the whole
    // shape fans across the batch engine.
    let mut rows = Vec::new();
    for (shape, &(n, m, instances, samples)) in [
        (3usize, 2usize, 40u32, 60u32),
        (5, 3, 30, 60),
        (8, 4, 20, 60),
    ]
    .iter()
    .enumerate()
    {
        let jobs: Vec<u32> = (0..instances).collect();
        let audits = engine.execute(seed ^ ((shape as u64) << 32), &jobs, |_, _, r| {
            let truth = dmw_mechanism::generators::uniform(n, m, 1..=12, r).expect("valid shape");
            randomized_truthfulness(&mechanism, &truth, 15, samples, r).expect("audit runs")
        });
        let checked: u64 = audits.iter().map(|a| a.deviations_checked).sum();
        let violations: usize = audits.iter().map(|a| a.violations.len()).sum();
        rows.push(vec![
            format!("{n}x{m}"),
            instances.to_string(),
            checked.to_string(),
            violations.to_string(),
        ]);
    }
    report.table(
        "randomized misreport search",
        &[
            "instance shape",
            "instances",
            "misreports checked",
            "violations",
        ],
        rows,
    );

    // Exhaustive search on a small grid: deterministic per agent, so the
    // three audits fan across the engine as plain parallel map jobs.
    let truth = dmw_mechanism::generators::uniform(3, 2, 1..=6, &mut r).expect("valid shape");
    let grid: Vec<u64> = (1..=8).collect();
    let agents = [0usize, 1, 2];
    let audits = engine.map(&agents, |_, &agent| {
        exhaustive_truthfulness(&mechanism, &truth, AgentId(agent), &grid).expect("audit runs")
    });
    let rows = agents
        .iter()
        .zip(&audits)
        .map(|(&agent, audit)| {
            vec![
                AgentId(agent).to_string(),
                audit.deviations_checked.to_string(),
                audit.violations.len().to_string(),
            ]
        })
        .collect();
    report.table(
        "exhaustive misreport search (3x2 instance, bid grid 1..=8)",
        &["agent", "misreports checked", "violations"],
        rows,
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn no_violations_reported() {
        let report = super::run(21);
        for (_, _, rows) in &report.tables {
            for row in rows {
                assert_eq!(row.last().unwrap(), "0", "violations found: {row:?}");
            }
        }
    }
}
