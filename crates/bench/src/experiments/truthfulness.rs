//! THM-truth — Theorem 2: MinWork is truthful.
//!
//! Randomized and exhaustive misreport search over the centralized
//! mechanism: no unilateral misreport may beat truth-telling. The
//! distributed protocol inherits this for its information-revelation
//! actions (condition 1 of Theorem 1).

use super::rng;
use crate::table::Report;
use dmw_mechanism::audit::{exhaustive_truthfulness, randomized_truthfulness};
use dmw_mechanism::{AgentId, MinWork};

/// Builds the truthfulness report.
pub fn run(seed: u64) -> Report {
    let mut r = rng(seed);
    let mechanism = MinWork::default();
    let mut report = Report::new("Theorem 2 — MinWork truthfulness (misreport search)");
    report.note("Utility of every unilateral misreport compared against truth-telling; a truthful mechanism yields zero violations.");

    // Randomized search across instance shapes.
    let mut rows = Vec::new();
    for &(n, m, instances, samples) in &[
        (3usize, 2usize, 40u32, 60u32),
        (5, 3, 30, 60),
        (8, 4, 20, 60),
    ] {
        let mut checked = 0u64;
        let mut violations = 0usize;
        for i in 0..instances {
            let truth =
                dmw_mechanism::generators::uniform(n, m, 1..=12, &mut r).expect("valid shape");
            let audit = randomized_truthfulness(&mechanism, &truth, 15, samples, &mut r)
                .expect("audit runs");
            checked += audit.deviations_checked;
            violations += audit.violations.len();
            let _ = i;
        }
        rows.push(vec![
            format!("{n}x{m}"),
            instances.to_string(),
            checked.to_string(),
            violations.to_string(),
        ]);
    }
    report.table(
        "randomized misreport search",
        &[
            "instance shape",
            "instances",
            "misreports checked",
            "violations",
        ],
        rows,
    );

    // Exhaustive search on a small grid.
    let truth = dmw_mechanism::generators::uniform(3, 2, 1..=6, &mut r).expect("valid shape");
    let grid: Vec<u64> = (1..=8).collect();
    let mut rows = Vec::new();
    for agent in 0..3 {
        let audit =
            exhaustive_truthfulness(&mechanism, &truth, AgentId(agent), &grid).expect("audit runs");
        rows.push(vec![
            AgentId(agent).to_string(),
            audit.deviations_checked.to_string(),
            audit.violations.len().to_string(),
        ]);
    }
    report.table(
        "exhaustive misreport search (3x2 instance, bid grid 1..=8)",
        &["agent", "misreports checked", "violations"],
        rows,
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn no_violations_reported() {
        let report = super::run(21);
        for (_, _, rows) in &report.tables {
            for row in rows {
                assert_eq!(row.last().unwrap(), "0", "violations found: {row:?}");
            }
        }
    }
}
