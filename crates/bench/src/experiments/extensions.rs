//! Extension experiments: the mechanisms the paper cites or names as
//! future work, measured against DMW/MinWork.
//!
//! * [`vcg`] — MinWork *is* VCG for the total-work objective (§1.1), and
//!   VCG on a restricted outcome space stops decomposing into Vickrey
//!   auctions;
//! * [`randomized_two`] — Nisan–Ronen's randomized biased mechanism for
//!   two machines: expected makespan ratio ≤ 7/4 vs MinWork's factor-2;
//! * [`related_machines`] — the Archer–Tardos one-parameter framework
//!   (the paper's §5 future work): monotone work curves, threshold
//!   payments, truthfulness;
//! * [`obedient`] — the Open Problem 10 strawman: leader-based
//!   distribution of MinWork is `Θ(mn)` cheap but blindly trusts (and is
//!   silently robbed by) the leader;
//! * [`repeated`] — the Remark under Theorem 10: replaying the same
//!   instance, an agent armed with the leaked first/second prices still
//!   cannot beat truth-telling.

use super::{config, random_bids, rng};
use crate::table::Report;
use dmw::obedient::{run_obedient, LeaderBehavior};
use dmw::repeated::repeated_execution;
use dmw::runner::DmwRunner;
use dmw_mechanism::optimal::optimal_makespan;
use dmw_mechanism::randomized::{run_with_coins, Coins};
use dmw_mechanism::related::{archer_tardos_payment, FastestTakesAll, ProportionalShare, WorkRule};
use dmw_mechanism::vcg::{OutcomeSpace, Vcg};
use dmw_mechanism::{AgentId, MinWork, TieBreak};

/// VCG vs MinWork: equivalence on the unrestricted space, divergence on a
/// balanced space.
pub fn vcg(seed: u64) -> Report {
    let mut r = rng(seed);
    let mut report = Report::new("VCG and MinWork (§1.1 lineage)");
    report.note("On the unrestricted outcome space, VCG with the total-work objective decomposes into per-task Vickrey auctions — it *is* MinWork.");

    let trials = 25u32;
    let mut identical = 0u32;
    for _ in 0..trials {
        let bids = dmw_mechanism::generators::uniform(4, 3, 1..=12, &mut r).expect("shape");
        let vcg = Vcg::default().run(&bids).expect("small instance");
        let mw = MinWork::new(TieBreak::LowestIndex)
            .run(&bids)
            .expect("matrix");
        if vcg.schedule == mw.schedule && vcg.payments == mw.payments {
            identical += 1;
        }
    }
    report.table(
        "unrestricted space",
        &["trials", "identical schedule + payments"],
        vec![vec![trials.to_string(), format!("{identical}/{trials}")]],
    );

    // Restricted space: payments deviate from second prices.
    let bids = dmw_mechanism::ExecutionTimes::from_rows(vec![vec![1, 1], vec![5, 5], vec![9, 9]])
        .expect("shape");
    let unrestricted = Vcg::default().run(&bids).expect("small instance");
    let balanced = Vcg::new(OutcomeSpace::Balanced { limit: 1 })
        .run(&bids)
        .expect("instance");
    report.table(
        "restricted (≤1 task per agent) vs unrestricted on a 3×2 instance",
        &["space", "makespan", "total payments"],
        vec![
            vec![
                "unrestricted (= MinWork)".into(),
                unrestricted
                    .schedule
                    .makespan(&bids)
                    .expect("shape")
                    .to_string(),
                unrestricted.payments.iter().sum::<u64>().to_string(),
            ],
            vec![
                "balanced".into(),
                balanced
                    .schedule
                    .makespan(&bids)
                    .expect("shape")
                    .to_string(),
                balanced.payments.iter().sum::<u64>().to_string(),
            ],
        ],
    );
    report.note("The balanced space buys a better makespan at higher Clarke payments — truthfulness is kept by the pivot rule, not by per-task decomposition.".to_string());
    report
}

/// The randomized two-machine mechanism vs MinWork: expected makespan.
pub fn randomized_two(seed: u64) -> Report {
    let mut r = rng(seed);
    let mut report = Report::new("Randomized 7/4 mechanism for two machines (§1.1)");
    report.note("Expected makespan over all coin outcomes (exhaustive), ratio to the exact optimum; MinWork is deterministic and 2-approximate on two machines.");
    let trials = 60u32;
    let m = 4usize;
    let mut worst_rand: f64 = 0.0;
    let mut worst_mw: f64 = 0.0;
    let (mut sum_rand, mut sum_mw) = (0.0f64, 0.0f64);
    for _ in 0..trials {
        let bids = dmw_mechanism::generators::uniform(2, m, 1..=30, &mut r).expect("shape");
        let opt = optimal_makespan(&bids).expect("small").makespan as f64;
        let mut expected = 0.0;
        for mask in 0..(1u32 << m) {
            let coins = Coins {
                favoured: (0..m)
                    .map(|j| AgentId(((mask >> j) & 1) as usize))
                    .collect(),
            };
            let outcome = run_with_coins(&bids, &coins).expect("two machines");
            expected += outcome.schedule.makespan(&bids).expect("shape") as f64;
        }
        expected /= (1u32 << m) as f64;
        let mw = MinWork::default().run(&bids).expect("matrix");
        let mw_ratio = mw.schedule.makespan(&bids).expect("shape") as f64 / opt;
        let rand_ratio = expected / opt;
        worst_rand = worst_rand.max(rand_ratio);
        worst_mw = worst_mw.max(mw_ratio);
        sum_rand += rand_ratio;
        sum_mw += mw_ratio;
    }
    report.table(
        format!("{trials} random 2×{m} instances"),
        &["mechanism", "mean makespan ratio", "worst ratio", "bound"],
        vec![
            vec![
                "randomized biased (β = 4/3)".into(),
                format!("{:.3}", sum_rand / trials as f64),
                format!("{worst_rand:.3}"),
                "7/4 = 1.75 (expected)".into(),
            ],
            vec![
                "MinWork".into(),
                format!("{:.3}", sum_mw / trials as f64),
                format!("{worst_mw:.3}"),
                "2 (deterministic lower bound)".into(),
            ],
        ],
    );
    report
}

/// Archer–Tardos one-parameter mechanisms for related machines (§5
/// future work).
pub fn related_machines(seed: u64) -> Report {
    let _ = seed;
    let mut report = Report::new("Related machines — one-parameter mechanisms (§5 future work)");
    report.note("Archer–Tardos: monotone work curve + payment c·w(c) + ∫ w. Two rules over costs {1, 2, 4} and W = 100 units of work.");
    let costs = [1.0f64, 2.0, 4.0];
    let total_work = 100.0;
    let (c_max, steps) = (200.0, 20_000);
    let mut rows = Vec::new();
    for (name, rule) in [
        ("fastest-takes-all", &FastestTakesAll as &dyn WorkRule),
        ("proportional-share", &ProportionalShare as &dyn WorkRule),
    ] {
        for (i, &c) in costs.iter().enumerate() {
            let w = rule.work(i, &costs, total_work);
            let p = archer_tardos_payment_dyn(rule, i, &costs, total_work, c_max, steps);
            rows.push(vec![
                name.to_string(),
                format!("machine {} (c = {c})", i + 1),
                format!("{w:.1}"),
                format!("{p:.1}"),
                format!("{:.1}", p - c * w),
            ]);
        }
    }
    report.table(
        "work, payment and truthful profit per machine",
        &["rule", "machine", "work", "payment", "profit"],
        rows,
    );
    report.note("fastest-takes-all degenerates to a Vickrey threshold (payment = second-lowest cost × W); proportional-share achieves the fractional-optimal makespan with every machine profiting — the centralized reference a distributed version must be faithful to.".to_string());
    report
}

fn archer_tardos_payment_dyn(
    rule: &dyn WorkRule,
    agent: usize,
    costs: &[f64],
    total_work: f64,
    c_max: f64,
    steps: usize,
) -> f64 {
    struct Dyn<'a>(&'a dyn WorkRule);
    impl WorkRule for Dyn<'_> {
        fn work(&self, agent: usize, costs: &[f64], total_work: f64) -> f64 {
            self.0.work(agent, costs, total_work)
        }
    }
    archer_tardos_payment(&Dyn(rule), agent, costs, total_work, c_max, steps).expect("valid inputs")
}

/// The obedient-leader strawman vs DMW (Open Problem 10).
pub fn obedient(seed: u64) -> Report {
    let mut r = rng(seed);
    let mut report = Report::new("Open Problem 10 — obedient-leader distribution vs DMW");
    report.note("The leader collects plaintext bids and broadcasts the outcome: Θ(mn) traffic, zero privacy, unverifiable trust.");

    let mut rows = Vec::new();
    for &(n, m) in &[(4usize, 2usize), (8, 4), (16, 4)] {
        let cfg = config(n, 1, &mut r);
        let bids = random_bids(&cfg, m, &mut r);
        let obedient = run_obedient(&bids, LeaderBehavior::Honest).expect("valid run");
        let dmw_run = DmwRunner::new(cfg)
            .run_honest(&bids, &mut r)
            .expect("valid run");
        assert!(dmw_run.is_completed());
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            obedient.network.point_to_point.to_string(),
            dmw_run.network.point_to_point.to_string(),
            format!(
                "{:.1}",
                dmw_run.network.point_to_point as f64 / obedient.network.point_to_point as f64
            ),
        ]);
    }
    report.table(
        "traffic: obedient leader vs DMW",
        &["n", "m", "obedient msgs", "DMW msgs", "DMW / obedient"],
        rows,
    );

    // The trust failure.
    let cfg = config(6, 1, &mut r);
    let bids = random_bids(&cfg, 3, &mut r);
    let robbed = run_obedient(&bids, LeaderBehavior::SelfDealing).expect("valid run");
    report.table(
        "self-dealing leader (undetectable by the agents)",
        &[
            "published outcome honest?",
            "tasks taken by leader",
            "leader's self-payment",
        ],
        vec![vec![
            robbed.honest_outcome.to_string(),
            robbed
                .outcome
                .schedule
                .tasks_of(AgentId(0))
                .len()
                .to_string(),
            robbed.outcome.payments[0].to_string(),
        ]],
    );
    report.note("DMW pays the factor-n traffic premium precisely to make this theft impossible: every published value is bound to the committed bids by equations (7)–(15).".to_string());
    report
}

/// Repeated executions and the first/second-price leak (Theorem 10
/// Remark).
pub fn repeated(seed: u64) -> Report {
    let mut r = rng(seed);
    let mut report =
        Report::new("Repeated executions — exploiting the revealed prices (Theorem 10, Remark)");
    report.note("Round one runs honestly and leaks (y*, y**) per task; round two replays the same instance with one agent playing informed price-targeting strategies.");

    let instances = 12u32;
    // strategy -> (worst advantage, count informed > truthful)
    let mut agg: Vec<(&'static str, i128, u32)> = Vec::new();
    for _ in 0..instances {
        let cfg = config(6, 1, &mut r);
        let truth = random_bids(&cfg, 2, &mut r);
        let rows = repeated_execution(&cfg, &truth, AgentId(2), &mut r).expect("valid run");
        for row in rows {
            let adv = row.informed_utility - row.truthful_utility;
            match agg.iter_mut().find(|(l, ..)| *l == row.strategy) {
                Some((_, worst, wins)) => {
                    *worst = (*worst).max(adv);
                    *wins += u32::from(adv > 0);
                }
                None => agg.push((row.strategy, adv, u32::from(adv > 0))),
            }
        }
    }
    let rows: Vec<Vec<String>> = agg
        .iter()
        .map(|(label, worst, wins)| {
            vec![
                label.to_string(),
                format!("{wins}/{instances}"),
                worst.to_string(),
            ]
        })
        .collect();
    report.table(
        "informed strategies vs truth-telling",
        &["strategy", "rounds it profited", "max advantage"],
        rows,
    );
    report.note("Per-round truthfulness makes the leak worthless — the mitigation the Remark claims, measured.".to_string());
    report
}

/// Bid-rigging rings: where truthfulness stops.
///
/// Faithfulness (Theorem 5) and truthfulness (Theorem 2) are *unilateral*
/// guarantees. A coordinated ring can still profit with the classic
/// Vickrey-ring strategy: on every task, only the ring's internally
/// cheapest member bids its true value; the others inflate to `w_max`.
/// Whenever the ring holds both the lowest and the second-lowest true
/// bids on a task, the payment rises to the best *outside* bid — pure
/// ring profit. DMW inherits this untouched; this experiment measures the
/// gain as the ring grows, an honest limitation the paper does not
/// discuss.
pub fn bid_rigging(seed: u64) -> Report {
    let mut r = rng(seed);
    let n = 8usize;
    let m = 3usize;
    let instances = 15u32;
    let mut report = Report::new("Bid-rigging rings — the limit of unilateral truthfulness");
    report.note(format!(
        "{instances} random instances, n = {n}, m = {m}. Per task, the ring's cheapest member \
         bids truthfully; other members inflate to w_max (the classic Vickrey ring)."
    ));

    let mut rows = Vec::new();
    for ring_size in [1usize, 2, 3, 4, 5] {
        let mut total_gain = 0i128;
        let mut profited = 0u32;
        for _ in 0..instances {
            let cfg = config(n, 1, &mut r);
            let w_max = cfg.encoding().w_max();
            let truth = random_bids(&cfg, m, &mut r);
            let runner = DmwRunner::new(cfg);
            let honest = runner.run_honest(&truth, &mut r).expect("valid run");
            let honest_ring: i128 = (0..ring_size)
                .map(|i| dmw::runner::utilities(&honest, &truth)[i])
                .sum();
            // Per task, every ring member except the ring's cheapest
            // inflates its bid.
            let mut rigged = truth.clone();
            for j in 0..m {
                let best = (0..ring_size)
                    .min_by_key(|&i| truth.time(AgentId(i), dmw_mechanism::TaskId(j)))
                    .expect("non-empty ring");
                for member in 0..ring_size {
                    if member != best {
                        rigged.set_time(AgentId(member), dmw_mechanism::TaskId(j), w_max);
                    }
                }
            }
            let run = runner.run_honest(&rigged, &mut r).expect("valid run");
            let rigged_ring: i128 = (0..ring_size)
                .map(|i| dmw::runner::utilities(&run, &truth)[i])
                .sum();
            let gain = rigged_ring - honest_ring;
            total_gain += gain;
            profited += u32::from(gain > 0);
        }
        rows.push(vec![
            ring_size.to_string(),
            format!("{profited}/{instances}"),
            format!("{:.1}", total_gain as f64 / instances as f64),
        ]);
    }
    report.table(
        "ring gain vs ring size (gain in bid units, summed over the ring)",
        &[
            "ring size",
            "instances with positive gain",
            "mean ring gain",
        ],
        rows,
    );
    report.note("A ring of one is plain truthfulness (gain = 0); larger rings profit increasingly often — DMW, like every Vickrey-style mechanism, is not group-strategyproof. The cryptography binds agents to their bids; it cannot make coordinated bids unprofitable.".to_string());
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn vcg_report_shows_full_equivalence() {
        let report = super::vcg(7);
        let (_, _, rows) = &report.tables[0];
        assert_eq!(rows[0][1], "25/25");
    }

    #[test]
    fn randomized_respects_the_bounds() {
        let report = super::randomized_two(8);
        let (_, _, rows) = &report.tables[0];
        let worst_rand: f64 = rows[0][2].parse().unwrap();
        assert!(worst_rand <= 1.75 + 1e-9);
    }

    #[test]
    fn obedient_is_cheaper_but_robbable() {
        let report = super::obedient(9);
        let (_, _, traffic) = &report.tables[0];
        for row in traffic {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio > 1.0, "DMW must cost more than the strawman");
        }
        let (_, _, robbed) = &report.tables[1];
        assert_eq!(robbed[0][0], "false");
    }

    #[test]
    fn repeated_leak_is_worthless() {
        let report = super::repeated(10);
        let (_, _, rows) = &report.tables[0];
        for row in rows {
            let worst: i128 = row[2].parse().unwrap();
            assert!(worst <= 0, "{} profited: {worst}", row[0]);
        }
    }

    #[test]
    fn singleton_ring_never_profits_but_larger_rings_can() {
        let report = super::bid_rigging(11);
        let (_, _, rows) = &report.tables[0];
        // Ring of one is unilateral deviation: zero profitable instances.
        assert_eq!(rows[0][1].split('/').next().unwrap(), "0");
        // Some larger ring profits somewhere (Vickrey collusion).
        let any_profit = rows[1..]
            .iter()
            .any(|row| row[1].split('/').next().unwrap().parse::<u32>().unwrap() > 0);
        assert!(any_profit, "expected at least one profitable ring");
    }
}
