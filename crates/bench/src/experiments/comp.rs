//! T1-comp — Table 1, row "Computational cost": MinWork `Θ(mn)` vs DMW
//! `O(mn² log p)` per agent, counted in modular multiplications (an
//! inversion priced as one multiplication, the paper's Section 2.4 cost
//! model).
//!
//! The thread-local operation counters of `dmw-modmath` record every
//! multiplication performed during a run; dividing by `n` gives the
//! per-agent figure (DMW's work is symmetric across agents). Three sweeps
//! isolate the three factors: `n` (expected exponent ≈ 2), `m` (≈ 1) and
//! `log p` (≈ 1, by sweeping the modulus bit size).

use super::{log_log_slope, random_bids, rng};
use crate::table::Report;
use dmw::config::DmwConfig;
use dmw::runner::DmwRunner;
use dmw_mechanism::MinWork;
use dmw_modmath::ops;

/// Comparison counts for one (n, c, m, p_bits) cell.
#[derive(Debug, Clone, Copy)]
pub struct CompCell {
    /// DMW modular multiplications per agent.
    pub dmw_per_agent: u64,
    /// Centralized MinWork comparison count (`Θ(mn)` comparisons).
    pub minwork_ops: u64,
}

/// Measures one cell: a full honest DMW run (ops divided by `n`) and the
/// centralized mechanism's comparison count.
pub fn measure(n: usize, c: usize, m: usize, p_bits: u32, seed: u64) -> CompCell {
    measure_with_policy(n, c, m, p_bits, dmw::VerificationPolicy::Rotation, seed)
}

/// Like [`measure`] with an explicit verification policy — the knob that
/// separates the paper-consistent `Θ(mn² log p)` rotation scheme from the
/// `Θ(mn³ log p)` full mutual verification.
pub fn measure_with_policy(
    n: usize,
    c: usize,
    m: usize,
    p_bits: u32,
    policy: dmw::VerificationPolicy,
    seed: u64,
) -> CompCell {
    let mut r = rng(seed);
    let q_bits = (p_bits / 2).clamp(12, 30);
    let cfg = DmwConfig::generate_with_bits(n, c, p_bits, q_bits, &mut r)
        .expect("valid experiment configuration");
    let bids = random_bids(&cfg, m, &mut r);
    ops::reset_ops();
    let run = DmwRunner::new(cfg)
        .with_policy(policy)
        .run_honest(&bids, &mut r)
        .expect("valid run");
    assert!(run.is_completed());
    let snap = ops::take_ops();
    // Centralized MinWork scans m columns of n bids twice (min and second
    // min) and sums second prices: Θ(mn).
    let minwork_ops = (2 * m * n + m) as u64;
    CompCell {
        dmw_per_agent: snap.mul_equivalents() / n as u64,
        minwork_ops,
    }
}

/// Builds the full computation report.
pub fn run(seed: u64) -> Report {
    let mut report =
        Report::new("Table 1 — computational cost: MinWork Θ(mn) vs DMW O(mn² log p) per agent");
    report.note("DMW work = measured modular multiplications (inversions costed as one mul, §2.4), divided by n.");
    report.note("MinWork work = the Θ(mn) bid-scan comparisons of the centralized mechanism.");

    let c = 1usize;
    // Sweep n.
    let (m, p_bits) = (2usize, 48u32);
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &n in &[4usize, 6, 8, 12, 16, 24, 32, 48] {
        let cell = measure(n, c, m, p_bits, seed + n as u64);
        points.push((n as f64, cell.dmw_per_agent as f64));
        let model = (m * n * n) as f64 * (p_bits as f64);
        rows.push(vec![
            n.to_string(),
            cell.minwork_ops.to_string(),
            cell.dmw_per_agent.to_string(),
            format!("{:.2}", cell.dmw_per_agent as f64 / model),
        ]);
    }
    let slope = log_log_slope(&points);
    report.table(
        format!("sweep over n (m = {m}, |p| = {p_bits} bits) — growth exponent in n: {slope:.2} (paper: 2)"),
        &["n", "MinWork ops", "DMW muls/agent", "muls / (mn² log p)"],
        rows,
    );

    // Sweep m.
    let (n, p_bits) = (8usize, 48u32);
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &m in &[1usize, 2, 4, 8, 16] {
        let cell = measure(n, c, m, p_bits, seed + 100 + m as u64);
        points.push((m as f64, cell.dmw_per_agent as f64));
        rows.push(vec![
            m.to_string(),
            cell.minwork_ops.to_string(),
            cell.dmw_per_agent.to_string(),
        ]);
    }
    let slope = log_log_slope(&points);
    report.table(
        format!("sweep over m (n = {n}, |p| = {p_bits} bits) — growth exponent in m: {slope:.2} (paper: 1)"),
        &["m", "MinWork ops", "DMW muls/agent"],
        rows,
    );

    // Sweep log p.
    let (n, m) = (8usize, 2usize);
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &p_bits in &[28u32, 36, 44, 52, 60] {
        let cell = measure(n, c, m, p_bits, seed + 200 + p_bits as u64);
        points.push((p_bits as f64, cell.dmw_per_agent as f64));
        rows.push(vec![
            p_bits.to_string(),
            cell.dmw_per_agent.to_string(),
            format!("{:.0}", cell.dmw_per_agent as f64 / p_bits as f64),
        ]);
    }
    let slope = log_log_slope(&points);
    report.table(
        format!(
            "sweep over |p| (n = {n}, m = {m}) — growth exponent in log p: {slope:.2} (paper: 1)"
        ),
        &["|p| bits", "DMW muls/agent", "muls / log p"],
        rows,
    );

    // Verification-policy ablation: rotation (Table 1's implicit
    // assumption) vs full mutual verification.
    let (m, p_bits) = (1usize, 40u32);
    let mut rows = Vec::new();
    let mut rot_points = Vec::new();
    let mut full_points = Vec::new();
    for &n in &[4usize, 8, 16] {
        let rot = measure_with_policy(
            n,
            1,
            m,
            p_bits,
            dmw::VerificationPolicy::Rotation,
            seed + 300 + n as u64,
        );
        let full = measure_with_policy(
            n,
            1,
            m,
            p_bits,
            dmw::VerificationPolicy::Full,
            seed + 300 + n as u64,
        );
        rot_points.push((n as f64, rot.dmw_per_agent as f64));
        full_points.push((n as f64, full.dmw_per_agent as f64));
        rows.push(vec![
            n.to_string(),
            rot.dmw_per_agent.to_string(),
            full.dmw_per_agent.to_string(),
            format!(
                "{:.1}",
                full.dmw_per_agent as f64 / rot.dmw_per_agent as f64
            ),
        ]);
    }
    report.table(
        format!(
            "verification-policy ablation (m = {m}, |p| = {p_bits}) — growth exponents: rotation {:.2}, full {:.2}",
            log_log_slope(&rot_points),
            log_log_slope(&full_points)
        ),
        &["n", "rotation muls/agent", "full muls/agent", "full / rotation"],
        rows,
    );
    report.note("Full mutual verification grows roughly one power of n faster — the reason the rotation scheme is the default (see DESIGN.md).".to_string());
    let _ = MinWork::default(); // anchor the comparison mechanism in-docs
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dmw_work_grows_quadratically_in_n() {
        let points: Vec<(f64, f64)> = [4usize, 8, 16]
            .iter()
            .map(|&n| (n as f64, measure(n, 1, 1, 40, 5).dmw_per_agent as f64))
            .collect();
        let slope = log_log_slope(&points);
        assert!((1.5..=2.6).contains(&slope), "slope {slope} not ≈ 2");
    }

    #[test]
    fn dmw_work_grows_linearly_in_m() {
        let points: Vec<(f64, f64)> = [1usize, 4, 16]
            .iter()
            .map(|&m| (m as f64, measure(6, 1, m, 40, 6).dmw_per_agent as f64))
            .collect();
        let slope = log_log_slope(&points);
        assert!((0.8..=1.2).contains(&slope), "slope {slope} not ≈ 1");
    }

    #[test]
    fn dmw_work_grows_with_modulus_size() {
        let small = measure(6, 1, 1, 28, 7).dmw_per_agent;
        let large = measure(6, 1, 1, 60, 7).dmw_per_agent;
        assert!(large > small, "more bits must mean more multiplications");
    }
}
