//! `bench_batch` — wall-clock/throughput baseline of the batch engine.
//!
//! Times the identical trial batch at several thread counts,
//! cross-checks bit-identity of the results, and emits the
//! `dmw-bench-batch/v4` JSON baseline — wall-clock timings plus a
//! deterministic per-phase breakdown and the before/after (classic vs
//! adaptive endpoints) recovery comparison (see `docs/benchmarks.md`):
//!
//! ```text
//! cargo run --release -p dmw-bench --bin bench_batch -- --out BENCH_batch.json
//! cargo run --release -p dmw-bench --bin bench_batch -- --smoke
//! ```
//!
//! Flags: `--trials <N>` (default 192), `--threads <a,b,c>` (default
//! `1,2,4,8`; the first entry is the sequential reference), `--n/--c/--m`
//! (workload shape, default `8/1/4`), `--seed <u64>` (default the PODC
//! seed), `--no-chaos` (time the clean honest sweep instead of the
//! default chaos workload — reliable delivery over `drop_every(3)` loss
//! with a crash rotation exercising graceful degradation), `--out
//! <path>` (write the JSON baseline; omitted = print to stdout),
//! `--smoke` (tiny instance, no file output — the `check.sh` gate),
//! `--max-retransmissions <N>` / `--max-duplicates <N>` (recovery
//! regression ceilings: fail when the adaptive batch exceeds them).
//! Exits non-zero if any thread count produced results differing from
//! the sequential reference, or a recovery ceiling is exceeded.

use dmw_bench::experiments::batch::{measure, Workload};

struct Options {
    trials: usize,
    threads: Vec<usize>,
    n: usize,
    c: usize,
    m: usize,
    seed: u64,
    chaos: bool,
    out: Option<String>,
    smoke: bool,
    max_retransmissions: Option<u64>,
    max_duplicates: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_batch [--trials N] [--threads a,b,c] [--n N] [--c C] [--m M] \
         [--seed S] [--no-chaos] [--out PATH] [--smoke] \
         [--max-retransmissions N] [--max-duplicates N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn parse_options() -> Options {
    let mut options = Options {
        trials: 192,
        threads: vec![1, 2, 4, 8],
        n: 8,
        c: 1,
        m: 4,
        seed: 20050717, // PODC 2005
        chaos: true,
        out: None,
        smoke: false,
        max_retransmissions: None,
        max_duplicates: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trials" => options.trials = parse(it.next()),
            "--threads" => {
                let list: Option<Vec<usize>> = it
                    .next()
                    .map(|v| v.split(',').map(|t| t.trim().parse().ok()).collect())
                    .unwrap_or(None);
                options.threads = list.filter(|l| !l.is_empty()).unwrap_or_else(|| usage());
            }
            "--n" => options.n = parse(it.next()),
            "--c" => options.c = parse(it.next()),
            "--m" => options.m = parse(it.next()),
            "--seed" => options.seed = parse(it.next()),
            "--no-chaos" => options.chaos = false,
            "--out" => options.out = Some(it.next().unwrap_or_else(|| usage())),
            "--smoke" => options.smoke = true,
            "--max-retransmissions" => options.max_retransmissions = Some(parse(it.next())),
            "--max-duplicates" => options.max_duplicates = Some(parse(it.next())),
            _ => usage(),
        }
    }
    if options.smoke {
        // Tiny instance: exercises the whole engine path in well under a
        // second, which is all a pre-merge gate should cost.
        options.trials = 6;
        options.threads = vec![1, 2];
        options.n = 4;
        options.c = 0;
        options.m = 2;
        options.out = None;
    }
    options
}

fn main() {
    let options = parse_options();
    let workload = Workload {
        agents: options.n,
        faults: options.c,
        tasks: options.m,
        trials: options.trials,
        chaos: options.chaos,
    };
    eprintln!(
        "bench_batch: {} {} trials of n = {}, m = {}, c = {} at widths {:?} (seed {})",
        workload.trials,
        if workload.chaos { "chaos" } else { "honest" },
        workload.agents,
        workload.tasks,
        workload.faults,
        options.threads,
        options.seed
    );
    let baseline = measure(options.seed, workload, &options.threads);
    for run in &baseline.runs {
        eprintln!(
            "  threads {:>3}: {:>8.3}s  {:>8.1} trials/s  speedup {:.2}x",
            run.threads, run.wall_secs, run.trials_per_sec, run.speedup_vs_sequential
        );
    }
    eprintln!(
        "  completed {}/{} trials ({} degraded); bit-identical across widths: {}; \
         host parallelism: {}",
        baseline.completed_trials,
        workload.trials,
        baseline.degraded_trials,
        baseline.bit_identical,
        baseline.host_parallelism
    );
    if !baseline.bit_identical {
        eprintln!("bench_batch: FAILED — thread counts disagreed on trial results");
        std::process::exit(1);
    }
    // Recovery regression ceilings: the adaptive endpoints must stay
    // under the committed recovery-traffic budget.
    let mut over_ceiling = false;
    for (name, ceiling) in [
        ("retransmissions", options.max_retransmissions),
        ("duplicate_deliveries", options.max_duplicates),
    ] {
        let measured = baseline.metrics.counter_total(name);
        if let Some(ceiling) = ceiling {
            eprintln!("  {name}: {measured} (ceiling {ceiling})");
            if measured > ceiling {
                eprintln!("bench_batch: FAILED — {name} exceeded the recovery ceiling");
                over_ceiling = true;
            }
        }
    }
    if over_ceiling {
        std::process::exit(1);
    }
    let json = baseline.to_json();
    match &options.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("bench_batch: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("bench_batch: baseline written to {path}");
        }
        None => {
            if !options.smoke {
                println!("{json}");
            }
        }
    }
    if options.smoke {
        eprintln!("bench_batch: smoke OK");
    }
}
