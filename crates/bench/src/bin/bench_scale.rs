//! `bench_scale` — the n-sweep scaling baseline of the event-driven
//! scheduler.
//!
//! Sweeps the agent count 8 → 64 → 256 → 1024 (tasks scaling
//! alongside), timing a clean honest run and a crash-plus-deep-backoff
//! recovery run at each point up to the protocol ceiling, an
//! all-crashed scheduler-saturation ("silence") run at *every* point,
//! cross-checking the event engine against the poll-every-tick oracle
//! (backoff up to the oracle ceiling; silence always), and emitting
//! the `dmw-bench-scale/v1` JSON baseline (see `docs/benchmarks.md`
//! and `docs/scheduler.md`):
//!
//! ```text
//! cargo run --release -p dmw-bench --bin bench_scale -- --out BENCH_scale.json
//! cargo run --release -p dmw-bench --bin bench_scale -- --smoke
//! ```
//!
//! Flags: `--agents <a,b,c>` (the sweep's `n` values; tasks follow as
//! `max(2, n/32)`, trials as `max(1, 64/n)`), `--protocol-ceiling <N>`
//! (largest `n` that runs the full-protocol honest/backoff workloads;
//! default 256 — one n = 1024 protocol run costs hours of crypto on a
//! single core, so points above record `null` and the silence curve
//! continues alone), `--oracle-ceiling <N>` (largest `n` the polling
//! oracle re-runs the *backoff* workload for the wall-clock and
//! bit-parity comparison; default 256), `--seed <u64>` (default the
//! PODC seed), `--out <path>` (write the JSON baseline; omitted =
//! print to stdout), `--smoke` (n = 8 only, no file output — the
//! `check.sh` gate). Exits non-zero if any oracle-checked point was
//! not bit-identical.

use dmw_bench::experiments::scale::{default_shapes, measure_scale, ScaleShape};

struct Options {
    agents: Option<Vec<usize>>,
    protocol_ceiling: usize,
    oracle_ceiling: usize,
    seed: u64,
    out: Option<String>,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_scale [--agents a,b,c] [--protocol-ceiling N] \
         [--oracle-ceiling N] [--seed S] [--out PATH] [--smoke]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn parse_options() -> Options {
    let mut options = Options {
        agents: None,
        protocol_ceiling: 256,
        oracle_ceiling: 256,
        seed: 20050717, // PODC 2005
        out: None,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--agents" => {
                let list: Option<Vec<usize>> = it
                    .next()
                    .map(|v| v.split(',').map(|t| t.trim().parse().ok()).collect())
                    .unwrap_or(None);
                options.agents = Some(list.filter(|l| !l.is_empty()).unwrap_or_else(|| usage()));
            }
            "--protocol-ceiling" => options.protocol_ceiling = parse(it.next()),
            "--oracle-ceiling" => options.oracle_ceiling = parse(it.next()),
            "--seed" => options.seed = parse(it.next()),
            "--out" => options.out = Some(it.next().unwrap_or_else(|| usage())),
            "--smoke" => options.smoke = true,
            _ => usage(),
        }
    }
    if options.smoke {
        // Smallest point only: exercises all three workloads, both
        // oracle comparisons and the JSON path in well under a second.
        options.agents = Some(vec![8]);
        options.protocol_ceiling = 8;
        options.oracle_ceiling = 8;
        options.out = None;
    }
    options
}

fn main() {
    let options = parse_options();
    let shapes: Vec<ScaleShape> = match &options.agents {
        Some(agents) => agents
            .iter()
            .map(|&agents| ScaleShape {
                agents,
                tasks: (agents / 32).max(2),
                trials: (64 / agents).max(1),
            })
            .collect(),
        None => default_shapes(),
    };
    eprintln!(
        "bench_scale: sweeping n = {:?} (protocol ceiling {}, oracle ceiling {}, seed {})",
        shapes.iter().map(|s| s.agents).collect::<Vec<_>>(),
        options.protocol_ceiling,
        options.oracle_ceiling,
        options.seed
    );
    let baseline = measure_scale(
        options.seed,
        &shapes,
        options.oracle_ceiling,
        options.protocol_ceiling,
    );
    for point in &baseline.points {
        let protocol = match (&point.honest, &point.backoff) {
            (Some(honest), Some(backoff)) => {
                let oracle = match point.backoff_polling_wall_secs {
                    Some(secs) => format!("{secs:.3}s polling"),
                    None => "oracle skipped".to_owned(),
                };
                format!(
                    "honest {:>8.3}s ({} ticks); backoff {:>8.3}s ({} of {} ticks active, {})",
                    honest.wall_secs,
                    honest.run_ticks,
                    backoff.wall_secs,
                    backoff.events_processed,
                    backoff.run_ticks,
                    oracle
                )
            }
            _ => "protocol workloads skipped (above ceiling)".to_owned(),
        };
        eprintln!(
            "  n {:>5} m {:>3} x{:<2}: {}; silence {:>7.3}s ({} of {} ticks active, \
             {:.3}s polling); bit-identical: {}",
            point.shape.agents,
            point.shape.tasks,
            point.shape.trials,
            protocol,
            point.silence.wall_secs,
            point.silence.events_processed,
            point.silence.run_ticks,
            point.silence_polling_wall_secs,
            point.bit_identical
        );
    }
    if !baseline.all_bit_identical() {
        eprintln!("bench_scale: FAILED — event engine disagreed with the polling oracle");
        std::process::exit(1);
    }
    let json = baseline.to_json();
    match &options.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("bench_scale: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("bench_scale: baseline written to {path}");
        }
        None => {
            if !options.smoke {
                println!("{json}");
            }
        }
    }
    if options.smoke {
        eprintln!("bench_scale: smoke OK");
    }
}
