//! `reproduce` — regenerates every table and figure of the DMW paper.
//!
//! ```text
//! cargo run --release -p dmw-bench --bin reproduce -- all
//! cargo run --release -p dmw-bench --bin reproduce -- table1-comm
//! ```
//!
//! Subcommands: `table1-comm`, `table1-comp`, `fig2-trace`,
//! `truthfulness`, `faithfulness`, `voluntary`, `privacy`, `approx`,
//! `equivalence`, `false-positive`, `ablation-c`, `ablation-quantize`,
//! `all`. An optional `--seed <u64>` changes the experiment seed.
//! `--metrics <out.json>` writes the deterministic `dmw-obs` metrics
//! snapshot merged across every selected experiment that collects one
//! (currently `batch-engine`); the schema is documented in
//! `docs/benchmarks.md`.

use dmw_bench::experiments;
use dmw_bench::table::Report;

/// An experiment entry: CLI name plus the seeded runner producing its
/// report.
type Experiment = (&'static str, fn(u64) -> Report);

const EXPERIMENTS: &[Experiment] = &[
    ("table1-comm", experiments::comm::run),
    ("table1-comp", experiments::comp::run),
    ("fig2-trace", experiments::fig2::run),
    ("truthfulness", experiments::truthfulness::run),
    ("faithfulness", experiments::faithfulness::run),
    ("voluntary", experiments::voluntary::run),
    ("privacy", experiments::privacy::run),
    ("approx", experiments::approx::run),
    ("equivalence", experiments::equivalence::run),
    ("false-positive", experiments::false_positive::run),
    ("ablation-c", experiments::ablation_c::run),
    ("ablation-quantize", experiments::ablation_quantize::run),
    ("ablation-batch", experiments::ablation_batch::run),
    ("batch-engine", experiments::batch::run),
    ("vcg", experiments::extensions::vcg),
    ("randomized-two", experiments::extensions::randomized_two),
    (
        "related-machines",
        experiments::extensions::related_machines,
    ),
    ("obedient", experiments::extensions::obedient),
    ("repeated", experiments::extensions::repeated),
    ("bid-rigging", experiments::extensions::bid_rigging),
];

fn usage() -> ! {
    eprintln!("usage: reproduce <experiment|all> [--seed <u64>] [--metrics <out.json>]");
    eprintln!("experiments:");
    for (name, _) in EXPERIMENTS {
        eprintln!("  {name}");
    }
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 20050717u64; // PODC 2005
    let mut command: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let value = it.next().unwrap_or_else(|| usage());
                seed = value.parse().unwrap_or_else(|_| usage());
            }
            "--metrics" => {
                metrics_out = Some(it.next().unwrap_or_else(|| usage()));
            }
            "-h" | "--help" => usage(),
            name if command.is_none() => command = Some(name.to_string()),
            _ => usage(),
        }
    }
    let command = command.unwrap_or_else(|| usage());

    let selected: Vec<&Experiment> = if command == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        match EXPERIMENTS.iter().find(|(name, _)| *name == command) {
            Some(e) => vec![e],
            None => usage(),
        }
    };

    let mut merged = dmw_obs::MetricsSnapshot::default();
    for (name, runner) in selected {
        eprintln!("running {name} (seed {seed}) ...");
        let started = std::time::Instant::now();
        let report = runner(seed);
        println!("{}", report.render());
        if let Some(metrics) = &report.metrics {
            merged.absorb(metrics);
        }
        eprintln!("{name} finished in {:.1}s", started.elapsed().as_secs_f64());
    }
    if let Some(path) = metrics_out {
        match std::fs::write(&path, merged.to_json(0)) {
            Ok(()) => eprintln!("metrics snapshot written to {path}"),
            Err(e) => {
                eprintln!("reproduce: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
