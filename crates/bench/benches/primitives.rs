//! Criterion micro-benchmarks for the cryptographic primitives behind
//! Table 1: share generation, commitment computation, share verification
//! (equations (7)–(9)) and degree resolution (equation (12)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmw_crypto::commitments::{verify_shares, Commitments};
use dmw_crypto::polynomials::BidPolynomials;
use dmw_crypto::resolution::{compute_lambda_psi, resolve_min_bid};
use dmw_crypto::BidEncoding;
use dmw_modmath::{lagrange, Poly, SchnorrGroup};
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(777)
}

fn bench_polynomials(c: &mut Criterion) {
    let mut group = c.benchmark_group("polynomials");
    let field = dmw_modmath::PrimeField::new(0x7FFF_FFFF_FFFF_FFE7).unwrap();
    for degree in [8usize, 32, 128] {
        let mut r = rng();
        let poly = Poly::random_zero_constant(&field, degree, &mut r);
        group.bench_with_input(BenchmarkId::new("eval_horner", degree), &degree, |b, _| {
            b.iter(|| poly.eval(&field, 123_456_789))
        });
        let shares: Vec<(u64, u64)> = (1..=degree as u64 + 1)
            .map(|a| (a, poly.eval(&field, a)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("interpolate_at_zero", degree),
            &degree,
            |b, _| b.iter(|| lagrange::interpolate_at_zero(&field, &shares).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("resolve_zero_degree", degree),
            &degree,
            |b, _| b.iter(|| lagrange::resolve_zero_degree(&field, &shares)),
        );
    }
    group.finish();
}

fn bench_protocol_primitives(c: &mut Criterion) {
    let mut bench = c.benchmark_group("protocol-primitives");
    for n in [4usize, 8, 16] {
        let mut r = rng();
        let group = SchnorrGroup::generate(48, 24, &mut r).unwrap();
        let encoding = BidEncoding::new(n, 1).unwrap();
        let zq = group.zq();
        let alphas = zq.rand_distinct_nonzero(n, &mut r);
        let bid = 1u64;
        bench.bench_with_input(BenchmarkId::new("bid_polynomials", n), &n, |b, _| {
            b.iter(|| BidPolynomials::generate(&group, &encoding, bid, &mut r).unwrap())
        });
        let polys = BidPolynomials::generate(&group, &encoding, bid, &mut r).unwrap();
        bench.bench_with_input(BenchmarkId::new("commitments", n), &n, |b, _| {
            b.iter(|| Commitments::commit(&group, &encoding, &polys))
        });
        let commitments = Commitments::commit(&group, &encoding, &polys);
        let bundle = polys.share_for(&zq, alphas[0]);
        bench.bench_with_input(BenchmarkId::new("verify_shares", n), &n, |b, _| {
            b.iter(|| verify_shares(&group, &commitments, alphas[0], &bundle).unwrap())
        });
        // Degree resolution over n published lambdas.
        let all: Vec<BidPolynomials> = (0..n)
            .map(|i| {
                let b = 1 + (i as u64 % encoding.w_max());
                BidPolynomials::generate(&group, &encoding, b, &mut r).unwrap()
            })
            .collect();
        let lambdas: Vec<u64> = alphas
            .iter()
            .map(|&a| {
                let e: Vec<u64> = all.iter().map(|p| p.e().eval(&zq, a)).collect();
                let h: Vec<u64> = all.iter().map(|p| p.h().eval(&zq, a)).collect();
                compute_lambda_psi(&group, &e, &h).lambda
            })
            .collect();
        bench.bench_with_input(BenchmarkId::new("resolve_min_bid", n), &n, |b, _| {
            b.iter(|| resolve_min_bid(&group, &encoding, &alphas, &lambdas).unwrap())
        });
    }
    bench.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_polynomials, bench_protocol_primitives
}
criterion_main!(benches);
