//! Centralized mechanism benchmarks: MinWork against the exact and greedy
//! makespan baselines (the comparison row of Table 1 and the APPROX
//! experiment's solvers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmw_mechanism::optimal::{greedy_makespan, optimal_makespan};
use dmw_mechanism::MinWork;
use rand::SeedableRng;

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized");
    for &(n, m) in &[(8usize, 16usize), (32, 64), (64, 256)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4000 + (n + m) as u64);
        let bids = dmw_mechanism::generators::uniform(n, m, 1..=100, &mut rng).unwrap();
        let mechanism = MinWork::default();
        group.bench_with_input(
            BenchmarkId::new("minwork", format!("n{n}_m{m}")),
            &(n, m),
            |b, _| b.iter(|| mechanism.run(&bids).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy_makespan", format!("n{n}_m{m}")),
            &(n, m),
            |b, _| b.iter(|| greedy_makespan(&bids).unwrap()),
        );
    }
    // The exact solver only at toy sizes.
    for &(n, m) in &[(3usize, 6usize), (4, 6)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5000 + (n + m) as u64);
        let bids = dmw_mechanism::generators::uniform(n, m, 1..=20, &mut rng).unwrap();
        group.bench_with_input(
            BenchmarkId::new("optimal_makespan", format!("n{n}_m{m}")),
            &(n, m),
            |b, _| b.iter(|| optimal_makespan(&bids).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mechanisms
}
criterion_main!(benches);
