//! Transport-free auction computation (the blackboard reference), swept
//! over `n` and the modulus size — the wall-clock counterpart of the
//! Table 1 computational-cost experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmw_crypto::blackboard::honest_auction;
use dmw_crypto::BidEncoding;
use dmw_modmath::SchnorrGroup;
use rand::SeedableRng;

fn bench_blackboard_auction(c: &mut Criterion) {
    let mut group = c.benchmark_group("blackboard-auction");
    // Sweep n at fixed modulus size.
    for n in [4usize, 8, 12] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2000 + n as u64);
        let schnorr = SchnorrGroup::generate(48, 24, &mut rng).unwrap();
        let encoding = BidEncoding::new(n, 1).unwrap();
        let bids: Vec<u64> = (0..n).map(|i| 1 + (i as u64 % encoding.w_max())).collect();
        group.bench_with_input(BenchmarkId::new("by_n", n), &n, |b, _| {
            b.iter(|| honest_auction(&schnorr, &encoding, &bids, &mut rng).unwrap())
        });
    }
    // Sweep modulus size at fixed n.
    for p_bits in [32u32, 48, 62] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3000 + p_bits as u64);
        let schnorr = SchnorrGroup::generate(p_bits, 20, &mut rng).unwrap();
        let encoding = BidEncoding::new(6, 1).unwrap();
        let bids = [2u64, 1, 3, 4, 2, 1];
        group.bench_with_input(BenchmarkId::new("by_p_bits", p_bits), &p_bits, |b, _| {
            b.iter(|| honest_auction(&schnorr, &encoding, &bids, &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_blackboard_auction
}
criterion_main!(benches);
