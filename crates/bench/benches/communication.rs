//! End-to-end DMW protocol runs over the simulated network (the workload
//! behind the Table 1 communication experiment), swept over `n` and `m`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dmw::config::DmwConfig;
use dmw::runner::DmwRunner;
use rand::SeedableRng;

fn bench_protocol_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmw-protocol");
    for &(n, m) in &[(4usize, 1usize), (8, 1), (8, 4), (16, 2)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + (n * 100 + m) as u64);
        let config = DmwConfig::generate(n, 1, &mut rng).unwrap();
        let bids =
            dmw_mechanism::generators::uniform(n, m, 1..=config.encoding().w_max(), &mut rng)
                .unwrap();
        let runner = DmwRunner::new(config);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(
            BenchmarkId::new("honest_run", format!("n{n}_m{m}")),
            &(n, m),
            |b, _| {
                b.iter(|| {
                    let run = runner.run_honest(&bids, &mut rng).unwrap();
                    assert!(run.is_completed());
                    run.network.point_to_point
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_protocol_runs
}
criterion_main!(benches);
