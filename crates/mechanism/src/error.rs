//! Error types for the mechanism crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the `dmw-mechanism` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MechanismError {
    /// A mechanism requires at least two agents (the Vickrey payment
    /// `min_{i' ≠ i} y_{i'}` is undefined otherwise).
    TooFewAgents {
        /// Number of agents supplied.
        agents: usize,
    },
    /// An instance must contain at least one task.
    NoTasks,
    /// The rows of an execution-time matrix have inconsistent lengths.
    RaggedMatrix {
        /// Index of the first offending row.
        row: usize,
        /// Its length.
        len: usize,
        /// The expected length (taken from row 0).
        expected: usize,
    },
    /// Two matrices that must have identical shape differ.
    ShapeMismatch {
        /// Shape of the first matrix as (agents, tasks).
        left: (usize, usize),
        /// Shape of the second matrix as (agents, tasks).
        right: (usize, usize),
    },
    /// An agent index was out of range.
    UnknownAgent {
        /// The offending index.
        agent: usize,
        /// Number of agents in the instance.
        agents: usize,
    },
    /// A task index was out of range.
    UnknownTask {
        /// The offending index.
        task: usize,
        /// Number of tasks in the instance.
        tasks: usize,
    },
    /// The exact optimal solver refuses instances beyond its search budget.
    InstanceTooLarge {
        /// `n^m` search-space size that was rejected.
        states: u128,
        /// The solver's limit.
        limit: u128,
    },
    /// Quantization was configured with an invalid level count.
    InvalidQuantization {
        /// The offending number of levels.
        levels: usize,
    },
}

impl fmt::Display for MechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MechanismError::TooFewAgents { agents } => {
                write!(f, "mechanism requires at least 2 agents, got {agents}")
            }
            MechanismError::NoTasks => write!(f, "instance contains no tasks"),
            MechanismError::RaggedMatrix { row, len, expected } => {
                write!(f, "row {row} has {len} entries, expected {expected}")
            }
            MechanismError::ShapeMismatch { left, right } => {
                write!(
                    f,
                    "matrix shapes differ: {}x{} vs {}x{}",
                    left.0, left.1, right.0, right.1
                )
            }
            MechanismError::UnknownAgent { agent, agents } => {
                write!(f, "agent index {agent} out of range for {agents} agents")
            }
            MechanismError::UnknownTask { task, tasks } => {
                write!(f, "task index {task} out of range for {tasks} tasks")
            }
            MechanismError::InstanceTooLarge { states, limit } => {
                write!(
                    f,
                    "exact solver search space {states} exceeds the limit {limit}"
                )
            }
            MechanismError::InvalidQuantization { levels } => {
                write!(f, "quantization needs at least 1 level, got {levels}")
            }
        }
    }
}

impl Error for MechanismError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_well_behaved() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<MechanismError>();
        let e = MechanismError::TooFewAgents { agents: 1 };
        assert!(e.to_string().contains("at least 2 agents"));
    }
}
