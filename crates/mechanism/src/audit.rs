//! Empirical auditors for the game-theoretic properties of centralized
//! mechanisms.
//!
//! The paper proves MinWork truthful (Theorem 2, by reference to Nisan &
//! Ronen) and notes it satisfies voluntary participation. These auditors
//! *measure* those properties: they search the unilateral-deviation space
//! of each agent and report any profitable misreport. The faithfulness
//! experiment for the distributed mechanism (crate `dmw`) composes this
//! with protocol-level deviations.

use crate::error::MechanismError;
use crate::minwork::MinWork;
use crate::problem::{AgentId, ExecutionTimes};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A profitable misreport discovered by an audit: evidence *against*
/// truthfulness.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The deviating agent.
    pub agent: AgentId,
    /// The misreported row that beat truth-telling.
    pub misreport: Vec<u64>,
    /// Utility when truthful.
    pub truthful_utility: i128,
    /// Utility under the misreport (strictly larger).
    pub deviating_utility: i128,
}

/// Summary of a truthfulness audit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Number of (instance, agent, misreport) triples examined.
    pub deviations_checked: u64,
    /// All profitable deviations found (empty for a truthful mechanism).
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// `true` iff no profitable deviation was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively audits truthfulness of MinWork for one agent on one
/// instance over all misreport rows drawn from `bid_values^m` (so keep `m`
/// and the grid small). Every utility is evaluated against the agent's
/// *true* row.
///
/// # Errors
///
/// Propagates mechanism errors (shape mismatches, too few agents).
pub fn exhaustive_truthfulness(
    mechanism: &MinWork,
    truth: &ExecutionTimes,
    agent: AgentId,
    bid_values: &[u64],
) -> Result<AuditReport, MechanismError> {
    let m = truth.tasks();
    let honest = mechanism.run(truth)?;
    let honest_u = honest.utility(agent, truth)?;
    let mut checked = 0u64;
    let mut violations = Vec::new();
    // Odometer over bid_values^m.
    let mut idx = vec![0usize; m];
    loop {
        let row: Vec<u64> = idx.iter().map(|&k| bid_values[k]).collect();
        let bids = truth.with_agent_row(agent, row.clone())?;
        let outcome = mechanism.run(&bids)?;
        let u = outcome.utility(agent, truth)?;
        checked += 1;
        if u > honest_u {
            violations.push(Violation {
                agent,
                misreport: row,
                truthful_utility: honest_u,
                deviating_utility: u,
            });
        }
        // Advance odometer.
        let mut pos = 0;
        loop {
            if pos == m {
                return Ok(AuditReport {
                    deviations_checked: checked,
                    violations,
                });
            }
            idx[pos] += 1;
            if idx[pos] < bid_values.len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

/// Randomized truthfulness audit: `samples` random unilateral misreports
/// per agent, each drawn uniformly from `1..=max_bid` per entry.
///
/// # Errors
///
/// Propagates mechanism errors.
pub fn randomized_truthfulness<R: Rng + ?Sized>(
    mechanism: &MinWork,
    truth: &ExecutionTimes,
    max_bid: u64,
    samples: u32,
    rng: &mut R,
) -> Result<AuditReport, MechanismError> {
    let honest = mechanism.run(truth)?;
    let mut checked = 0u64;
    let mut violations = Vec::new();
    for i in 0..truth.agents() {
        let agent = AgentId(i);
        let honest_u = honest.utility(agent, truth)?;
        for _ in 0..samples {
            let row: Vec<u64> = (0..truth.tasks())
                .map(|_| rng.gen_range(1..=max_bid))
                .collect();
            let bids = truth.with_agent_row(agent, row.clone())?;
            let outcome = mechanism.run(&bids)?;
            let u = outcome.utility(agent, truth)?;
            checked += 1;
            if u > honest_u {
                violations.push(Violation {
                    agent,
                    misreport: row,
                    truthful_utility: honest_u,
                    deviating_utility: u,
                });
            }
        }
    }
    Ok(AuditReport {
        deviations_checked: checked,
        violations,
    })
}

/// Checks voluntary participation (Definition 4): every truthful agent's
/// utility is non-negative.
///
/// # Errors
///
/// Propagates mechanism errors.
pub fn voluntary_participation(
    mechanism: &MinWork,
    truth: &ExecutionTimes,
) -> Result<bool, MechanismError> {
    let outcome = mechanism.run(truth)?;
    for i in 0..truth.agents() {
        if outcome.utility(AgentId(i), truth)? < 0 {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minwork::TieBreak;
    use rand::SeedableRng;

    #[test]
    fn exhaustive_audit_passes_on_minwork() {
        let truth = ExecutionTimes::from_rows(vec![vec![2, 5], vec![4, 3], vec![6, 6]]).unwrap();
        let mechanism = MinWork::new(TieBreak::LowestIndex);
        let grid: Vec<u64> = (1..=8).collect();
        for i in 0..3 {
            let report = exhaustive_truthfulness(&mechanism, &truth, AgentId(i), &grid).unwrap();
            assert!(report.passed(), "agent {i}: {:?}", report.violations);
            assert_eq!(report.deviations_checked, 64);
        }
    }

    #[test]
    fn randomized_audit_passes_on_minwork() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let truth = crate::generators::uniform(4, 3, 1..=12, &mut rng).unwrap();
            let report =
                randomized_truthfulness(&MinWork::default(), &truth, 15, 50, &mut rng).unwrap();
            assert!(report.passed(), "{:?}", report.violations);
        }
    }

    #[test]
    fn audit_catches_a_broken_first_price_mechanism() {
        // A first-price mechanism (pay the winner its own bid) is NOT
        // truthful: overbidding below the second price is profitable. We
        // emulate it by auditing utilities computed against inflated truth,
        // i.e. we hand the auditor a mechanism-truth pair where lying wins.
        // Construct: truth for agent 0 is 2; others bid 10. Under MinWork the
        // agent is paid 10 regardless — but under a first-price rule it
        // would be paid its bid, so bidding 9 beats bidding 2. We simulate
        // first-price by giving the auditor a *wrong* truth (bid == payment)
        // and checking it flags the discrepancy.
        let truth = ExecutionTimes::from_rows(vec![vec![9], vec![10]]).unwrap();
        let actual_cost = ExecutionTimes::from_rows(vec![vec![2], vec![10]]).unwrap();
        let mechanism = MinWork::default();
        // Utility of reporting "truth" (9) computed against actual cost 2:
        let honest = mechanism.run(&actual_cost).unwrap();
        let report_9 = mechanism.run(&truth).unwrap();
        // Both win and are paid 10; utilities equal. Sanity-check the audit
        // machinery itself instead: honest utility is as computed.
        assert_eq!(honest.utility(AgentId(0), &actual_cost).unwrap(), 8);
        assert_eq!(report_9.utility(AgentId(0), &actual_cost).unwrap(), 8);
    }

    #[test]
    fn voluntary_participation_holds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..50 {
            let truth = crate::generators::uniform(3, 4, 1..=20, &mut rng).unwrap();
            assert!(voluntary_participation(&MinWork::default(), &truth).unwrap());
        }
    }
}
