//! Exact and greedy baselines for makespan minimization.
//!
//! MinWork minimizes *total work*, not makespan; the paper (citing Nisan &
//! Ronen) notes it is an `n`-approximation for the makespan objective. The
//! approximation-ratio experiment needs the true optimum, which for
//! unrelated machines is NP-hard — [`optimal_makespan`] enumerates the
//! `n^m` assignments with branch-and-bound pruning and is intended for the
//! small instances the experiment sweeps. [`greedy_makespan`] is the
//! polynomial list-scheduling baseline used for larger instances.

use crate::error::MechanismError;
use crate::problem::{AgentId, ExecutionTimes, Schedule, TaskId};
use serde::{Deserialize, Serialize};

/// Result of an exact or heuristic makespan minimization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MakespanSolution {
    /// The minimizing (or heuristic) schedule.
    pub schedule: Schedule,
    /// Its makespan under the given times.
    pub makespan: u64,
}

/// Hard cap on the `n^m` search-space size accepted by the exact solver.
pub const EXACT_SEARCH_LIMIT: u128 = 200_000_000;

/// Computes a schedule with minimum makespan by exhaustive search with
/// branch-and-bound pruning.
///
/// # Errors
///
/// Returns [`MechanismError::InstanceTooLarge`] when `n^m` exceeds
/// [`EXACT_SEARCH_LIMIT`].
///
/// # Example
/// ```
/// use dmw_mechanism::{ExecutionTimes, optimal::optimal_makespan};
///
/// let t = ExecutionTimes::from_rows(vec![vec![1, 1], vec![10, 10]])?;
/// // Spreading beats stacking: one task per agent is NOT optimal here
/// // because agent 2 is slow; both go to agent 1 for makespan 2.
/// assert_eq!(optimal_makespan(&t)?.makespan, 2);
/// # Ok::<(), dmw_mechanism::MechanismError>(())
/// ```
pub fn optimal_makespan(times: &ExecutionTimes) -> Result<MakespanSolution, MechanismError> {
    let n = times.agents();
    let m = times.tasks();
    let states = (n as u128).checked_pow(m as u32).unwrap_or(u128::MAX);
    if states > EXACT_SEARCH_LIMIT {
        return Err(MechanismError::InstanceTooLarge {
            states,
            limit: EXACT_SEARCH_LIMIT,
        });
    }
    // Upper bound from the greedy heuristic primes the pruning.
    let greedy = greedy_makespan(times)?;
    let mut best = greedy.makespan;
    let mut best_assignment: Vec<AgentId> = greedy.schedule.assignment().to_vec();
    let mut loads = vec![0u64; n];
    let mut current = vec![AgentId(0); m];

    fn search(
        times: &ExecutionTimes,
        task: usize,
        loads: &mut Vec<u64>,
        current: &mut Vec<AgentId>,
        best: &mut u64,
        best_assignment: &mut Vec<AgentId>,
    ) {
        let m = times.tasks();
        if task == m {
            let makespan = *loads.iter().max().expect("n >= 2");
            if makespan < *best {
                *best = makespan;
                best_assignment.clone_from(current);
            }
            return;
        }
        for i in 0..times.agents() {
            let t = times.time(AgentId(i), TaskId(task));
            let new_load = loads[i] + t;
            // Prune: partial makespan already >= incumbent.
            if new_load >= *best {
                continue;
            }
            loads[i] = new_load;
            current[task] = AgentId(i);
            search(times, task + 1, loads, current, best, best_assignment);
            loads[i] = new_load - t;
        }
    }

    search(
        times,
        0,
        &mut loads,
        &mut current,
        &mut best,
        &mut best_assignment,
    );
    let schedule = Schedule::from_assignment(n, best_assignment)?;
    let makespan = schedule.makespan(times)?;
    Ok(MakespanSolution { schedule, makespan })
}

/// List-scheduling heuristic: tasks in decreasing order of their minimum
/// execution time; each is placed where it yields the smallest resulting
/// completion time.
///
/// # Errors
///
/// Propagates shape errors from schedule construction (unreachable for
/// valid matrices).
pub fn greedy_makespan(times: &ExecutionTimes) -> Result<MakespanSolution, MechanismError> {
    let n = times.agents();
    let m = times.tasks();
    let mut order: Vec<usize> = (0..m).collect();
    let min_time = |j: usize| {
        (0..n)
            .map(|i| times.time(AgentId(i), TaskId(j)))
            .min()
            .expect("n >= 2")
    };
    order.sort_by_key(|&j| std::cmp::Reverse(min_time(j)));
    let mut loads = vec![0u64; n];
    let mut assignment = vec![AgentId(0); m];
    for &j in &order {
        let best = (0..n)
            .min_by_key(|&i| loads[i] + times.time(AgentId(i), TaskId(j)))
            .expect("n >= 2");
        loads[best] += times.time(AgentId(best), TaskId(j));
        assignment[j] = AgentId(best);
    }
    let schedule = Schedule::from_assignment(n, assignment)?;
    let makespan = schedule.makespan(times)?;
    Ok(MakespanSolution { schedule, makespan })
}

/// Computes the schedule minimizing *total work* (each task to its fastest
/// machine) — the quantity MinWork optimizes. Exposed as a baseline so
/// experiments can report both objectives side by side.
///
/// # Errors
///
/// Propagates shape errors from schedule construction (unreachable for
/// valid matrices).
pub fn min_total_work(times: &ExecutionTimes) -> Result<MakespanSolution, MechanismError> {
    let n = times.agents();
    let m = times.tasks();
    let mut assignment = Vec::with_capacity(m);
    for j in 0..m {
        let winner = (0..n)
            .min_by_key(|&i| times.time(AgentId(i), TaskId(j)))
            .expect("n >= 2");
        assignment.push(AgentId(winner));
    }
    let schedule = Schedule::from_assignment(n, assignment)?;
    let makespan = schedule.makespan(times)?;
    Ok(MakespanSolution { schedule, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minwork::MinWork;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn optimal_beats_or_matches_greedy_and_minwork() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let t = crate::generators::uniform(3, 4, 1..=15, &mut rng).unwrap();
            let opt = optimal_makespan(&t).unwrap();
            let greedy = greedy_makespan(&t).unwrap();
            let mw = MinWork::default().run(&t).unwrap();
            assert!(opt.makespan <= greedy.makespan);
            assert!(opt.makespan <= mw.schedule.makespan(&t).unwrap());
        }
    }

    #[test]
    fn optimal_on_known_instance() {
        // Two identical fast tasks on agent 0, slow on agent 1: optimal
        // splits? agent 0 takes both (2) vs split (max(1,10)=10).
        let t = ExecutionTimes::from_rows(vec![vec![1, 1], vec![10, 10]]).unwrap();
        assert_eq!(optimal_makespan(&t).unwrap().makespan, 2);
        // Symmetric unit tasks spread across agents.
        let t = ExecutionTimes::from_rows(vec![vec![1, 1], vec![1, 1]]).unwrap();
        assert_eq!(optimal_makespan(&t).unwrap().makespan, 1);
    }

    #[test]
    fn too_large_instances_rejected() {
        let t = crate::generators::uniform(8, 40, 1..=5, &mut rand::rngs::StdRng::seed_from_u64(0))
            .unwrap();
        assert!(matches!(
            optimal_makespan(&t),
            Err(MechanismError::InstanceTooLarge { .. })
        ));
    }

    #[test]
    fn min_total_work_matches_minwork_allocation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let t = crate::generators::uniform(4, 5, 1..=30, &mut rng).unwrap();
            let baseline = min_total_work(&t).unwrap();
            let mw = MinWork::default().run(&t).unwrap();
            assert_eq!(
                baseline.schedule.total_work(&t).unwrap(),
                mw.schedule.total_work(&t).unwrap()
            );
        }
    }

    proptest! {
        #[test]
        fn optimal_is_a_lower_bound(seed in 0u64..300) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let t = crate::generators::uniform(3, 3, 1..=20, &mut rng).unwrap();
            let opt = optimal_makespan(&t).unwrap();
            // No schedule among a random sample beats the optimum.
            for _ in 0..20 {
                let assignment: Vec<AgentId> =
                    (0..3).map(|_| AgentId(rng.gen_range(0..3))).collect();
                let s = Schedule::from_assignment(3, assignment).unwrap();
                prop_assert!(s.makespan(&t).unwrap() >= opt.makespan);
            }
        }
    }
}
