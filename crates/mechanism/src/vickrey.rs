//! The single-task procurement Vickrey auction.
//!
//! "The MinWork mechanism can be viewed as running a set of parallel and
//! independent Vickrey auctions, one for each task" (Section 2.2). In the
//! procurement (reverse) form used here, the *lowest* bidder wins and is
//! paid the *second-lowest* bid, which is what makes truth-telling dominant.

use crate::error::MechanismError;
use crate::problem::AgentId;
use serde::{Deserialize, Serialize};

/// The resolved result of one Vickrey auction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VickreyResult {
    /// The winning agent (lowest bid).
    pub winner: AgentId,
    /// The winning (first-price) bid `y*`.
    pub first_price: u64,
    /// The second-lowest bid `y**` — the payment to the winner.
    pub second_price: u64,
    /// Whether more than one agent bid the first price (the allocation among
    /// them is then decided by the caller's tie-break rule).
    pub tied: bool,
}

/// Runs a procurement Vickrey auction over `bids` (indexed by agent),
/// breaking first-price ties in favour of `tie_winner` if supplied (and a
/// tie exists), otherwise the lowest agent index — DMW's "agent with the
/// smallest pseudonym wins" rule (step III.3).
///
/// # Errors
///
/// Returns [`MechanismError::TooFewAgents`] when fewer than two bids are
/// supplied: the second price would be undefined.
///
/// # Example
/// ```
/// use dmw_mechanism::vickrey::auction;
///
/// let result = auction(&[5, 2, 9, 2], None)?;
/// assert_eq!(result.winner.0, 1); // lowest index among the tied bidders
/// assert_eq!(result.first_price, 2);
/// assert_eq!(result.second_price, 2); // the other tied bid is second
/// assert!(result.tied);
/// # Ok::<(), dmw_mechanism::MechanismError>(())
/// ```
pub fn auction(bids: &[u64], tie_winner: Option<AgentId>) -> Result<VickreyResult, MechanismError> {
    if bids.len() < 2 {
        return Err(MechanismError::TooFewAgents { agents: bids.len() });
    }
    let first_price = *bids.iter().min().expect("non-empty");
    let tied_agents: Vec<usize> = bids
        .iter()
        .enumerate()
        .filter(|&(_, b)| *b == first_price)
        .map(|(i, _)| i)
        .collect();
    let tied = tied_agents.len() > 1;
    let winner = match tie_winner {
        Some(w) if tied_agents.contains(&w.0) => w,
        _ => AgentId(tied_agents[0]),
    };
    // Second price: minimum over everyone except the winner.
    let second_price = bids
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != winner.0)
        .map(|(_, &b)| b)
        .min()
        .expect("at least two bids");
    Ok(VickreyResult {
        winner,
        first_price,
        second_price,
        tied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lowest_bid_wins_and_is_paid_second_lowest() {
        let r = auction(&[7, 3, 9], None).unwrap();
        assert_eq!(r.winner, AgentId(1));
        assert_eq!(r.first_price, 3);
        assert_eq!(r.second_price, 7);
        assert!(!r.tied);
    }

    #[test]
    fn tie_break_defaults_to_lowest_index() {
        let r = auction(&[4, 4, 9], None).unwrap();
        assert_eq!(r.winner, AgentId(0));
        assert_eq!(r.second_price, 4);
        assert!(r.tied);
    }

    #[test]
    fn tie_break_honours_requested_winner_when_tied() {
        let r = auction(&[4, 4, 9], Some(AgentId(1))).unwrap();
        assert_eq!(r.winner, AgentId(1));
        // A requested winner that did not bid the first price is ignored.
        let r = auction(&[4, 4, 9], Some(AgentId(2))).unwrap();
        assert_eq!(r.winner, AgentId(0));
    }

    #[test]
    fn two_agents_minimum() {
        assert!(auction(&[1], None).is_err());
        assert!(auction(&[], None).is_err());
        let r = auction(&[1, 2], None).unwrap();
        assert_eq!(r.second_price, 2);
    }

    #[test]
    fn all_equal_bids() {
        let r = auction(&[5, 5, 5, 5], None).unwrap();
        assert_eq!(r.winner, AgentId(0));
        assert_eq!(r.first_price, 5);
        assert_eq!(r.second_price, 5);
        assert!(r.tied);
    }

    proptest! {
        #[test]
        fn invariants(bids in proptest::collection::vec(0u64..1000, 2..16)) {
            let r = auction(&bids, None).unwrap();
            // Winner bids the minimum.
            prop_assert_eq!(bids[r.winner.0], r.first_price);
            prop_assert_eq!(r.first_price, *bids.iter().min().unwrap());
            // Payment is at least the winning bid (voluntary participation).
            prop_assert!(r.second_price >= r.first_price);
            // Payment is the min over the others.
            let others_min = bids.iter().enumerate()
                .filter(|&(i, _)| i != r.winner.0)
                .map(|(_, &b)| b).min().unwrap();
            prop_assert_eq!(r.second_price, others_min);
        }
    }
}
