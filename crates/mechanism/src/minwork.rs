//! The centralized **MinWork** mechanism (Definition 5 of the paper,
//! originally Nisan & Ronen 2001).
//!
//! * **Allocation:** each task goes to the agent able to execute it in
//!   minimum (reported) time; ties are broken randomly in the paper's
//!   definition, or deterministically by lowest index to match DMW's
//!   "smallest pseudonym wins" rule.
//! * **Payment:** `P_i(y) = Σ_{j ∈ S_i} min_{i' ≠ i} y_{i'}^j` — the winner
//!   of each task is paid the second-lowest bid for it (equation (1)).
//!
//! MinWork is truthful (Theorem 2), satisfies voluntary participation, and
//! is an `n`-approximation for makespan minimization.

use crate::error::MechanismError;
use crate::problem::{AgentId, ExecutionTimes, Outcome, Schedule, TaskId};
use crate::vickrey;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tie-breaking rule for tasks with more than one minimum bid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TieBreak {
    /// Deterministic: the tied agent with the smallest index wins. This is
    /// DMW's rule ("the agent with the smallest pseudonym wins", step
    /// III.3) and the default.
    #[default]
    LowestIndex,
    /// Random among the tied agents — the rule in the paper's Definition 5
    /// of the centralized mechanism. Requires [`MinWork::run_with_rng`].
    Random,
}

/// The MinWork mechanism.
///
/// # Example
/// ```
/// use dmw_mechanism::{MinWork, TieBreak, ExecutionTimes};
///
/// let bids = ExecutionTimes::from_rows(vec![vec![3, 1], vec![1, 2]])?;
/// let outcome = MinWork::new(TieBreak::LowestIndex).run(&bids)?;
/// assert_eq!(outcome.schedule.agent_of(0.into()), Some(1.into()));
/// assert_eq!(outcome.schedule.agent_of(1.into()), Some(0.into()));
/// assert_eq!(outcome.payments, vec![2, 3]);
/// # Ok::<(), dmw_mechanism::MechanismError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MinWork {
    tie_break: TieBreak,
}

impl MinWork {
    /// Creates a MinWork mechanism with the given tie-break rule.
    pub fn new(tie_break: TieBreak) -> Self {
        MinWork { tie_break }
    }

    /// The configured tie-break rule.
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }

    /// Runs the mechanism on a bid matrix with deterministic tie-breaking.
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::TooFewAgents`] if the matrix has fewer than
    /// two agents (enforced at construction of [`ExecutionTimes`], so this
    /// is unreachable for valid matrices).
    ///
    /// # Panics
    ///
    /// Panics if called with [`TieBreak::Random`]; use
    /// [`MinWork::run_with_rng`] to supply the randomness.
    pub fn run(&self, bids: &ExecutionTimes) -> Result<Outcome, MechanismError> {
        assert!(
            self.tie_break == TieBreak::LowestIndex,
            "TieBreak::Random requires run_with_rng"
        );
        self.run_inner(bids, &mut NoRng)
    }

    /// Runs the mechanism, breaking ties per the configured rule using
    /// `rng` when the rule is [`TieBreak::Random`].
    ///
    /// # Errors
    ///
    /// Same as [`MinWork::run`].
    pub fn run_with_rng<R: Rng + ?Sized>(
        &self,
        bids: &ExecutionTimes,
        rng: &mut R,
    ) -> Result<Outcome, MechanismError> {
        match self.tie_break {
            TieBreak::LowestIndex => self.run_inner(bids, &mut NoRng),
            TieBreak::Random => self.run_inner(bids, &mut Some(rng)),
        }
    }

    fn run_inner<T: TiePicker>(
        &self,
        bids: &ExecutionTimes,
        picker: &mut T,
    ) -> Result<Outcome, MechanismError> {
        let n = bids.agents();
        let m = bids.tasks();
        let mut assignment = Vec::with_capacity(m);
        let mut payments = vec![0u64; n];
        for j in 0..m {
            let column = bids.task_column(TaskId(j));
            let tie_winner = picker.pick(&column);
            let result = vickrey::auction(&column, tie_winner)?;
            assignment.push(result.winner);
            payments[result.winner.0] += result.second_price;
        }
        Ok(Outcome {
            schedule: Schedule::from_assignment(n, assignment)?,
            payments,
        })
    }
}

/// Internal abstraction over the tie-break randomness source.
trait TiePicker {
    /// Chooses among the minimum bidders of `column`, or `None` to use the
    /// deterministic lowest-index rule.
    fn pick(&mut self, column: &[u64]) -> Option<AgentId>;
}

/// Deterministic picker: always defers to lowest index.
struct NoRng;

impl TiePicker for NoRng {
    fn pick(&mut self, _column: &[u64]) -> Option<AgentId> {
        None
    }
}

impl<R: Rng + ?Sized> TiePicker for Option<&mut R> {
    fn pick(&mut self, column: &[u64]) -> Option<AgentId> {
        let rng = self.as_mut()?;
        let min = *column.iter().min()?;
        let tied: Vec<usize> = column
            .iter()
            .enumerate()
            .filter(|&(_, b)| *b == min)
            .map(|(i, _)| i)
            .collect();
        Some(AgentId(tied[rng.gen_range(0..tied.len())]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn bids_3x3() -> ExecutionTimes {
        ExecutionTimes::from_rows(vec![vec![2, 9, 4], vec![5, 4, 4], vec![7, 6, 1]]).unwrap()
    }

    #[test]
    fn allocates_each_task_to_minimum_bidder() {
        let outcome = MinWork::default().run(&bids_3x3()).unwrap();
        assert_eq!(outcome.schedule.agent_of(TaskId(0)), Some(AgentId(0)));
        assert_eq!(outcome.schedule.agent_of(TaskId(1)), Some(AgentId(1)));
        assert_eq!(outcome.schedule.agent_of(TaskId(2)), Some(AgentId(2)));
    }

    #[test]
    fn pays_sum_of_second_prices() {
        let outcome = MinWork::default().run(&bids_3x3()).unwrap();
        assert_eq!(outcome.payments, vec![5, 6, 4]);
    }

    #[test]
    fn tie_goes_to_lowest_index_with_tied_second_price() {
        // Task column [4, 4]: agent 0 wins, second price is 4.
        let bids = ExecutionTimes::from_rows(vec![vec![4], vec![4]]).unwrap();
        let outcome = MinWork::default().run(&bids).unwrap();
        assert_eq!(outcome.schedule.agent_of(TaskId(0)), Some(AgentId(0)));
        assert_eq!(outcome.payments, vec![4, 0]);
    }

    #[test]
    fn random_tie_break_always_picks_a_minimum_bidder() {
        let bids = ExecutionTimes::from_rows(vec![vec![4], vec![4], vec![9]]).unwrap();
        let mechanism = MinWork::new(TieBreak::Random);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut winners = std::collections::HashSet::new();
        for _ in 0..64 {
            let outcome = mechanism.run_with_rng(&bids, &mut rng).unwrap();
            let w = outcome.schedule.agent_of(TaskId(0)).unwrap();
            assert!(w.0 < 2, "only tied agents may win");
            winners.insert(w.0);
        }
        assert_eq!(winners.len(), 2, "both tied agents win eventually");
    }

    #[test]
    #[should_panic(expected = "run_with_rng")]
    fn random_rule_requires_rng() {
        let bids = ExecutionTimes::from_rows(vec![vec![4], vec![4]]).unwrap();
        let _ = MinWork::new(TieBreak::Random).run(&bids);
    }

    #[test]
    fn minimizes_total_work() {
        // MinWork's schedule minimizes total work over *all* schedules.
        let bids = bids_3x3();
        let outcome = MinWork::default().run(&bids).unwrap();
        let work = outcome.schedule.total_work(&bids).unwrap();
        // Exhaustive check over all 27 schedules.
        for a in 0..3usize {
            for b in 0..3usize {
                for c in 0..3usize {
                    let s = Schedule::from_assignment(3, vec![AgentId(a), AgentId(b), AgentId(c)])
                        .unwrap();
                    assert!(s.total_work(&bids).unwrap() >= work);
                }
            }
        }
    }

    proptest! {
        /// Theorem 2: truth-telling is dominant. For random instances and a
        /// random unilateral misreport, utility never improves.
        #[test]
        fn truthfulness(
            seed in 0u64..2000,
            n in 2usize..5,
            m in 1usize..4,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let truth = crate::generators::uniform(n, m, 1..=20, &mut rng).unwrap();
            let mechanism = MinWork::default();
            let honest = mechanism.run(&truth).unwrap();
            let deviator = AgentId(rng.gen_range(0..n));
            let honest_u = honest.utility(deviator, &truth).unwrap();
            let lie: Vec<u64> = (0..m).map(|_| rng.gen_range(1..=20)).collect();
            let bids = truth.with_agent_row(deviator, lie).unwrap();
            let outcome = mechanism.run(&bids).unwrap();
            let lying_u = outcome.utility(deviator, &truth).unwrap();
            prop_assert!(lying_u <= honest_u,
                "misreport improved utility: {lying_u} > {honest_u}");
        }

        /// Voluntary participation: truthful agents never incur a loss.
        #[test]
        fn voluntary_participation(
            seed in 0u64..2000,
            n in 2usize..6,
            m in 1usize..5,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let truth = crate::generators::uniform(n, m, 1..=20, &mut rng).unwrap();
            let outcome = MinWork::default().run(&truth).unwrap();
            for i in 0..n {
                prop_assert!(outcome.utility(AgentId(i), &truth).unwrap() >= 0);
            }
        }

        /// The makespan never exceeds n times the optimum on tiny instances
        /// (the n-approximation bound).
        #[test]
        fn n_approximation(seed in 0u64..500) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let truth = crate::generators::uniform(3, 3, 1..=9, &mut rng).unwrap();
            let outcome = MinWork::default().run(&truth).unwrap();
            let got = outcome.schedule.makespan(&truth).unwrap();
            let opt = crate::optimal::optimal_makespan(&truth).unwrap().makespan;
            prop_assert!(got <= 3 * opt, "makespan {got} > 3x optimal {opt}");
        }
    }
}
