//! The sum-of-completion-times objective (`Σ_j C_j`).
//!
//! Definition 2 lists the mechanism designer's candidate objectives:
//! "e.g., minimizing the makespan, minimizing the sum of completion
//! times". Makespan lives on [`crate::problem::Schedule`]; this module
//! adds `Σ C_j`:
//!
//! * [`sum_completion_times`] — the value of a given assignment, with each
//!   machine sequencing its tasks in SPT order (shortest processing time
//!   first), which is optimal per machine;
//! * [`optimal_sum_completion_times`] — the *global* optimum. Unlike the
//!   makespan (NP-hard), `R || ΣC_j` is polynomial (Horn; see the paper's
//!   scheduling reference \[34\]): assigning a task to the `r`-th-from-last
//!   position on machine `i` contributes `r · t_ij`, so the problem is a
//!   min-cost bipartite matching between tasks and `(machine, position)`
//!   slots, solved here by the Hungarian algorithm.

use crate::error::MechanismError;
use crate::problem::{AgentId, ExecutionTimes, Schedule, TaskId};

/// The sum of task completion times of `schedule` under `truth`, with
/// every machine running its assigned tasks in SPT order (the per-machine
/// optimal sequence).
///
/// # Errors
///
/// Returns [`MechanismError::ShapeMismatch`] when matrix and schedule
/// disagree.
pub fn sum_completion_times(
    schedule: &Schedule,
    truth: &ExecutionTimes,
) -> Result<u64, MechanismError> {
    if truth.agents() != schedule.agents() || truth.tasks() != schedule.tasks() {
        return Err(MechanismError::ShapeMismatch {
            left: (schedule.agents(), schedule.tasks()),
            right: (truth.agents(), truth.tasks()),
        });
    }
    let mut total = 0u64;
    for i in 0..schedule.agents() {
        let agent = AgentId(i);
        let mut times: Vec<u64> = schedule
            .tasks_of(agent)
            .into_iter()
            .map(|t| truth.time(agent, t))
            .collect();
        times.sort_unstable();
        // SPT: the k-th task (0-based) in the sequence is counted in the
        // completion time of everything after it — equivalently task k
        // contributes (len - k) times its own duration.
        let len = times.len() as u64;
        for (k, &t) in times.iter().enumerate() {
            total += (len - k as u64) * t;
        }
    }
    Ok(total)
}

/// The globally optimal `Σ C_j` schedule via min-cost matching of tasks
/// to `(machine, position-from-last)` slots.
///
/// # Errors
///
/// Propagates shape errors (unreachable for valid matrices).
pub fn optimal_sum_completion_times(
    truth: &ExecutionTimes,
) -> Result<(Schedule, u64), MechanismError> {
    let n = truth.agents();
    let m = truth.tasks();
    // Slot s = (machine i, rank r in 1..=m): cost of task j in s is r·t_ij.
    // Only m ranks per machine are ever needed.
    let slots: Vec<(usize, u64)> = (0..n)
        .flat_map(|i| (1..=m as u64).map(move |r| (i, r)))
        .collect();
    let cost = |task: usize, slot: usize| -> i64 {
        let (i, r) = slots[slot];
        (r * truth.time(AgentId(i), TaskId(task))) as i64
    };
    let assignment = hungarian(m, slots.len(), &cost);
    let mut per_task = vec![AgentId(0); m];
    for (task, &slot) in assignment.iter().enumerate() {
        per_task[task] = AgentId(slots[slot].0);
    }
    let schedule = Schedule::from_assignment(n, per_task)?;
    let value = sum_completion_times(&schedule, truth)?;
    Ok((schedule, value))
}

/// Rectangular Hungarian algorithm (augmenting rows, potentials): assigns
/// each of `rows` rows to a distinct one of `cols ≥ rows` columns
/// minimizing the total cost. Returns the chosen column per row.
///
/// # Panics
///
/// Panics if `cols < rows`.
fn hungarian(rows: usize, cols: usize, cost: &dyn Fn(usize, usize) -> i64) -> Vec<usize> {
    assert!(cols >= rows, "need at least as many columns as rows");
    const INF: i64 = i64::MAX / 4;
    // 1-based arrays per the classical formulation.
    let mut u = vec![0i64; rows + 1];
    let mut v = vec![0i64; cols + 1];
    let mut way = vec![0usize; cols + 1];
    // p[j] = row assigned to column j (0 = none).
    let mut p = vec![0usize; cols + 1];
    for i in 1..=rows {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; cols + 1];
        let mut used = vec![false; cols + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=cols {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut result = vec![usize::MAX; rows];
    for j in 1..=cols {
        if p[j] != 0 {
            result[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(result.iter().all(|&c| c != usize::MAX));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn spt_sequencing_is_applied_per_machine() {
        // One machine (plus an idle one), tasks 3 and 1: SPT runs 1 first
        // (C = 1), then 3 (C = 4): total 5, not 7.
        let t = ExecutionTimes::from_rows(vec![vec![3, 1], vec![100, 100]]).unwrap();
        let s = Schedule::from_assignment(2, vec![AgentId(0), AgentId(0)]).unwrap();
        assert_eq!(sum_completion_times(&s, &t).unwrap(), 5);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let t = ExecutionTimes::from_rows(vec![vec![1], vec![2]]).unwrap();
        let s = Schedule::from_assignment(3, vec![AgentId(0)]).unwrap();
        assert!(sum_completion_times(&s, &t).is_err());
    }

    /// Brute-force reference: all n^m assignments, SPT per machine.
    fn brute_force(t: &ExecutionTimes) -> u64 {
        let n = t.agents();
        let m = t.tasks();
        let mut best = u64::MAX;
        let mut assignment = vec![AgentId(0); m];
        loop {
            let s = Schedule::from_assignment(n, assignment.clone()).unwrap();
            best = best.min(sum_completion_times(&s, t).unwrap());
            let mut pos = 0;
            loop {
                if pos == m {
                    return best;
                }
                assignment[pos].0 += 1;
                if assignment[pos].0 < n {
                    break;
                }
                assignment[pos].0 = 0;
                pos += 1;
            }
        }
    }

    #[test]
    fn matching_solver_matches_brute_force() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let t = crate::generators::uniform(3, 4, 1..=15, &mut rng).unwrap();
            let (_, got) = optimal_sum_completion_times(&t).unwrap();
            assert_eq!(got, brute_force(&t));
        }
    }

    #[test]
    fn hungarian_solves_a_known_square_instance() {
        // 3x3 with optimum 4: rows to columns (1, 0, 2) = 1 + 2 + 1.
        let costs = [[4i64, 1, 3], [2, 0, 5], [3, 2, 1]];
        let assignment = hungarian(3, 3, &|r, c| costs[r][c]);
        let total: i64 = assignment
            .iter()
            .enumerate()
            .map(|(r, &c)| costs[r][c])
            .sum();
        assert_eq!(total, 4);
        // All columns distinct.
        let set: std::collections::HashSet<_> = assignment.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn hungarian_rejects_narrow_matrices() {
        let _ = hungarian(3, 2, &|_, _| 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn optimum_lower_bounds_random_schedules(seed in 0u64..5000) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let t = crate::generators::uniform(3, 5, 1..=20, &mut rng).unwrap();
            let (schedule, opt) = optimal_sum_completion_times(&t).unwrap();
            prop_assert_eq!(sum_completion_times(&schedule, &t).unwrap(), opt);
            for _ in 0..10 {
                let random: Vec<AgentId> =
                    (0..5).map(|_| AgentId(rand::Rng::gen_range(&mut rng, 0..3))).collect();
                let s = Schedule::from_assignment(3, random).unwrap();
                prop_assert!(sum_completion_times(&s, &t).unwrap() >= opt);
            }
        }
    }
}
