//! The randomized biased mechanism for two machines (§1.1: "the authors
//! designed a randomized 7/4-approximation mechanism for scheduling on
//! two machines", Nisan & Ronen 2001).
//!
//! Per task, a fair coin picks which machine is *favoured*; the favoured
//! machine wins whenever its bid is at most `β` times the other's
//! (`β = 4/3`), and critical-value payments keep each coin outcome
//! truthful (so the mechanism is *truthful in expectation* — in fact
//! universally truthful, being a distribution over truthful deterministic
//! mechanisms):
//!
//! * favoured machine wins and is paid `β · y_other`;
//! * unfavoured machine wins and is paid `y_other / β`.
//!
//! The expected makespan is at most `7/4` of the optimum — beating
//! MinWork's factor-2 lower bound for deterministic mechanisms on two
//! machines. Payments are rational (`β` is), so they are returned scaled:
//! all monetary amounts are in units of `1/(β_num·β_den) = 1/12` (the
//! [`SCALE`] constant) to stay exact in integers.

use crate::error::MechanismError;
use crate::problem::{AgentId, ExecutionTimes, Schedule, TaskId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The bias `β = β_num / β_den = 4/3` of Nisan–Ronen's two-machine
/// mechanism.
pub const BETA_NUM: u64 = 4;
/// Denominator of the bias.
pub const BETA_DEN: u64 = 3;

/// All monetary amounts are returned in units of `1/SCALE` so both
/// critical payments (`β·y` and `y/β`) stay exact integers.
pub const SCALE: u64 = BETA_NUM * BETA_DEN;

/// Outcome of the randomized mechanism: integer amounts scaled by
/// [`SCALE`] to keep the rational payments exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaledOutcome {
    /// The chosen schedule.
    pub schedule: Schedule,
    /// Per-agent payments in units of `1/SCALE`.
    pub scaled_payments: Vec<u64>,
}

impl ScaledOutcome {
    /// Agent utility in units of `1/SCALE`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn scaled_utility(
        &self,
        agent: AgentId,
        truth: &ExecutionTimes,
    ) -> Result<i128, MechanismError> {
        let load = self.schedule.load(agent, truth)?;
        Ok(self.scaled_payments[agent.0] as i128 - (load * SCALE) as i128)
    }
}

/// The per-task coin flips: `favoured[j]` is the machine favoured on task
/// `j`. Exposing the coins lets the truthfulness audit condition on them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coins {
    /// The favoured machine per task.
    pub favoured: Vec<AgentId>,
}

impl Coins {
    /// Samples fair coins for `m` tasks.
    pub fn flip<R: Rng + ?Sized>(m: usize, rng: &mut R) -> Self {
        Coins {
            favoured: (0..m)
                .map(|_| AgentId(usize::from(rng.gen_bool(0.5))))
                .collect(),
        }
    }
}

/// Runs the biased mechanism for the given coins (deterministic given
/// `coins`, which is what makes it universally truthful).
///
/// # Errors
///
/// Returns [`MechanismError::TooFewAgents`] unless exactly two agents bid,
/// and [`MechanismError::ShapeMismatch`] if `coins` does not cover the
/// tasks.
pub fn run_with_coins(
    bids: &ExecutionTimes,
    coins: &Coins,
) -> Result<ScaledOutcome, MechanismError> {
    if bids.agents() != 2 {
        return Err(MechanismError::TooFewAgents {
            agents: bids.agents(),
        });
    }
    let m = bids.tasks();
    if coins.favoured.len() != m {
        return Err(MechanismError::ShapeMismatch {
            left: (2, m),
            right: (2, coins.favoured.len()),
        });
    }
    let mut assignment = Vec::with_capacity(m);
    let mut scaled_payments = vec![0u64; 2];
    for j in 0..m {
        let fav = coins.favoured[j];
        let other = AgentId(1 - fav.0);
        let y_fav = bids.time(fav, TaskId(j));
        let y_other = bids.time(other, TaskId(j));
        // Favoured wins iff y_fav <= β·y_other, i.e. β_den·y_fav <= β_num·y_other.
        if BETA_DEN * y_fav <= BETA_NUM * y_other {
            assignment.push(fav);
            // Critical value β·y_other = 4/3·y_other; × SCALE = 16·y_other.
            scaled_payments[fav.0] += BETA_NUM * BETA_NUM * y_other;
        } else {
            assignment.push(other);
            // Critical value y_fav/β = 3/4·y_fav; × SCALE = 9·y_fav.
            scaled_payments[other.0] += BETA_DEN * BETA_DEN * y_fav;
        }
    }
    Ok(ScaledOutcome {
        schedule: Schedule::from_assignment(2, assignment)?,
        scaled_payments,
    })
}

/// Runs the mechanism with fresh fair coins.
///
/// # Errors
///
/// Same as [`run_with_coins`].
pub fn run_randomized<R: Rng + ?Sized>(
    bids: &ExecutionTimes,
    rng: &mut R,
) -> Result<ScaledOutcome, MechanismError> {
    let coins = Coins::flip(bids.tasks(), rng);
    run_with_coins(bids, &coins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::optimal_makespan;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn two_machine(seed: u64, m: usize) -> ExecutionTimes {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        crate::generators::uniform(2, m, 1..=30, &mut rng).unwrap()
    }

    #[test]
    fn rejects_other_machine_counts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let three = crate::generators::uniform(3, 2, 1..=9, &mut rng).unwrap();
        assert!(matches!(
            run_randomized(&three, &mut rng),
            Err(MechanismError::TooFewAgents { agents: 3 })
        ));
    }

    #[test]
    fn coins_must_cover_tasks() {
        let bids = two_machine(2, 3);
        let coins = Coins {
            favoured: vec![AgentId(0)],
        };
        assert!(matches!(
            run_with_coins(&bids, &coins),
            Err(MechanismError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn winner_is_paid_at_least_its_scaled_bid() {
        // Voluntary participation: the critical payment is at least the
        // winner's own (scaled) bid under either coin.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for seed in 0..30u64 {
            let bids = two_machine(seed, 4);
            let outcome = run_randomized(&bids, &mut rng).unwrap();
            for i in 0..2 {
                assert!(
                    outcome.scaled_utility(AgentId(i), &bids).unwrap() >= 0,
                    "seed {seed} agent {i}"
                );
            }
        }
    }

    #[test]
    fn expected_makespan_within_seven_fourths() {
        // Average over coins (exhaustively: 2^m outcomes) and instances.
        let mut worst_ratio = 0f64;
        for seed in 0..40u64 {
            let m = 3usize;
            let bids = two_machine(seed, m);
            let opt = optimal_makespan(&bids).unwrap().makespan as f64;
            let mut expected = 0f64;
            for mask in 0..(1u32 << m) {
                let coins = Coins {
                    favoured: (0..m)
                        .map(|j| AgentId(((mask >> j) & 1) as usize))
                        .collect(),
                };
                let outcome = run_with_coins(&bids, &coins).unwrap();
                expected += outcome.schedule.makespan(&bids).unwrap() as f64;
            }
            expected /= (1u32 << m) as f64;
            worst_ratio = worst_ratio.max(expected / opt);
        }
        assert!(
            worst_ratio <= 1.75 + 1e-9,
            "expected makespan ratio {worst_ratio} exceeds 7/4"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Universal truthfulness: for EVERY coin outcome, no misreport
        /// beats truth-telling (stronger than truthful-in-expectation).
        #[test]
        fn universally_truthful(seed in 0u64..2000, mask in 0u32..8) {
            let m = 3usize;
            let truth = two_machine(seed, m);
            let coins = Coins {
                favoured: (0..m).map(|j| AgentId(((mask >> j) & 1) as usize)).collect(),
            };
            let honest = run_with_coins(&truth, &coins).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
            let deviator = AgentId(rand::Rng::gen_range(&mut rng, 0..2));
            let honest_u = honest.scaled_utility(deviator, &truth).unwrap();
            let lie: Vec<u64> = (0..m).map(|_| rand::Rng::gen_range(&mut rng, 1..=30)).collect();
            let bids = truth.with_agent_row(deviator, lie).unwrap();
            let outcome = run_with_coins(&bids, &coins).unwrap();
            prop_assert!(outcome.scaled_utility(deviator, &truth).unwrap() <= honest_u);
        }
    }
}
