//! Truthful mechanisms for **related machines** — the paper's stated
//! future work ("Of particular interest is designing distributed versions
//! of the centralized mechanism for scheduling on related machines
//! proposed in \[4\]", §5, citing Archer & Tardos).
//!
//! Related machines are *one-parameter agents*: machine `i`'s private type
//! is a single cost-per-unit-work `c_i = 1/s_i`; its cost for receiving
//! `w` units of work is `c_i · w`. Archer & Tardos showed a mechanism is
//! truthful **iff** its work curve `w_i(c_i, c_{−i})` is non-increasing in
//! the agent's own declared cost, with payments
//!
//! ```text
//! P_i(c) = c_i · w_i(c) + ∫_{c_i}^{∞} w_i(u, c_{−i}) du .
//! ```
//!
//! This module provides that framework ([`archer_tardos_payment`], exact
//! for piecewise-constant work curves and numerically integrated
//! otherwise) plus two monotone allocation rules:
//!
//! * [`FastestTakesAll`] — every unit of work to the lowest declared
//!   cost; the integral collapses to the Vickrey threshold payment;
//! * [`ProportionalShare`] — work divided `∝ 1/c_i`, the *fractional
//!   optimum* for the makespan on related machines (all machines finish
//!   simultaneously), with a closed-form payment integral.
//!
//! The distributed-DMW analogue of these rules is exactly the open
//! problem the paper poses; here they serve as the centralized reference
//! a future distributed implementation must be faithful to.

use crate::error::MechanismError;
use serde::{Deserialize, Serialize};

/// A monotone work-allocation rule for one-parameter (related-machine)
/// agents. Declared costs are positive floats; `total_work` is the sum of
/// task requirements.
pub trait WorkRule {
    /// The work assigned to `agent` under declared costs `costs`.
    /// Must be non-increasing in `costs[agent]` for truthfulness.
    fn work(&self, agent: usize, costs: &[f64], total_work: f64) -> f64;
}

/// All work to the strictly lowest declared cost (ties: lowest index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FastestTakesAll;

impl WorkRule for FastestTakesAll {
    fn work(&self, agent: usize, costs: &[f64], total_work: f64) -> f64 {
        let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
        let winner = costs.iter().position(|&c| c == min).expect("non-empty");
        if winner == agent {
            total_work
        } else {
            0.0
        }
    }
}

/// Work divided proportionally to declared speed (`1/c_i`): every machine
/// finishes at the same time `T = W / Σ(1/c_j)`, the fractional optimal
/// makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProportionalShare;

impl WorkRule for ProportionalShare {
    fn work(&self, agent: usize, costs: &[f64], total_work: f64) -> f64 {
        let inv_sum: f64 = costs.iter().map(|c| 1.0 / c).sum();
        total_work * (1.0 / costs[agent]) / inv_sum
    }
}

/// The Archer–Tardos payment for one agent under a monotone rule:
/// `c_i·w_i(c) + ∫_{c_i}^{c_max} w_i(u, c_{−i}) du`, numerically
/// integrated on `steps` trapezoids up to `c_max` (beyond which the work
/// curve is treated as its value at `c_max`; pick `c_max` where the curve
/// has decayed, e.g. 100× the declared cost).
///
/// # Errors
///
/// Returns [`MechanismError::InvalidQuantization`] for non-positive
/// inputs or zero steps (reusing the validation error; the quantities are
/// continuous here).
pub fn archer_tardos_payment<R: WorkRule>(
    rule: &R,
    agent: usize,
    costs: &[f64],
    total_work: f64,
    c_max: f64,
    steps: usize,
) -> Result<f64, MechanismError> {
    if steps == 0
        || !total_work.is_finite()
        || total_work <= 0.0
        || costs.iter().any(|&c| c <= 0.0 || !c.is_finite())
        || c_max <= costs[agent]
    {
        return Err(MechanismError::InvalidQuantization { levels: steps });
    }
    let c_i = costs[agent];
    let own = c_i * rule.work(agent, costs, total_work);
    // Trapezoidal integration of the (non-increasing) work curve.
    let mut integral = 0.0;
    let h = (c_max - c_i) / steps as f64;
    let mut shifted = costs.to_vec();
    let mut prev = rule.work(agent, costs, total_work);
    for k in 1..=steps {
        shifted[agent] = c_i + h * k as f64;
        let next = rule.work(agent, &shifted, total_work);
        integral += (prev + next) * h / 2.0;
        prev = next;
    }
    Ok(own + integral)
}

/// Utility of `agent` with true cost `true_cost` when the declared costs
/// are `costs`: payment minus true cost of the assigned work.
///
/// # Errors
///
/// Propagates [`archer_tardos_payment`] validation.
pub fn one_parameter_utility<R: WorkRule>(
    rule: &R,
    agent: usize,
    costs: &[f64],
    true_cost: f64,
    total_work: f64,
    c_max: f64,
    steps: usize,
) -> Result<f64, MechanismError> {
    let payment = archer_tardos_payment(rule, agent, costs, total_work, c_max, steps)?;
    Ok(payment - true_cost * rule.work(agent, costs, total_work))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const W: f64 = 100.0;
    const CMAX: f64 = 200.0;
    const STEPS: usize = 20000;

    #[test]
    fn fastest_takes_all_pays_the_vickrey_threshold() {
        // costs: winner 1.0, runner-up 3.0: the integral of the step
        // work-curve is W·(3 − 1), plus own cost W·1 => payment = 3·W, the
        // second price.
        let costs = vec![1.0, 3.0, 5.0];
        let p = archer_tardos_payment(&FastestTakesAll, 0, &costs, W, CMAX, STEPS).unwrap();
        // Trapezoidal smoothing of the step work-curve costs at most
        // W·h/2 with h = (c_max − c_i)/steps.
        let tol = W * (CMAX - 1.0) / STEPS as f64;
        assert!(
            (p - 3.0 * W).abs() < tol,
            "payment {p} != threshold {}",
            3.0 * W
        );
        // Losers receive nothing.
        let p1 = archer_tardos_payment(&FastestTakesAll, 1, &costs, W, CMAX, STEPS).unwrap();
        assert!(p1.abs() < 1e-6);
    }

    #[test]
    fn proportional_share_is_fractionally_optimal() {
        // All machines finish simultaneously: loads c_i·w_i are equal.
        let costs = vec![1.0, 2.0, 4.0];
        let finish: Vec<f64> = (0..3)
            .map(|i| costs[i] * ProportionalShare.work(i, &costs, W))
            .collect();
        for pair in finish.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 1e-9,
                "unequal finish times {finish:?}"
            );
        }
        // And the common finish time is the fractional optimum W/Σ(1/c).
        let t = W / costs.iter().map(|c| 1.0 / c).sum::<f64>();
        assert!((finish[0] - t).abs() < 1e-9);
    }

    #[test]
    fn work_curves_are_monotone() {
        let base = vec![2.0, 3.0, 4.0];
        for rule_work in [
            |a: usize, c: &[f64]| FastestTakesAll.work(a, c, W),
            |a: usize, c: &[f64]| ProportionalShare.work(a, c, W),
        ] {
            let mut prev = f64::INFINITY;
            for k in 0..40 {
                let mut c = base.clone();
                c[1] = 0.5 + k as f64 * 0.25;
                let w = rule_work(1, &c);
                assert!(w <= prev + 1e-9, "work curve increased");
                prev = w;
            }
        }
    }

    #[test]
    fn payment_rejects_bad_inputs() {
        assert!(archer_tardos_payment(&ProportionalShare, 0, &[1.0], W, CMAX, 0).is_err());
        assert!(archer_tardos_payment(&ProportionalShare, 0, &[0.0], W, CMAX, 10).is_err());
        assert!(archer_tardos_payment(&ProportionalShare, 0, &[1.0], -1.0, CMAX, 10).is_err());
        assert!(archer_tardos_payment(&ProportionalShare, 0, &[300.0], W, CMAX, 10).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        /// Archer–Tardos truthfulness: declaring the true cost maximizes
        /// utility for both monotone rules (up to integration error).
        #[test]
        fn truth_telling_is_optimal(
            true_cost in 1.0f64..8.0,
            lie in 1.0f64..8.0,
            other1 in 1.0f64..8.0,
            other2 in 1.0f64..8.0,
        ) {
            for rule in [true, false] {
                let honest_costs = vec![true_cost, other1, other2];
                let lying_costs = vec![lie, other1, other2];
                let (honest_u, lying_u) = if rule {
                    (
                        one_parameter_utility(&ProportionalShare, 0, &honest_costs, true_cost, W, CMAX, STEPS).unwrap(),
                        one_parameter_utility(&ProportionalShare, 0, &lying_costs, true_cost, W, CMAX, STEPS).unwrap(),
                    )
                } else {
                    (
                        one_parameter_utility(&FastestTakesAll, 0, &honest_costs, true_cost, W, CMAX, STEPS).unwrap(),
                        one_parameter_utility(&FastestTakesAll, 0, &lying_costs, true_cost, W, CMAX, STEPS).unwrap(),
                    )
                };
                // Tolerance: the trapezoid smoothing of a step curve can
                // differ by up to W·h between the two integration grids.
                let tol = 2.0 * W * CMAX / STEPS as f64;
                prop_assert!(
                    lying_u <= honest_u + tol,
                    "rule {rule}: lie {lie} beat truth {true_cost}: {lying_u} > {honest_u}"
                );
            }
        }

        /// Voluntary participation: truthful utility is never negative.
        #[test]
        fn truthful_utility_nonnegative(
            c0 in 1.0f64..8.0,
            c1 in 1.0f64..8.0,
            c2 in 1.0f64..8.0,
        ) {
            let costs = vec![c0, c1, c2];
            for agent in 0..3 {
                let u = one_parameter_utility(
                    &ProportionalShare, agent, &costs, costs[agent], W, CMAX, STEPS,
                ).unwrap();
                prop_assert!(u >= -W * 0.01, "agent {agent} lost {u}");
            }
        }
    }
}
