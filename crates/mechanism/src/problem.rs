//! Problem instances, bid matrices, schedules and objectives for scheduling
//! on unrelated machines (Section 2.1 of the paper).

use crate::error::MechanismError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an agent (machine) `A_i`, `0`-based.
///
/// The paper indexes agents `A_1 … A_n`; this implementation is `0`-based
/// throughout and renders as `A1 …` only in display output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId(pub usize);

impl From<usize> for AgentId {
    fn from(i: usize) -> Self {
        AgentId(i)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0 + 1)
    }
}

/// Identifier of a task `T^j`, `0`-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub usize);

impl From<usize> for TaskId {
    fn from(j: usize) -> Self {
        TaskId(j)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

/// An `n × m` matrix of execution times: entry `(i, j)` is the time agent
/// `A_i` needs to run task `T^j`, in integer time units.
///
/// The same type represents both *true values* `t` and *bid matrices* `y` —
/// a bid is just a (possibly untruthful) claimed execution-time matrix.
/// Times are integers because DMW fundamentally requires discrete bids
/// (Section 3); [`crate::quantize`] maps continuous workloads onto this
/// representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExecutionTimes {
    agents: usize,
    tasks: usize,
    /// Row-major: `times[i * tasks + j]`.
    times: Vec<u64>,
}

impl ExecutionTimes {
    /// Builds a matrix from per-agent rows (`rows[i][j]` = time of agent `i`
    /// on task `j`).
    ///
    /// # Errors
    ///
    /// * [`MechanismError::TooFewAgents`] for fewer than 2 rows;
    /// * [`MechanismError::NoTasks`] for empty rows;
    /// * [`MechanismError::RaggedMatrix`] if row lengths differ.
    pub fn from_rows(rows: Vec<Vec<u64>>) -> Result<Self, MechanismError> {
        if rows.len() < 2 {
            return Err(MechanismError::TooFewAgents { agents: rows.len() });
        }
        let tasks = rows[0].len();
        if tasks == 0 {
            return Err(MechanismError::NoTasks);
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != tasks {
                return Err(MechanismError::RaggedMatrix {
                    row: i,
                    len: row.len(),
                    expected: tasks,
                });
            }
        }
        let agents = rows.len();
        let times = rows.into_iter().flatten().collect();
        Ok(ExecutionTimes {
            agents,
            tasks,
            times,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Same validation as [`ExecutionTimes::from_rows`]; additionally the
    /// vector length must equal `agents · tasks` (reported as a ragged
    /// matrix).
    pub fn from_flat(agents: usize, tasks: usize, times: Vec<u64>) -> Result<Self, MechanismError> {
        if agents < 2 {
            return Err(MechanismError::TooFewAgents { agents });
        }
        if tasks == 0 {
            return Err(MechanismError::NoTasks);
        }
        if times.len() != agents * tasks {
            return Err(MechanismError::RaggedMatrix {
                row: times.len() / tasks.max(1),
                len: times.len(),
                expected: agents * tasks,
            });
        }
        Ok(ExecutionTimes {
            agents,
            tasks,
            times,
        })
    }

    /// Number of agents `n`.
    pub fn agents(&self) -> usize {
        self.agents
    }

    /// Number of tasks `m`.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// The execution time `t_i^j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn time(&self, agent: AgentId, task: TaskId) -> u64 {
        assert!(agent.0 < self.agents, "agent {agent} out of range");
        assert!(task.0 < self.tasks, "task {task} out of range");
        self.times[agent.0 * self.tasks + task.0]
    }

    /// Replaces a single entry, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_time(&mut self, agent: AgentId, task: TaskId, value: u64) -> u64 {
        assert!(agent.0 < self.agents && task.0 < self.tasks);
        std::mem::replace(&mut self.times[agent.0 * self.tasks + task.0], value)
    }

    /// The bid column for one task, indexed by agent.
    pub fn task_column(&self, task: TaskId) -> Vec<u64> {
        assert!(task.0 < self.tasks, "task {task} out of range");
        (0..self.agents)
            .map(|i| self.times[i * self.tasks + task.0])
            .collect()
    }

    /// The row of agent `agent` (its times for every task).
    pub fn agent_row(&self, agent: AgentId) -> &[u64] {
        assert!(agent.0 < self.agents, "agent {agent} out of range");
        &self.times[agent.0 * self.tasks..(agent.0 + 1) * self.tasks]
    }

    /// Returns a copy with agent `agent`'s row replaced — the unilateral
    /// deviation `{y_{−i}, y'_i}` used throughout the truthfulness
    /// definitions.
    ///
    /// # Errors
    ///
    /// * [`MechanismError::UnknownAgent`] for a bad index;
    /// * [`MechanismError::RaggedMatrix`] if the row length is not `m`.
    pub fn with_agent_row(&self, agent: AgentId, row: Vec<u64>) -> Result<Self, MechanismError> {
        if agent.0 >= self.agents {
            return Err(MechanismError::UnknownAgent {
                agent: agent.0,
                agents: self.agents,
            });
        }
        if row.len() != self.tasks {
            return Err(MechanismError::RaggedMatrix {
                row: agent.0,
                len: row.len(),
                expected: self.tasks,
            });
        }
        let mut clone = self.clone();
        clone.times[agent.0 * self.tasks..(agent.0 + 1) * self.tasks].copy_from_slice(&row);
        Ok(clone)
    }

    /// Iterates over all `(agent, task, time)` entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (AgentId, TaskId, u64)> + '_ {
        self.times
            .iter()
            .enumerate()
            .map(move |(idx, &t)| (AgentId(idx / self.tasks), TaskId(idx % self.tasks), t))
    }

    /// The largest entry of the matrix.
    pub fn max_time(&self) -> u64 {
        self.times.iter().copied().max().unwrap_or(0)
    }

    /// The smallest entry of the matrix.
    pub fn min_time(&self) -> u64 {
        self.times.iter().copied().min().unwrap_or(0)
    }
}

/// A schedule: a partition of the task set among the agents (Section 2.1).
/// Every task is assigned to exactly one agent.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schedule {
    agents: usize,
    /// `assignment[j]` = agent owning task `j`.
    assignment: Vec<AgentId>,
}

impl Schedule {
    /// Builds a schedule from a per-task assignment vector.
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::UnknownAgent`] if any assignment refers to
    /// an agent `≥ agents`, and [`MechanismError::NoTasks`] for an empty
    /// assignment.
    pub fn from_assignment(
        agents: usize,
        assignment: Vec<AgentId>,
    ) -> Result<Self, MechanismError> {
        if assignment.is_empty() {
            return Err(MechanismError::NoTasks);
        }
        if let Some(bad) = assignment.iter().find(|a| a.0 >= agents) {
            return Err(MechanismError::UnknownAgent {
                agent: bad.0,
                agents,
            });
        }
        Ok(Schedule { agents, assignment })
    }

    /// Number of agents the schedule partitions tasks over.
    pub fn agents(&self) -> usize {
        self.agents
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.assignment.len()
    }

    /// The agent assigned to `task`, or `None` if the index is out of range.
    pub fn agent_of(&self, task: TaskId) -> Option<AgentId> {
        self.assignment.get(task.0).copied()
    }

    /// The set `S_i`: indices of the tasks assigned to `agent`.
    pub fn tasks_of(&self, agent: AgentId) -> Vec<TaskId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, a)| *a == agent)
            .map(|(j, _)| TaskId(j))
            .collect()
    }

    /// The per-task assignment, indexed by task.
    pub fn assignment(&self) -> &[AgentId] {
        &self.assignment
    }

    /// The completion time of `agent` under true times `truth`:
    /// `Σ_{j ∈ S_i} t_i^j`.
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::ShapeMismatch`] if the matrix shape does
    /// not match the schedule.
    pub fn load(&self, agent: AgentId, truth: &ExecutionTimes) -> Result<u64, MechanismError> {
        self.check_shape(truth)?;
        Ok(self
            .assignment
            .iter()
            .enumerate()
            .filter(|&(_, a)| *a == agent)
            .map(|(j, _)| truth.time(agent, TaskId(j)))
            .sum())
    }

    /// The makespan `C_max = max_i Σ_{j ∈ S_i} t_i^j` — the objective the
    /// mechanism designer minimizes (Definition 2, item 5).
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::ShapeMismatch`] on shape mismatch.
    pub fn makespan(&self, truth: &ExecutionTimes) -> Result<u64, MechanismError> {
        self.check_shape(truth)?;
        let mut loads = vec![0u64; self.agents];
        for (j, a) in self.assignment.iter().enumerate() {
            loads[a.0] += truth.time(*a, TaskId(j));
        }
        Ok(loads.into_iter().max().unwrap_or(0))
    }

    /// The total work `Σ_i Σ_{j ∈ S_i} t_i^j` — the quantity MinWork
    /// actually minimizes (hence its name).
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::ShapeMismatch`] on shape mismatch.
    pub fn total_work(&self, truth: &ExecutionTimes) -> Result<u64, MechanismError> {
        self.check_shape(truth)?;
        Ok(self
            .assignment
            .iter()
            .enumerate()
            .map(|(j, a)| truth.time(*a, TaskId(j)))
            .sum())
    }

    fn check_shape(&self, truth: &ExecutionTimes) -> Result<(), MechanismError> {
        if truth.agents() != self.agents || truth.tasks() != self.assignment.len() {
            return Err(MechanismError::ShapeMismatch {
                left: (self.agents, self.assignment.len()),
                right: (truth.agents(), truth.tasks()),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.agents {
            let tasks: Vec<String> = self
                .tasks_of(AgentId(i))
                .into_iter()
                .map(|t| t.to_string())
                .collect();
            writeln!(f, "{}: {{{}}}", AgentId(i), tasks.join(", "))?;
        }
        Ok(())
    }
}

/// The result of running a mechanism: the schedule and the payment vector
/// `P_i(y)` (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outcome {
    /// The chosen schedule `S(y)`.
    pub schedule: Schedule,
    /// The payment handed to each agent, indexed by agent.
    pub payments: Vec<u64>,
}

impl Outcome {
    /// Agent `agent`'s utility `U_i = P_i + V_i = P_i − Σ_{j ∈ S_i} t_i^j`
    /// under true execution times `truth` (Definition 2, item 4).
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::ShapeMismatch`] on shape mismatch and
    /// [`MechanismError::UnknownAgent`] for a bad agent index.
    pub fn utility(&self, agent: AgentId, truth: &ExecutionTimes) -> Result<i128, MechanismError> {
        if agent.0 >= self.payments.len() {
            return Err(MechanismError::UnknownAgent {
                agent: agent.0,
                agents: self.payments.len(),
            });
        }
        let load = self.schedule.load(agent, truth)?;
        Ok(self.payments[agent.0] as i128 - load as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionTimes {
        ExecutionTimes::from_rows(vec![vec![2, 9, 4], vec![5, 4, 4], vec![7, 6, 1]]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            ExecutionTimes::from_rows(vec![vec![1, 2]]),
            Err(MechanismError::TooFewAgents { agents: 1 })
        ));
        assert!(matches!(
            ExecutionTimes::from_rows(vec![vec![], vec![]]),
            Err(MechanismError::NoTasks)
        ));
        assert!(matches!(
            ExecutionTimes::from_rows(vec![vec![1, 2], vec![1]]),
            Err(MechanismError::RaggedMatrix {
                row: 1,
                len: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn from_flat_round_trips() {
        let t = sample();
        let flat = ExecutionTimes::from_flat(3, 3, vec![2, 9, 4, 5, 4, 4, 7, 6, 1]).unwrap();
        assert_eq!(t, flat);
        assert!(ExecutionTimes::from_flat(3, 3, vec![1, 2]).is_err());
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.agents(), 3);
        assert_eq!(t.tasks(), 3);
        assert_eq!(t.time(AgentId(1), TaskId(2)), 4);
        assert_eq!(t.task_column(TaskId(0)), vec![2, 5, 7]);
        assert_eq!(t.agent_row(AgentId(2)), &[7, 6, 1]);
        assert_eq!(t.max_time(), 9);
        assert_eq!(t.min_time(), 1);
        assert_eq!(t.iter().count(), 9);
    }

    #[test]
    fn with_agent_row_is_unilateral() {
        let t = sample();
        let deviated = t.with_agent_row(AgentId(1), vec![1, 1, 1]).unwrap();
        assert_eq!(deviated.agent_row(AgentId(1)), &[1, 1, 1]);
        assert_eq!(deviated.agent_row(AgentId(0)), t.agent_row(AgentId(0)));
        assert_eq!(deviated.agent_row(AgentId(2)), t.agent_row(AgentId(2)));
        assert!(t.with_agent_row(AgentId(9), vec![1, 1, 1]).is_err());
        assert!(t.with_agent_row(AgentId(1), vec![1]).is_err());
    }

    #[test]
    fn set_time_returns_previous() {
        let mut t = sample();
        assert_eq!(t.set_time(AgentId(0), TaskId(0), 100), 2);
        assert_eq!(t.time(AgentId(0), TaskId(0)), 100);
    }

    #[test]
    fn schedule_objectives() {
        let t = sample();
        // T1 -> A1, T2 -> A2, T3 -> A3.
        let s = Schedule::from_assignment(3, vec![AgentId(0), AgentId(1), AgentId(2)]).unwrap();
        assert_eq!(s.makespan(&t).unwrap(), 4);
        assert_eq!(s.total_work(&t).unwrap(), 2 + 4 + 1);
        assert_eq!(s.load(AgentId(0), &t).unwrap(), 2);
        // All tasks to A1.
        let s = Schedule::from_assignment(3, vec![AgentId(0); 3]).unwrap();
        assert_eq!(s.makespan(&t).unwrap(), 15);
        assert_eq!(s.total_work(&t).unwrap(), 15);
        assert_eq!(s.tasks_of(AgentId(0)).len(), 3);
        assert!(s.tasks_of(AgentId(1)).is_empty());
    }

    #[test]
    fn schedule_validates() {
        assert!(matches!(
            Schedule::from_assignment(2, vec![AgentId(2)]),
            Err(MechanismError::UnknownAgent {
                agent: 2,
                agents: 2
            })
        ));
        assert!(matches!(
            Schedule::from_assignment(2, vec![]),
            Err(MechanismError::NoTasks)
        ));
    }

    #[test]
    fn shape_mismatch_detected() {
        let t = sample();
        let s = Schedule::from_assignment(2, vec![AgentId(0), AgentId(1)]).unwrap();
        assert!(matches!(
            s.makespan(&t),
            Err(MechanismError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn utility_is_payment_minus_load() {
        let t = sample();
        let schedule =
            Schedule::from_assignment(3, vec![AgentId(0), AgentId(1), AgentId(2)]).unwrap();
        let outcome = Outcome {
            schedule,
            payments: vec![5, 6, 2],
        };
        assert_eq!(outcome.utility(AgentId(0), &t).unwrap(), 3); // 5 - 2
        assert_eq!(outcome.utility(AgentId(1), &t).unwrap(), 2); // 6 - 4
        assert_eq!(outcome.utility(AgentId(2), &t).unwrap(), 1); // 2 - 1
        assert!(outcome.utility(AgentId(5), &t).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(AgentId(0).to_string(), "A1");
        assert_eq!(TaskId(2).to_string(), "T3");
        let s = Schedule::from_assignment(2, vec![AgentId(0), AgentId(0)]).unwrap();
        let shown = s.to_string();
        assert!(shown.contains("A1: {T1, T2}"));
        assert!(shown.contains("A2: {}"));
    }
}
