//! The Vickrey–Clarke–Groves mechanism, generically and for scheduling.
//!
//! The paper's lineage starts here: "In their seminal paper, Nisan and
//! Ronen \[30\] … used the celebrated Vickrey–Clarke–Groves (VCG) mechanism
//! \[15,21,38\] for solving several standard problems in computer science
//! including … scheduling on unrelated machines" (§1.1). MinWork *is* the
//! VCG mechanism for the total-work social objective, decomposed into
//! per-task Vickrey auctions; this module implements VCG generically —
//! welfare-maximizing outcome plus Clarke-pivot payments over an explicit
//! outcome space — and the test suite proves the equivalence
//! `VCG(total work) ≡ MinWork` executably.
//!
//! The generic form also supports *restricted* outcome spaces (e.g. only
//! balanced schedules), where VCG remains truthful but stops decomposing
//! into independent auctions — a contrast the `vcg` experiment reports.

use crate::error::MechanismError;
use crate::problem::{AgentId, ExecutionTimes, Outcome, Schedule, TaskId};
use serde::{Deserialize, Serialize};

/// Which schedules the VCG optimizer may choose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OutcomeSpace {
    /// Every assignment of tasks to agents (the unrestricted space on
    /// which VCG coincides with MinWork).
    #[default]
    All,
    /// Only schedules where no agent receives more than `limit` tasks —
    /// a cardinality-balanced space on which VCG payments differ from
    /// second prices.
    Balanced {
        /// Maximum number of tasks per agent.
        limit: usize,
    },
}

impl OutcomeSpace {
    fn admits(&self, assignment: &[AgentId], agents: usize) -> bool {
        match self {
            OutcomeSpace::All => true,
            OutcomeSpace::Balanced { limit } => {
                let mut counts = vec![0usize; agents];
                for a in assignment {
                    counts[a.0] += 1;
                    if counts[a.0] > *limit {
                        return false;
                    }
                }
                true
            }
        }
    }
}

/// The VCG mechanism for scheduling with the (negated) total-work social
/// objective: valuations are `V_i = −Σ_{j ∈ S_i} y_i^j`, the chosen
/// schedule maximizes `Σ V_i`, and each winner is paid its Clarke pivot
/// `opt(−i) − opt_{−i}(S*)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Vcg {
    space: OutcomeSpace,
}

/// Hard cap on the `n^m` outcome-space size the exact optimizer accepts.
pub const VCG_SEARCH_LIMIT: u128 = 50_000_000;

impl Vcg {
    /// Creates a VCG mechanism over the given outcome space.
    pub fn new(space: OutcomeSpace) -> Self {
        Vcg { space }
    }

    /// The configured outcome space.
    pub fn space(&self) -> OutcomeSpace {
        self.space
    }

    /// Minimum total work over the admissible schedules, excluding agent
    /// `excluded` entirely when given.
    fn min_total_work(
        &self,
        bids: &ExecutionTimes,
        excluded: Option<AgentId>,
    ) -> Result<(u64, Vec<AgentId>), MechanismError> {
        let n = bids.agents();
        let m = bids.tasks();
        let states = (n as u128).checked_pow(m as u32).unwrap_or(u128::MAX);
        if states > VCG_SEARCH_LIMIT {
            return Err(MechanismError::InstanceTooLarge {
                states,
                limit: VCG_SEARCH_LIMIT,
            });
        }
        let mut best: Option<(u64, Vec<AgentId>)> = None;
        let mut assignment = vec![AgentId(0); m];
        // Odometer over all n^m assignments; lexicographic order makes the
        // minimizer deterministic (lowest indices win ties).
        loop {
            let admissible = self.space.admits(&assignment, n)
                && excluded.is_none_or(|x| assignment.iter().all(|a| *a != x));
            if admissible {
                let work: u64 = assignment
                    .iter()
                    .enumerate()
                    .map(|(j, a)| bids.time(*a, TaskId(j)))
                    .sum();
                let better = match &best {
                    None => true,
                    Some((w, _)) => work < *w,
                };
                if better {
                    best = Some((work, assignment.clone()));
                }
            }
            // Advance.
            let mut pos = 0;
            loop {
                if pos == m {
                    let (w, a) = best.ok_or(MechanismError::NoTasks)?;
                    return Ok((w, a));
                }
                assignment[pos].0 += 1;
                if assignment[pos].0 < n {
                    break;
                }
                assignment[pos].0 = 0;
                pos += 1;
            }
        }
    }

    /// Runs VCG on the bid matrix.
    ///
    /// # Errors
    ///
    /// * [`MechanismError::InstanceTooLarge`] beyond [`VCG_SEARCH_LIMIT`];
    /// * [`MechanismError::NoTasks`] if the outcome space is empty (e.g. a
    ///   balance limit too small to place all tasks).
    pub fn run(&self, bids: &ExecutionTimes) -> Result<Outcome, MechanismError> {
        let n = bids.agents();
        let (_, assignment) = self.min_total_work(bids, None)?;
        let schedule = Schedule::from_assignment(n, assignment)?;
        // Clarke pivot: P_i = opt(without i) − (chosen work excluding i's
        // own share).
        let mut payments = vec![0u64; n];
        for (i, payment) in payments.iter_mut().enumerate() {
            let agent = AgentId(i);
            if schedule.tasks_of(agent).is_empty() {
                continue; // pivot is zero for non-winners under this objective
            }
            let (without_i, _) = self.min_total_work(bids, Some(agent))?;
            let chosen_without_own: u64 = schedule
                .assignment()
                .iter()
                .enumerate()
                .filter(|&(_, a)| *a != agent)
                .map(|(j, a)| bids.time(*a, TaskId(j)))
                .sum();
            *payment = without_i - chosen_without_own;
        }
        Ok(Outcome { schedule, payments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minwork::{MinWork, TieBreak};
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn vcg_equals_minwork_on_the_unrestricted_space() {
        // The executable version of "MinWork is the VCG mechanism for the
        // total-work objective".
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        for _ in 0..30 {
            let bids = crate::generators::uniform(4, 4, 1..=15, &mut rng).unwrap();
            let vcg = Vcg::default().run(&bids).unwrap();
            let minwork = MinWork::new(TieBreak::LowestIndex).run(&bids).unwrap();
            assert_eq!(vcg.schedule, minwork.schedule);
            assert_eq!(vcg.payments, minwork.payments);
        }
    }

    #[test]
    fn balanced_space_changes_payments() {
        // Agent 0 is cheapest on both tasks; balance limit 1 forces a
        // split, and Clarke payments stop being plain second prices.
        let bids = ExecutionTimes::from_rows(vec![vec![1, 1], vec![5, 5], vec![9, 9]]).unwrap();
        let unrestricted = Vcg::default().run(&bids).unwrap();
        assert_eq!(unrestricted.schedule.tasks_of(AgentId(0)).len(), 2);
        let balanced = Vcg::new(OutcomeSpace::Balanced { limit: 1 })
            .run(&bids)
            .unwrap();
        assert_eq!(balanced.schedule.tasks_of(AgentId(0)).len(), 1);
        assert_eq!(balanced.schedule.tasks_of(AgentId(1)).len(), 1);
        // Agent 1's pivot: without it the split is {0:1 task, 2:1 task}
        // costing 1+9 = 10; with it 1+5 = 6, of which others carry 1.
        assert_eq!(balanced.payments[1], 9);
    }

    #[test]
    fn infeasible_balance_limit_errors() {
        let bids = ExecutionTimes::from_rows(vec![vec![1, 1, 1], vec![2, 2, 2]]).unwrap();
        // 3 tasks, 2 agents, at most 1 task each: no admissible schedule.
        assert!(matches!(
            Vcg::new(OutcomeSpace::Balanced { limit: 1 }).run(&bids),
            Err(MechanismError::NoTasks)
        ));
    }

    #[test]
    fn search_limit_enforced() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let bids = crate::generators::uniform(8, 30, 1..=5, &mut rng).unwrap();
        assert!(matches!(
            Vcg::default().run(&bids),
            Err(MechanismError::InstanceTooLarge { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// VCG is truthful on the restricted (balanced) space too — the
        /// property MinWork's per-task decomposition cannot provide.
        #[test]
        fn balanced_vcg_is_truthful(seed in 0u64..3000) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let truth = crate::generators::uniform(3, 3, 1..=8, &mut rng).unwrap();
            let vcg = Vcg::new(OutcomeSpace::Balanced { limit: 2 });
            let honest = vcg.run(&truth).unwrap();
            let deviator = AgentId(rand::Rng::gen_range(&mut rng, 0..3));
            let honest_u = honest.utility(deviator, &truth).unwrap();
            let lie: Vec<u64> = (0..3).map(|_| rand::Rng::gen_range(&mut rng, 1..=8)).collect();
            let bids = truth.with_agent_row(deviator, lie).unwrap();
            let outcome = vcg.run(&bids).unwrap();
            prop_assert!(outcome.utility(deviator, &truth).unwrap() <= honest_u);
        }

        /// Voluntary participation holds for VCG on both spaces.
        #[test]
        fn vcg_voluntary_participation(seed in 0u64..1000) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let truth = crate::generators::uniform(3, 3, 1..=8, &mut rng).unwrap();
            for vcg in [Vcg::default(), Vcg::new(OutcomeSpace::Balanced { limit: 2 })] {
                let outcome = vcg.run(&truth).unwrap();
                for i in 0..3 {
                    prop_assert!(outcome.utility(AgentId(i), &truth).unwrap() >= 0);
                }
            }
        }
    }
}
