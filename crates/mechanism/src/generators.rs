//! Instance generators for experiments and tests.
//!
//! The paper has no benchmark workloads of its own (it is a theory paper),
//! so the reproduction defines standard families from the scheduling
//! literature it cites:
//!
//! * [`uniform`] — unrelated machines, i.i.d. times;
//! * [`related`] — related machines: task `j` has requirement `r_j`,
//!   machine `i` speed `s_i`, time `⌈r_j / s_i⌉` (the model of Section 2.1,
//!   `t_i^j = r^j / s_i^j`, restricted to per-machine speeds);
//! * [`bimodal`] — each machine is a specialist on a random subset of tasks;
//! * [`adversarial_makespan`] — the family on which MinWork's makespan
//!   approaches `n ·` optimal, exercising the `n`-approximation bound.

use crate::error::MechanismError;
use crate::problem::ExecutionTimes;
use rand::Rng;
use std::ops::RangeInclusive;

/// Uniformly random times in `range` (unrelated machines).
///
/// # Errors
///
/// Propagates [`ExecutionTimes::from_rows`] validation (`n ≥ 2`, `m ≥ 1`).
pub fn uniform<R: Rng + ?Sized>(
    agents: usize,
    tasks: usize,
    range: RangeInclusive<u64>,
    rng: &mut R,
) -> Result<ExecutionTimes, MechanismError> {
    let rows = (0..agents)
        .map(|_| (0..tasks).map(|_| rng.gen_range(range.clone())).collect())
        .collect();
    ExecutionTimes::from_rows(rows)
}

/// Related machines: task requirements `r_j ∈ req_range`, machine speeds
/// `s_i ∈ speed_range`, `t_i^j = ⌈r_j / s_i⌉`.
///
/// # Errors
///
/// Propagates [`ExecutionTimes::from_rows`] validation.
pub fn related<R: Rng + ?Sized>(
    agents: usize,
    tasks: usize,
    req_range: RangeInclusive<u64>,
    speed_range: RangeInclusive<u64>,
    rng: &mut R,
) -> Result<ExecutionTimes, MechanismError> {
    assert!(*speed_range.start() >= 1, "speeds must be positive");
    let reqs: Vec<u64> = (0..tasks)
        .map(|_| rng.gen_range(req_range.clone()))
        .collect();
    let rows = (0..agents)
        .map(|_| {
            let s = rng.gen_range(speed_range.clone());
            reqs.iter().map(|&r| r.div_ceil(s).max(1)).collect()
        })
        .collect();
    ExecutionTimes::from_rows(rows)
}

/// Bimodal specialists: each entry is `fast` with probability
/// `specialist_prob`, otherwise `slow`. Models clusters where machines have
/// task-type affinities; produces the high-variance columns on which
/// second prices (and hence payments) deviate most from first prices.
///
/// # Errors
///
/// Propagates [`ExecutionTimes::from_rows`] validation.
pub fn bimodal<R: Rng + ?Sized>(
    agents: usize,
    tasks: usize,
    fast: u64,
    slow: u64,
    specialist_prob: f64,
    rng: &mut R,
) -> Result<ExecutionTimes, MechanismError> {
    assert!(fast <= slow, "fast time must not exceed slow time");
    let rows = (0..agents)
        .map(|_| {
            (0..tasks)
                .map(|_| {
                    if rng.gen_bool(specialist_prob) {
                        fast
                    } else {
                        slow
                    }
                })
                .collect()
        })
        .collect();
    ExecutionTimes::from_rows(rows)
}

/// The adversarial family for the `n`-approximation bound: `m = n` tasks;
/// agent 0 runs every task in time `base`, every other agent in time
/// `base + 1`. MinWork assigns *all* tasks to agent 0 (makespan `n · base`)
/// while the optimum spreads them (makespan `base + 1` for `n ≥ 2`), so the
/// ratio approaches `n` as `base` grows.
///
/// # Errors
///
/// Propagates [`ExecutionTimes::from_rows`] validation.
///
/// # Example
/// ```
/// use dmw_mechanism::{MinWork, generators::adversarial_makespan};
/// use dmw_mechanism::optimal::optimal_makespan;
///
/// let t = adversarial_makespan(4, 100)?;
/// let mw = MinWork::default().run(&t)?;
/// let ratio = mw.schedule.makespan(&t)? as f64
///     / optimal_makespan(&t)?.makespan as f64;
/// assert!(ratio > 3.9); // approaches n = 4
/// # Ok::<(), dmw_mechanism::MechanismError>(())
/// ```
pub fn adversarial_makespan(agents: usize, base: u64) -> Result<ExecutionTimes, MechanismError> {
    let tasks = agents;
    let rows = (0..agents)
        .map(|i| vec![if i == 0 { base } else { base + 1 }; tasks])
        .collect();
    ExecutionTimes::from_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minwork::MinWork;
    use crate::problem::{AgentId, TaskId};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn uniform_respects_range_and_shape() {
        let t = uniform(4, 6, 5..=9, &mut rng()).unwrap();
        assert_eq!(t.agents(), 4);
        assert_eq!(t.tasks(), 6);
        assert!(t.iter().all(|(_, _, v)| (5..=9).contains(&v)));
    }

    #[test]
    fn related_machines_have_proportional_rows() {
        let t = related(3, 5, 10..=100, 1..=4, &mut rng()).unwrap();
        // Within a row the ordering of tasks follows the requirements, so
        // any two rows are identically ordered.
        let r0 = t.agent_row(AgentId(0)).to_vec();
        let r1 = t.agent_row(AgentId(1)).to_vec();
        let mut idx: Vec<usize> = (0..5).collect();
        idx.sort_by_key(|&j| r0[j]);
        for w in idx.windows(2) {
            assert!(r1[w[0]] <= r1[w[1]], "row orderings must agree");
        }
    }

    #[test]
    fn bimodal_entries_are_two_valued() {
        let t = bimodal(3, 8, 2, 50, 0.3, &mut rng()).unwrap();
        assert!(t.iter().all(|(_, _, v)| v == 2 || v == 50));
    }

    #[test]
    fn adversarial_family_achieves_ratio_near_n() {
        for n in [2usize, 3, 5, 8] {
            let t = adversarial_makespan(n, 50).unwrap();
            let mw = MinWork::default().run(&t).unwrap();
            // All tasks land on agent 0.
            for j in 0..n {
                assert_eq!(mw.schedule.agent_of(TaskId(j)), Some(AgentId(0)));
            }
            let got = mw.schedule.makespan(&t).unwrap();
            let opt = crate::optimal::optimal_makespan(&t).unwrap().makespan;
            let ratio = got as f64 / opt as f64;
            assert!(
                ratio > n as f64 * 0.95,
                "n={n}: ratio {ratio} should approach {n}"
            );
        }
    }
}
