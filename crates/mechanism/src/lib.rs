//! Scheduling-on-unrelated-machines and the centralized **MinWork**
//! mechanism (Nisan & Ronen 2001), the mechanism that DMW distributes.
//!
//! The problem (Section 2.1 of Carroll & Grosu, JPDC 2011): `m ≥ 1`
//! independent tasks must be scheduled on `n ≥ 2` machines operated by
//! selfish agents. Agent `A_i` needs `t_i^j` time units for task `T^j`; the
//! matrix `t` is private. A *mechanism* asks each agent for a bid matrix
//! `y`, picks a schedule `S(y)` and pays each agent `P_i(y)`; agent `i`'s
//! utility is `P_i(y) − Σ_{j ∈ S_i} t_i^j`.
//!
//! This crate provides:
//!
//! * [`problem`] — instance, bid-matrix and schedule types plus objective
//!   functions (makespan, total work);
//! * [`vickrey`] — the single-task procurement Vickrey auction;
//! * [`minwork`] — the MinWork mechanism: one Vickrey auction per task
//!   (Definition 5 of the paper), truthful and an `n`-approximation of the
//!   optimal makespan;
//! * [`optimal`] — an exact makespan minimizer (for measuring approximation
//!   ratios) and greedy baselines;
//! * [`audit`] — empirical checkers for truthfulness (Definition 3) and
//!   voluntary participation (Definition 4);
//! * [`generators`] — random and adversarial instance families;
//! * [`quantize`] — mapping continuous execution times onto the discrete
//!   bid set `W` that DMW requires.
//!
//! # Example
//!
//! ```
//! use dmw_mechanism::problem::ExecutionTimes;
//! use dmw_mechanism::minwork::{MinWork, TieBreak};
//!
//! // 3 agents × 2 tasks; entry [i][j] = time agent i needs for task j.
//! let truth = ExecutionTimes::from_rows(vec![
//!     vec![2, 9],
//!     vec![5, 4],
//!     vec![7, 6],
//! ])?;
//! let outcome = MinWork::new(TieBreak::LowestIndex).run(&truth)?;
//! // Task 0 -> agent 0 (bid 2), paid the second price 5.
//! // Task 1 -> agent 1 (bid 4), paid the second price 6.
//! assert_eq!(outcome.schedule.agent_of(0.into()), Some(0.into()));
//! assert_eq!(outcome.payments[0], 5);
//! assert_eq!(outcome.payments[1], 6);
//! # Ok::<(), dmw_mechanism::MechanismError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod error;
pub mod generators;
pub mod minwork;
pub mod objectives;
pub mod optimal;
pub mod problem;
pub mod quantize;
pub mod randomized;
pub mod related;
pub mod vcg;
pub mod vickrey;

pub use error::MechanismError;
pub use minwork::{MinWork, TieBreak};
pub use problem::{AgentId, ExecutionTimes, Outcome, Schedule, TaskId};
