//! Quantization of continuous execution times onto DMW's discrete bid set.
//!
//! DMW requires bids from `W = {w_1 < … < w_k}` with `0 < w < n − c + 1`
//! (Section 3, Notation): a bid is encoded as a polynomial degree, so only
//! `n − c` distinct levels exist. Real workloads have continuous times;
//! [`Quantizer`] maps them onto levels and back, and the
//! `ablation-quantize` experiment measures the makespan/payment distortion
//! this coarsening introduces — a cost of distribution that the paper does
//! not quantify.

use crate::error::MechanismError;
use crate::problem::ExecutionTimes;
use serde::{Deserialize, Serialize};

/// A uniform quantizer mapping continuous times in `[lo, hi]` onto
/// `levels` discrete bid values `1..=levels`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    lo: f64,
    hi: f64,
    levels: usize,
}

impl Quantizer {
    /// Creates a quantizer over the closed range `[lo, hi]` with `levels`
    /// levels.
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::InvalidQuantization`] if `levels == 0` or
    /// the range is empty/not finite.
    pub fn new(lo: f64, hi: f64, levels: usize) -> Result<Self, MechanismError> {
        if levels == 0 || !lo.is_finite() || !hi.is_finite() || hi < lo {
            return Err(MechanismError::InvalidQuantization { levels });
        }
        Ok(Quantizer { lo, hi, levels })
    }

    /// Creates a quantizer spanning the value range of a continuous matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::InvalidQuantization`] if `levels == 0` or
    /// the matrix is empty or contains non-finite values.
    pub fn fit(times: &[Vec<f64>], levels: usize) -> Result<Self, MechanismError> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in times {
            for &v in row {
                if !v.is_finite() {
                    return Err(MechanismError::InvalidQuantization { levels });
                }
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if !lo.is_finite() {
            return Err(MechanismError::InvalidQuantization { levels });
        }
        Quantizer::new(lo, hi, levels)
    }

    /// Number of levels (the size of the bid set `W`).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Maps a continuous time to its level in `1..=levels` (clamping values
    /// outside the fitted range).
    pub fn level_of(&self, value: f64) -> u64 {
        if self.hi == self.lo {
            return 1;
        }
        let frac = ((value - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        // Level 1 covers the lowest times.
        ((frac * self.levels as f64).floor() as u64 + 1).min(self.levels as u64)
    }

    /// The representative (midpoint) continuous time of a level, the value
    /// used when converting payments back to time units.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `1..=levels`.
    pub fn value_of(&self, level: u64) -> f64 {
        assert!(
            (1..=self.levels as u64).contains(&level),
            "level {level} outside 1..={}",
            self.levels
        );
        if self.hi == self.lo {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.levels as f64;
        self.lo + width * (level as f64 - 0.5)
    }

    /// Quantizes a full continuous matrix into an [`ExecutionTimes`] whose
    /// entries are levels in `1..=levels` — directly usable as DMW bids.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecutionTimes::from_rows`] validation.
    pub fn quantize(&self, times: &[Vec<f64>]) -> Result<ExecutionTimes, MechanismError> {
        let rows = times
            .iter()
            .map(|row| row.iter().map(|&v| self.level_of(v)).collect())
            .collect();
        ExecutionTimes::from_rows(rows)
    }

    /// Mean absolute relative error introduced by round-tripping every
    /// entry through its level representative — the distortion metric of
    /// the `ablation-quantize` experiment.
    pub fn distortion(&self, times: &[Vec<f64>]) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for row in times {
            for &v in row {
                let back = self.value_of(self.level_of(v));
                if v != 0.0 {
                    total += ((back - v) / v).abs();
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(Quantizer::new(0.0, 1.0, 0).is_err());
        assert!(Quantizer::new(1.0, 0.0, 4).is_err());
        assert!(Quantizer::new(0.0, f64::NAN, 4).is_err());
        assert!(Quantizer::new(0.0, 1.0, 4).is_ok());
        assert!(
            Quantizer::new(1.0, 1.0, 4).is_ok(),
            "degenerate range allowed"
        );
    }

    #[test]
    fn levels_partition_the_range() {
        let q = Quantizer::new(0.0, 10.0, 5).unwrap();
        assert_eq!(q.level_of(0.0), 1);
        assert_eq!(q.level_of(1.9), 1);
        assert_eq!(q.level_of(2.1), 2);
        assert_eq!(q.level_of(9.9), 5);
        assert_eq!(q.level_of(10.0), 5);
        // Clamping.
        assert_eq!(q.level_of(-5.0), 1);
        assert_eq!(q.level_of(50.0), 5);
    }

    #[test]
    fn representatives_are_midpoints() {
        let q = Quantizer::new(0.0, 10.0, 5).unwrap();
        assert!((q.value_of(1) - 1.0).abs() < 1e-12);
        assert!((q.value_of(5) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn value_of_rejects_out_of_range_level() {
        let q = Quantizer::new(0.0, 10.0, 5).unwrap();
        let _ = q.value_of(6);
    }

    #[test]
    fn fit_spans_data() {
        let data = vec![vec![3.0, 7.5], vec![1.0, 9.0]];
        let q = Quantizer::fit(&data, 4).unwrap();
        assert_eq!(q.level_of(1.0), 1);
        assert_eq!(q.level_of(9.0), 4);
        assert!(Quantizer::fit(&[vec![f64::INFINITY]], 4).is_err());
    }

    #[test]
    fn quantize_produces_valid_bid_matrix() {
        let data = vec![vec![3.0, 7.5], vec![1.0, 9.0]];
        let q = Quantizer::fit(&data, 4).unwrap();
        let m = q.quantize(&data).unwrap();
        assert!(m.iter().all(|(_, _, v)| (1..=4).contains(&v)));
    }

    #[test]
    fn degenerate_range_maps_everything_to_level_one() {
        let q = Quantizer::new(5.0, 5.0, 3).unwrap();
        assert_eq!(q.level_of(5.0), 1);
        assert_eq!(q.value_of(1), 5.0);
    }

    proptest! {
        #[test]
        fn finer_grids_do_not_increase_distortion(
            seed_vals in proptest::collection::vec(0.1f64..100.0, 4..20),
        ) {
            let data = vec![seed_vals.clone(), seed_vals.iter().map(|v| v * 1.5).collect()];
            let coarse = Quantizer::fit(&data, 2).unwrap().distortion(&data);
            let fine = Quantizer::fit(&data, 64).unwrap().distortion(&data);
            prop_assert!(fine <= coarse + 1e-9, "fine {fine} > coarse {coarse}");
        }

        #[test]
        fn level_roundtrip_stays_in_cell(v in 0.0f64..10.0) {
            let q = Quantizer::new(0.0, 10.0, 8).unwrap();
            let level = q.level_of(v);
            let back = q.value_of(level);
            // The representative lies within half a cell width of v.
            prop_assert!((back - v).abs() <= 10.0 / 8.0);
        }
    }
}
