//! The DMW message vocabulary (Fig. 2 of the paper).
//!
//! Solid arrows in the paper's Fig. 2 are private point-to-point messages
//! (share bundles); dashed arrows are published messages (commitments,
//! `Λ/Ψ`, disclosures, excluded pairs, payment claims), implemented as
//! broadcasts and hence as `n − 1` unicasts each (Theorem 11's cost model).
//!
//! Every variant reports its approximate wire size via
//! [`dmw_simnet::Payload`]; the byte counters feed the communication-cost
//! experiment.

use crate::error::AbortReason;
use dmw_crypto::polynomials::ShareBundle;
use dmw_crypto::resolution::LambdaPsi;
use dmw_crypto::Commitments;
use dmw_simnet::Payload;
use serde::{Deserialize, Serialize};

/// One protocol message. `task` fields index the parallel per-task
/// auctions; payment claims cover all tasks at once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Body {
    /// Phase II.2 (solid arrow): the private share bundle
    /// `(e_i(α_k), f_i(α_k), g_i(α_k), h_i(α_k))` for one task.
    Shares {
        /// Task index.
        task: usize,
        /// The four evaluations at the recipient's pseudonym.
        bundle: ShareBundle,
    },
    /// Phase II.3 (dashed arrow): the commitment vectors `O, Q, R`.
    Commit {
        /// Task index.
        task: usize,
        /// The published commitment triple.
        commitments: Commitments,
    },
    /// Phase III.2 (dashed arrow): the published `(Λ_i, Ψ_i)` pair plus the
    /// sender's view of which agents' polynomials are included in the sums
    /// (everyone must agree, or selective share delivery is afoot).
    Lambda {
        /// Task index.
        task: usize,
        /// The published pair.
        pair: LambdaPsi,
        /// `included[ℓ]` = agent `ℓ`'s polynomials are in `E` and `H`.
        included: Vec<bool>,
    },
    /// Phase III.3 (dashed arrow): the sender discloses the `f_ℓ(α_k)`
    /// values it holds (its own point `α_k`, one value per agent `ℓ`).
    Disclose {
        /// Task index.
        task: usize,
        /// `f_values[ℓ] = f_ℓ(α_k)` as held by the sender `k`.
        f_values: Vec<u64>,
    },
    /// Phase III.3 fallback (dashed arrow): crashes before bidding can
    /// leave fewer live share points than winner identification needs
    /// (`y* + c + 1`). An agent whose own bid equals the resolved first
    /// price then supplements identification with its polynomial's
    /// evaluations at the missing pseudonyms; verifiers bind each claimed
    /// pair to the claimant's published `R` commitments via equation (9).
    WinnerClaim {
        /// Task index.
        task: usize,
        /// `(agent, f, h)` per missing point: `f = f_me(α_agent)` and
        /// `h = h_me(α_agent)` for each non-live agent `agent`.
        points: Vec<(usize, u64, u64)>,
    },
    /// Phase III.4 (dashed arrow): the winner-excluded `(Λ'_i, Ψ'_i)`.
    Excluded {
        /// Task index.
        task: usize,
        /// The pair after dividing out the winner's polynomials.
        pair: LambdaPsi,
    },
    /// Phase IV (dashed arrow): the sender's computed payment vector,
    /// submitted for agreement at the payment infrastructure.
    PaymentClaim {
        /// `payments[ℓ]` = claimed payment (in bid units) owed to agent `ℓ`.
        payments: Vec<u64>,
    },
    /// Protocol abort notification: the sender detected a violation and
    /// terminated (the enforcement mechanism of Theorems 4 and 8).
    Abort {
        /// The detected condition.
        reason: AbortReason,
    },
    /// A coalesced container: all of one round's messages to the same
    /// recipient in a single transmission. Produced only when the runner
    /// batches (the `ablation-batch` experiment); never nested.
    Batch(Vec<Body>),
    /// Reliable-delivery envelope (recovery mode only): the inner
    /// message stamped with the sender's per-link sequence number plus a
    /// piggybacked cumulative ack of everything the sender has received
    /// on the reverse link. Sealing happens *after* coalescing, so a
    /// `Sealed` may contain a `Batch` but never another `Sealed`.
    Sealed {
        /// 1-based per-link sequence number assigned by the sender.
        seq: u64,
        /// Cumulative ack: the sender has received every reverse-link
        /// sequence number `<= ack`.
        ack: u64,
        /// The protocol message being carried.
        inner: Box<Body>,
    },
    /// Standalone cumulative ack (recovery mode only), sent when an
    /// endpoint owes an ack but has no outbound traffic to piggyback it
    /// on. Never itself acked, so the exchange terminates.
    Ack {
        /// The sender has received every reverse-link sequence number
        /// `<= ack`.
        ack: u64,
        /// Selective acknowledgment: closed sequence ranges `lo..=hi`
        /// beyond `ack` that the sender holds out of order (ascending,
        /// non-overlapping, at most
        /// [`crate::reliable::SACK_MAX_RANGES`] of them — overflow
        /// falls back to the cumulative-only contract). Lets the peer
        /// retire delivered-but-unackable tail messages instead of
        /// retransmitting them when a gap stalls the cumulative ack.
        sack: Vec<(u64, u64)>,
    },
    /// Gap repair request (recovery mode only): the sender is missing
    /// reverse-link sequence numbers `lo..=hi` and has already buffered
    /// something beyond them. Fire-and-forget — a lost nack is covered
    /// by the peer's retransmit timer, so it is never acked or resent.
    Nack {
        /// First missing sequence number.
        lo: u64,
        /// Last missing sequence number (`lo <= hi`).
        hi: u64,
    },
    /// Coalesced retransmission (recovery mode only): every payload the
    /// sender owes one peer in a single envelope, in ascending sequence
    /// order, with the same piggybacked cumulative ack a [`Body::Sealed`]
    /// would carry. One wire transmission repairs a whole gap, so
    /// recovery traffic scales with loss *events*, not lost payloads.
    Repair {
        /// Cumulative ack of the reverse link, as in [`Body::Sealed`].
        ack: u64,
        /// `(seq, payload)` per retransmitted message, ascending.
        items: Vec<(u64, Body)>,
    },
    /// Fire-and-forget notice (recovery mode only): the sender's retry
    /// budget against `peer` is exhausted and it now treats that peer as
    /// dead. Observability only — the exclusion vote reads each
    /// endpoint's suspicion state directly, so losing this notice cannot
    /// change the outcome.
    SuspectDead {
        /// The peer the sender gave up on.
        peer: usize,
    },
}

impl Body {
    /// A short label for traces and Fig. 2 rendering.
    pub fn kind(&self) -> &'static str {
        match self {
            Body::Shares { .. } => "shares",
            Body::Commit { .. } => "commitments",
            Body::Lambda { .. } => "lambda-psi",
            Body::Disclose { .. } => "f-disclosure",
            Body::WinnerClaim { .. } => "winner-claim",
            Body::Excluded { .. } => "excluded-lambda-psi",
            Body::PaymentClaim { .. } => "payment-claim",
            Body::Abort { .. } => "abort",
            Body::Batch(_) => "batch",
            Body::Sealed { .. } => "sealed",
            Body::Ack { .. } => "ack",
            Body::Nack { .. } => "nack",
            Body::Repair { .. } => "repair",
            Body::SuspectDead { .. } => "suspect-dead",
        }
    }

    /// The task this message belongs to, if task-scoped. A sealed
    /// envelope reports its carried message's task.
    pub fn task(&self) -> Option<usize> {
        match self {
            Body::Shares { task, .. }
            | Body::Commit { task, .. }
            | Body::Lambda { task, .. }
            | Body::Disclose { task, .. }
            | Body::WinnerClaim { task, .. }
            | Body::Excluded { task, .. } => Some(*task),
            Body::Sealed { inner, .. } => inner.task(),
            Body::PaymentClaim { .. }
            | Body::Abort { .. }
            | Body::Batch(_)
            | Body::Ack { .. }
            | Body::Nack { .. }
            | Body::Repair { .. }
            | Body::SuspectDead { .. } => None,
        }
    }
}

impl Payload for Body {
    /// The exact wire size of the message under the binary codec of
    /// [`crate::codec`] — the network statistics therefore count real
    /// bytes, not estimates.
    fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Pure reverse-path control traffic: standalone acks and nacks.
    /// The fault matrix's asymmetric ack-path loss knob
    /// ([`dmw_simnet::FaultPlan::drop_acks_every`]) keys on this, so it
    /// can drop acknowledgments while data — including [`Body::Sealed`]
    /// and [`Body::Repair`] payload carriers — keeps flowing.
    fn is_control(&self) -> bool {
        matches!(self, Body::Ack { .. } | Body::Nack { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_tasks() {
        let b = Body::Shares {
            task: 3,
            bundle: ShareBundle {
                e: 1,
                f: 2,
                g: 3,
                h: 4,
            },
        };
        assert_eq!(b.kind(), "shares");
        assert_eq!(b.task(), Some(3));
        let b = Body::PaymentClaim {
            payments: vec![1, 2],
        };
        assert_eq!(b.kind(), "payment-claim");
        assert_eq!(b.task(), None);
        let b = Body::Abort {
            reason: AbortReason::Unresolvable,
        };
        assert_eq!(b.kind(), "abort");
        assert_eq!(b.task(), None);
    }

    #[test]
    fn sizes_scale_with_content() {
        let small = Body::Disclose {
            task: 0,
            f_values: vec![1; 4],
        };
        let large = Body::Disclose {
            task: 0,
            f_values: vec![1; 16],
        };
        assert!(large.size_bytes() > small.size_bytes());
        // size_bytes is the exact encoded length.
        assert_eq!(small.size_bytes(), small.encode().len());
        let shares = Body::Shares {
            task: 0,
            bundle: ShareBundle {
                e: 0,
                f: 0,
                g: 0,
                h: 0,
            },
        };
        assert_eq!(shares.size_bytes(), shares.encode().len());
    }
}
