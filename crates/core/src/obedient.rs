//! The obedient-nodes strawman — Feigenbaum–Shenker's Open Problem 10.
//!
//! "Regarding Open Problem 10, the centralized MinWork can be simply
//! distributed among obedient nodes" (§1.2). This module implements that
//! trivial distribution as a comparison point for DMW: a designated
//! *leader* collects plaintext bid rows over the network, computes the
//! MinWork outcome locally and broadcasts it. It costs only `Θ(mn)`
//! messages — but it
//!
//! * exposes every agent's full bid row to the leader (no privacy),
//! * trusts the leader unconditionally: a cheating leader can bias the
//!   schedule or the payments and **no agent can detect it** (contrast
//!   with DMW, where every tampered value trips a verification equation).
//!
//! The communication experiment reports this protocol as the middle row
//! between centralized MinWork and DMW; [`CheatingLeader`] demonstrates
//! the trust failure that motivates DMW's cryptography.

use crate::error::DmwError;
use dmw_mechanism::{AgentId, ExecutionTimes, MinWork, Outcome, TieBreak};
use dmw_simnet::{Network, NetworkStats, NodeId, Payload};
use serde::{Deserialize, Serialize};

/// Messages of the obedient protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObedientBody {
    /// An agent's plaintext bid row (one entry per task) — the leader
    /// learns everything.
    BidRow(Vec<u64>),
    /// The leader's published outcome: per-task winners and per-agent
    /// payments.
    Outcome {
        /// `assignment[j]` = winner of task `j`.
        assignment: Vec<usize>,
        /// `payments[i]` = payment to agent `i`.
        payments: Vec<u64>,
    },
}

impl Payload for ObedientBody {
    fn size_bytes(&self) -> usize {
        match self {
            ObedientBody::BidRow(row) => 1 + 4 + row.len() * 8,
            ObedientBody::Outcome {
                assignment,
                payments,
            } => 1 + 4 + assignment.len() * 4 + 4 + payments.len() * 8,
        }
    }
}

/// How the leader behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LeaderBehavior {
    /// Computes MinWork honestly.
    #[default]
    Honest,
    /// Assigns every task to itself and pays itself the maximum bid —
    /// undetectable by the other agents, who see only the published
    /// outcome.
    SelfDealing,
}

/// A cheating-leader marker used by experiments; see
/// [`LeaderBehavior::SelfDealing`].
pub type CheatingLeader = LeaderBehavior;

/// Result of an obedient-protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObedientRun {
    /// The outcome as published by the leader (agents cannot verify it).
    pub outcome: Outcome,
    /// Network traffic.
    pub network: NetworkStats,
    /// `true` iff the published outcome equals the honest MinWork outcome
    /// (computable only with global knowledge — the agents themselves
    /// have no way to tell).
    pub honest_outcome: bool,
}

/// Runs the obedient leader-based distribution of MinWork. Agent 0 is the
/// leader.
///
/// # Errors
///
/// Propagates mechanism errors for malformed bid matrices.
pub fn run_obedient(
    bids: &ExecutionTimes,
    leader_behavior: LeaderBehavior,
) -> Result<ObedientRun, DmwError> {
    let n = bids.agents();
    let m = bids.tasks();
    let mut network: Network<ObedientBody> = Network::new(n);
    let leader = NodeId(0);

    // Round 0: every non-leader sends its plaintext bid row to the leader.
    for i in 1..n {
        network.send(
            NodeId(i),
            leader,
            ObedientBody::BidRow(bids.agent_row(AgentId(i)).to_vec()),
        );
    }
    network.step();

    // The leader assembles the bid matrix (its own row plus the received
    // ones) and computes the outcome.
    let mut rows: Vec<Vec<u64>> = vec![Vec::new(); n];
    rows[0] = bids.agent_row(AgentId(0)).to_vec();
    for msg in network.take_inbox(leader) {
        if let ObedientBody::BidRow(row) = msg.payload {
            rows[msg.from.0] = row;
        }
    }
    let matrix = ExecutionTimes::from_rows(rows)?;
    let honest = MinWork::new(TieBreak::LowestIndex).run(&matrix)?;
    let published = match leader_behavior {
        LeaderBehavior::Honest => honest.clone(),
        LeaderBehavior::SelfDealing => {
            // The leader takes everything and pays itself top dollar.
            let assignment = vec![AgentId(0); m];
            let mut payments = vec![0u64; n];
            payments[0] = (0..m)
                .map(|j| {
                    matrix
                        .task_column(dmw_mechanism::TaskId(j))
                        .into_iter()
                        .max()
                        .unwrap_or(0)
                })
                .sum();
            Outcome {
                schedule: dmw_mechanism::Schedule::from_assignment(n, assignment)?,
                payments,
            }
        }
    };

    // Round 1: the leader broadcasts the outcome.
    network.broadcast(
        leader,
        ObedientBody::Outcome {
            assignment: published
                .schedule
                .assignment()
                .iter()
                .map(|a| a.0)
                .collect(),
            payments: published.payments.clone(),
        },
    );
    network.step();

    let honest_outcome = published == honest;
    Ok(ObedientRun {
        outcome: published,
        network: *network.stats(),
        honest_outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bids() -> ExecutionTimes {
        let mut rng = rand::rngs::StdRng::seed_from_u64(66);
        dmw_mechanism::generators::uniform(5, 3, 1..=9, &mut rng).unwrap()
    }

    #[test]
    fn honest_leader_reproduces_minwork() {
        let bids = bids();
        let run = run_obedient(&bids, LeaderBehavior::Honest).unwrap();
        let reference = MinWork::new(TieBreak::LowestIndex).run(&bids).unwrap();
        assert_eq!(run.outcome, reference);
        assert!(run.honest_outcome);
    }

    #[test]
    fn traffic_is_linear_in_n() {
        let bids = bids();
        let run = run_obedient(&bids, LeaderBehavior::Honest).unwrap();
        // n - 1 bid rows in, n - 1 outcome broadcasts out.
        assert_eq!(run.network.point_to_point, (5 - 1) + (5 - 1));
        assert_eq!(run.network.broadcasts, 1);
    }

    #[test]
    fn cheating_leader_is_undetectable_but_visible_globally() {
        let bids = bids();
        let run = run_obedient(&bids, LeaderBehavior::SelfDealing).unwrap();
        assert!(!run.honest_outcome, "the global observer sees the theft");
        // Every task went to the leader.
        for j in 0..3 {
            assert_eq!(run.outcome.schedule.agent_of(j.into()), Some(AgentId(0)));
        }
        // The other agents received a syntactically valid outcome — they
        // have no verification equation to reject it with, which is the
        // point of the comparison.
        assert!(run.outcome.payments[0] > 0);
    }
}
