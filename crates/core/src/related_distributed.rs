//! A distributed mechanism for **related machines** — the paper's §5
//! future work ("designing distributed versions of the centralized
//! mechanism for scheduling on related machines"), realized with the DMW
//! machinery.
//!
//! Related machines are one-parameter agents: machine `i`'s private type
//! is its cost-per-unit-work `c_i`. The `fastest-takes-all` allocation
//! (all `W` units to the lowest declared cost, paid the second-lowest
//! cost per unit — see `dmw_mechanism::related`) is a *single* Vickrey
//! auction on the `c_i`, so the whole DMW apparatus applies unchanged:
//! quantize the costs onto the discrete bid set, run **one** DMW task
//! auction, and scale the resulting second price back to cost units.
//!
//! Everything DMW guarantees is inherited verbatim — faithfulness, strong
//! voluntary participation, bid privacy below the coalition threshold,
//! crash tolerance up to `c` — because this *is* a DMW execution; the
//! mechanism-design content is only in the bid mapping. The residual gap
//! to Archer–Tardos is fractional/monotone-curve allocations
//! (`proportional-share`), whose distributed implementation needs secure
//! arithmetic beyond degree resolution; that remains open, as the paper
//! says.

use crate::config::DmwConfig;
use crate::error::DmwError;
use crate::runner::{DmwRun, DmwRunner};
use dmw_mechanism::quantize::Quantizer;
use rand::Rng;

/// The outcome of a distributed related-machines auction.
#[derive(Debug, Clone)]
pub struct RelatedOutcome {
    /// The machine that takes the entire workload.
    pub winner: usize,
    /// The payment per unit of work, in cost units (the de-quantized
    /// second price).
    pub price_per_unit: f64,
    /// Total payment for `total_work` units.
    pub total_payment: f64,
    /// The quantizer used to map costs onto the bid set (kept so callers
    /// can interpret prices).
    pub quantizer: Quantizer,
    /// The underlying DMW run (trace, traffic, abort status).
    pub run: DmwRun,
}

/// Runs the distributed fastest-takes-all mechanism: one DMW auction on
/// quantized cost-per-unit bids.
///
/// # Errors
///
/// * [`DmwError::Config`] if `costs` does not match the configuration or
///   contains non-finite/non-positive values;
/// * protocol errors from the underlying DMW run (an aborted run is
///   reported through the embedded [`DmwRun`], surfaced here as
///   [`DmwError::Aborted`]).
pub fn run_related<R: Rng + ?Sized>(
    config: &DmwConfig,
    costs: &[f64],
    total_work: f64,
    rng: &mut R,
) -> Result<RelatedOutcome, DmwError> {
    let n = config.agents();
    if costs.len() != n {
        return Err(DmwError::Config {
            reason: format!("{} costs for {} agents", costs.len(), n),
        });
    }
    if costs.iter().any(|&c| c <= 0.0 || !c.is_finite()) || total_work <= 0.0 || total_work.is_nan()
    {
        return Err(DmwError::Config {
            reason: "costs and total work must be positive and finite".into(),
        });
    }
    // Quantize cost-per-unit onto the discrete bid set W.
    let rows: Vec<Vec<f64>> = costs.iter().map(|&c| vec![c]).collect();
    let quantizer = Quantizer::fit(&rows, config.encoding().w_max() as usize).map_err(|e| {
        DmwError::Config {
            reason: e.to_string(),
        }
    })?;
    let bids = quantizer.quantize(&rows).map_err(|e| DmwError::Config {
        reason: e.to_string(),
    })?;

    // One DMW task auction decides everything.
    let run = DmwRunner::new(config.clone()).run_honest(&bids, rng)?;
    let outcome = run.completed()?;
    let winner = outcome.schedule.agent_of(0.into()).expect("one task").0;
    let price_per_unit = quantizer.value_of(outcome.second_prices[0]);
    Ok(RelatedOutcome {
        winner,
        price_per_unit,
        total_payment: price_per_unit * total_work,
        quantizer,
        run: run.clone(),
    })
}

/// The centralized fastest-takes-all reference on the same quantized
/// bids: winner = lowest level (ties to lowest index), price = second
/// lowest level. Used by equivalence tests and experiments.
pub fn centralized_reference(costs: &[f64], levels: usize) -> Result<(usize, u64), DmwError> {
    let rows: Vec<Vec<f64>> = costs.iter().map(|&c| vec![c]).collect();
    let quantizer = Quantizer::fit(&rows, levels).map_err(|e| DmwError::Config {
        reason: e.to_string(),
    })?;
    let bids: Vec<u64> = costs.iter().map(|&c| quantizer.level_of(c)).collect();
    let min = *bids.iter().min().expect("non-empty");
    let winner = bids.iter().position(|&b| b == min).expect("non-empty");
    let second = bids
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != winner)
        .map(|(_, &b)| b)
        .min()
        .ok_or(DmwError::Config {
            reason: "need at least two machines".into(),
        })?;
    Ok((winner, second))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (DmwConfig, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let config = DmwConfig::generate(6, 1, &mut rng).unwrap();
        (config, rng)
    }

    #[test]
    fn fastest_machine_wins_and_is_paid_second_cost() {
        let (config, mut rng) = setup(301);
        let costs = [3.0, 1.0, 4.0, 2.5, 3.5, 4.0];
        let outcome = run_related(&config, &costs, 100.0, &mut rng).unwrap();
        assert_eq!(outcome.winner, 1, "lowest cost machine takes all");
        // Paid at least its own cost per unit: voluntary participation.
        assert!(outcome.price_per_unit >= 1.0 - 1e-9);
        assert!((outcome.total_payment - outcome.price_per_unit * 100.0).abs() < 1e-9);
        assert!(outcome.run.is_completed());
    }

    #[test]
    fn matches_the_centralized_reference() {
        for seed in 0..10u64 {
            let (config, mut rng) = setup(400 + seed);
            let costs: Vec<f64> = (0..6)
                .map(|_| rand::Rng::gen_range(&mut rng, 1.0..9.0))
                .collect();
            let outcome = run_related(&config, &costs, 50.0, &mut rng).unwrap();
            let (winner, second) =
                centralized_reference(&costs, config.encoding().w_max() as usize).unwrap();
            assert_eq!(outcome.winner, winner, "seed {seed}");
            assert!(
                (outcome.price_per_unit - outcome.quantizer.value_of(second)).abs() < 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn validates_inputs() {
        let (config, mut rng) = setup(500);
        assert!(run_related(&config, &[1.0, 2.0], 10.0, &mut rng).is_err());
        assert!(run_related(
            &config,
            &[1.0, 2.0, 3.0, 4.0, 5.0, f64::NAN],
            10.0,
            &mut rng
        )
        .is_err());
        assert!(run_related(&config, &[1.0, 2.0, 3.0, 4.0, 5.0, -1.0], 10.0, &mut rng).is_err());
        assert!(run_related(&config, &[1.0; 6], 0.0, &mut rng).is_err());
    }

    #[test]
    fn inherits_dmw_traffic_shape() {
        // One task auction: traffic is Theta(n^2), not Theta(m n^2).
        let (config, mut rng) = setup(600);
        let costs = [3.0, 1.0, 4.0, 2.5, 3.5, 4.0];
        let outcome = run_related(&config, &costs, 100.0, &mut rng).unwrap();
        let n = 6u64;
        assert!(outcome.run.network.point_to_point < 10 * n * n);
    }
}
