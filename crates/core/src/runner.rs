//! The protocol runner: a quiescence-driven scheduler over a pluggable
//! [`Transport`].
//!
//! [`DmwRunner`] owns the published configuration (Phase I), instantiates
//! one [`DmwAgent`] per participant, and steps a [`Transport`] until the
//! round budget is exhausted or the system is quiescent (every agent
//! terminal and no traffic in flight). Each scheduler tick polls every
//! agent with its freshly delivered inbox; the agents' typed phase state
//! machines ([`crate::phases`]) decide what to do with it. The runner
//! records the message trace (Fig. 2) and settles payments through the
//! payment infrastructure. It is the reproduction's equivalent of
//! "implementing DMW in a simulated distributed environment" (Section 5).
//!
//! On the default [`dmw_simnet::LockstepTransport`] with the default
//! patience, ticks coincide with the paper's synchronous rounds and honest
//! runs take exactly [`PROTOCOL_ROUNDS`] of them. [`DmwRunner::run_on`]
//! accepts any other transport — e.g. [`dmw_simnet::DelayTransport`] with
//! per-link delays — together with [`DmwRunner::with_round_budget`] and
//! [`DmwRunner::with_patience`] to give messages time to arrive.

use crate::agent::{AgentStatus, DmwAgent};
use crate::config::DmwConfig;
use crate::error::{AbortReason, DmwError};
use crate::messages::Body;
use crate::payment::settle;
use crate::reliable::{exclusion_vote, ReliableEndpoint, RetryPolicy};
use crate::strategy::{Behavior, VerificationPolicy};
use crate::trace::TraceEvent;
use dmw_mechanism::{AgentId, ExecutionTimes, Schedule, TaskId};
use dmw_obs::{Key, MetricsSink, MetricsSnapshot};
use dmw_simnet::{
    coalesce, FaultPlan, LockstepTransport, NetworkStats, NodeId, Payload, Recipient, Transport,
};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of synchronous protocol rounds on the lockstep transport (0–4
/// active, one propagation round so late aborts reach every agent). This
/// is the default round budget of the scheduler.
pub const PROTOCOL_ROUNDS: u64 = 6;

/// The successful outcome of a DMW run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedOutcome {
    /// The agreed schedule (task → winning agent).
    pub schedule: Schedule,
    /// Settled per-agent payments, in bid units.
    pub payments: Vec<u64>,
    /// Entries the payment infrastructure withheld for lack of agreement.
    pub withheld: Vec<bool>,
    /// Per-task first prices (the winning bids).
    pub first_prices: Vec<u64>,
    /// Per-task second prices (the payments per task).
    pub second_prices: Vec<u64>,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunResult {
    /// All live agents completed and agreed.
    Completed(CompletedOutcome),
    /// Recovery mode only: the survivors excluded unresponsive agents
    /// (their exhausted retry budgets confirmed by the majority
    /// exclusion vote) and re-auctioned the affected tasks among
    /// themselves — graceful degradation instead of an abort, available
    /// while the excluded count stays within the tolerated `c`.
    Degraded {
        /// The salvaged outcome: primary results for untouched tasks,
        /// survivor re-auction results (at the surviving second price)
        /// for the rest, payments recomputed over the final schedule.
        outcome: CompletedOutcome,
        /// Agents voted out, ascending.
        excluded: Vec<usize>,
        /// Tasks re-auctioned among the survivors, ascending.
        reauctioned_tasks: Vec<usize>,
    },
    /// The protocol aborted.
    Aborted {
        /// The first-detected reason.
        reason: AbortReason,
        /// Agents whose own detection (not peer notification) aborted them.
        detectors: Vec<usize>,
    },
}

/// A finished run: result plus observability artifacts.
#[derive(Debug, Clone)]
pub struct DmwRun {
    /// The protocol result.
    pub result: RunResult,
    /// Network traffic counters (feeds the Table 1 communication
    /// experiment).
    pub network: NetworkStats,
    /// The deterministic metrics snapshot: transport-level per-link
    /// traffic, delay histogram and drop causes, the scheduler's
    /// per-phase message/byte counts, and every agent's protocol
    /// metrics (dwell ticks, patience expirations, verifications,
    /// aborts). Bit-identical for identical seeds, whatever the thread
    /// count or (timing-equivalent) transport.
    pub metrics: MetricsSnapshot,
    /// The full message trace (feeds the Fig. 2 reproduction).
    pub trace: Vec<TraceEvent>,
}

impl DmwRun {
    /// The completed outcome — of a clean completion or of a degraded
    /// run (which also carries a full schedule and payment vector).
    ///
    /// # Errors
    ///
    /// Returns [`DmwError::Aborted`] when the run aborted.
    pub fn completed(&self) -> Result<&CompletedOutcome, DmwError> {
        match &self.result {
            RunResult::Completed(outcome) | RunResult::Degraded { outcome, .. } => Ok(outcome),
            RunResult::Aborted { reason, .. } => Err(DmwError::Aborted { reason: *reason }),
        }
    }

    /// The outcome, if the run produced one (cleanly or degraded).
    pub fn outcome(&self) -> Option<&CompletedOutcome> {
        match &self.result {
            RunResult::Completed(outcome) | RunResult::Degraded { outcome, .. } => Some(outcome),
            RunResult::Aborted { .. } => None,
        }
    }

    /// `true` when the protocol completed cleanly (not degraded).
    pub fn is_completed(&self) -> bool {
        matches!(self.result, RunResult::Completed(_))
    }

    /// `true` when the run ended in graceful degradation.
    pub fn is_degraded(&self) -> bool {
        matches!(self.result, RunResult::Degraded { .. })
    }

    /// The abort reason, if the run aborted.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match &self.result {
            RunResult::Aborted { reason, .. } => Some(*reason),
            RunResult::Completed(_) | RunResult::Degraded { .. } => None,
        }
    }
}

/// Seed-domain separator for the survivor re-auction RNG stream, so the
/// sub-run's parameters derive deterministically from the primary run's
/// seed without reusing its draws.
const RECOVERY_SEED_DOMAIN: u64 = 0x5245_4155_4354_4E31;

/// Which scheduling engine [`DmwRunner::run_on`] drives the run with.
/// Both engines execute the *same* tick body; they differ only in which
/// ticks they bother to execute, and every run artifact —
/// [`RunResult`], [`dmw_simnet::NetworkStats`], the trace, the metrics
/// snapshot — is bit-identical between them except for the
/// `events_processed` gauge that counts executed ticks
/// (`tests/tests/event_parity.rs` pins this). See `docs/scheduler.md`
/// for the event-queue design and the parity argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Discrete-event scheduling (the default): after each executed
    /// tick, jump directly to the next tick that can matter — the
    /// transport's next delivery, an agent's patience deadline or
    /// readiness cascade, or a reliable endpoint's retransmission
    /// timer — fast-forwarding the dead air in between. This is what
    /// makes recovery runs (whose backoff horizon is `base·2^budget`
    /// ticks of mostly idle waiting) and large-`n` sweeps tractable.
    #[default]
    Event,
    /// Execute every tick from 0 to the stopping round — the paper's
    /// poll-every-tick quiescence loop, kept as the regression oracle
    /// the event engine is checked against.
    Polling,
}

/// Drives DMW protocol runs under a fixed configuration.
#[derive(Debug, Clone)]
pub struct DmwRunner {
    config: DmwConfig,
    policy: VerificationPolicy,
    batching: bool,
    verify_threads: usize,
    round_budget: u64,
    patience: u64,
    recovery: Option<RetryPolicy>,
    classic_recovery: bool,
    engine: Engine,
}

impl DmwRunner {
    /// Creates a runner for the published configuration with the default
    /// rotation verification policy and per-task (unbatched) messages.
    pub fn new(config: DmwConfig) -> Self {
        DmwRunner {
            config,
            policy: VerificationPolicy::Rotation,
            batching: false,
            verify_threads: 1,
            round_budget: PROTOCOL_ROUNDS,
            patience: 1,
            recovery: None,
            classic_recovery: false,
            engine: Engine::default(),
        }
    }

    /// Selects the scheduling engine (see [`Engine`]). The default
    /// [`Engine::Event`] skips provably idle ticks;
    /// [`Engine::Polling`] executes every tick — useful as the
    /// regression oracle and for step-by-step debugging.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the verification policy (see [`VerificationPolicy`]).
    pub fn with_policy(mut self, policy: VerificationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Coalesces each round's messages to the same recipient into one
    /// [`Body::Batch`] transmission. The paper's Θ(mn²) *message* count is
    /// an artifact of per-task accounting; batching drops the message
    /// count to Θ(n²) per run while the byte volume stays Θ(mn²) — the
    /// `ablation-batch` experiment measures both.
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// Fans each agent's Phase III.1 share-verification batch over
    /// `threads` workers (`1` = sequential, the default). Detection is
    /// width-invariant — see
    /// [`dmw_crypto::commitments::verify_shares_batch`] — so this is a
    /// pure throughput knob for large `m · n` runs. When trials already
    /// saturate the machine through [`crate::batch::BatchRunner`], leave
    /// this at `1`: nested fan-out cannot create parallelism the trial
    /// level is using.
    #[must_use]
    pub fn with_verify_threads(mut self, threads: usize) -> Self {
        self.verify_threads = threads.max(1);
        self
    }

    /// Caps the number of scheduler ticks. The default is
    /// [`PROTOCOL_ROUNDS`], which exactly reproduces the paper's lockstep
    /// schedule; transports that delay delivery need a larger budget.
    #[must_use]
    pub fn with_round_budget(mut self, budget: u64) -> Self {
        self.round_budget = budget.max(1);
        self
    }

    /// Sets how many scheduler ticks an agent waits for a phase's inputs
    /// to complete before acting on whatever arrived (see
    /// [`DmwAgent::with_patience`]). The default of `1` acts at the first
    /// poll after entering a phase — the lockstep schedule. Delaying
    /// transports need patience of at least the worst-case delivery delay
    /// plus one, or honest traffic is mistaken for silence.
    #[must_use]
    pub fn with_patience(mut self, patience: u64) -> Self {
        self.patience = patience.max(1);
        self
    }

    /// Enables the reliable-delivery sublayer with the default
    /// [`RetryPolicy`]: every protocol message travels in a sequenced,
    /// cumulative-acked [`Body::Sealed`] envelope, lost traffic is
    /// retransmitted with exponential backoff, and budget-exhausted
    /// peers are excluded by majority vote with their tasks
    /// re-auctioned among the survivors ([`RunResult::Degraded`])
    /// instead of failing the run — while the excluded count stays
    /// within the tolerated `c`. Patience and the round budget
    /// auto-scale to the policy's worst-case repair horizon (explicit
    /// [`DmwRunner::with_patience`] / [`DmwRunner::with_round_budget`]
    /// values act as floors, never caps). Off by default: the lockstep
    /// artifacts of the paper reproduction are byte-exact without it.
    #[must_use]
    pub fn with_recovery(self) -> Self {
        self.with_recovery_policy(RetryPolicy::default())
    }

    /// As [`DmwRunner::with_recovery`], with explicit retry parameters.
    #[must_use]
    pub fn with_recovery_policy(mut self, policy: RetryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Pins the reliable endpoints to the classic v3 recovery
    /// behaviour — fixed `base_timeout << attempts` backoff, cumulative
    /// acks only, per-payload retransmission — instead of the default
    /// adaptive mode (RTT-derived timeouts, selective acks, nack fast
    /// path, coalesced repair; see [`crate::reliable`]). Both modes
    /// repair to the identical outcome; this knob exists so the bench
    /// can measure the recovery-overhead difference
    /// (`dmw-bench-batch/v4`'s before/after recovery block).
    #[must_use]
    pub fn with_classic_recovery(mut self, classic: bool) -> Self {
        self.classic_recovery = classic;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &DmwConfig {
        &self.config
    }

    /// Runs the protocol with every agent following the suggested strategy
    /// and no injected faults.
    ///
    /// # Errors
    ///
    /// Returns [`DmwError`] for shape/bid-range violations; an aborted
    /// protocol is reported inside the returned [`DmwRun`], not as an
    /// error.
    pub fn run_honest<R: Rng + ?Sized>(
        &self,
        bids: &ExecutionTimes,
        rng: &mut R,
    ) -> Result<DmwRun, DmwError> {
        let n = self.config.agents();
        self.run(bids, &vec![Behavior::Suggested; n], FaultPlan::none(n), rng)
    }

    /// Runs the protocol with per-agent behaviors and a network fault
    /// plan.
    ///
    /// `bids` rows index agents, columns tasks; every entry must lie in
    /// the bid set `W`.
    ///
    /// # Errors
    ///
    /// * [`DmwError::ShapeMismatch`] if the matrix does not cover the
    ///   configured agents;
    /// * [`DmwError::BidOutOfRange`] for an out-of-range entry;
    /// * [`DmwError::Config`] if `behaviors` has the wrong length.
    pub fn run<R: Rng + ?Sized>(
        &self,
        bids: &ExecutionTimes,
        behaviors: &[Behavior],
        faults: FaultPlan,
        rng: &mut R,
    ) -> Result<DmwRun, DmwError> {
        let n = self.config.agents();
        self.run_on(
            bids,
            behaviors,
            LockstepTransport::with_faults(n, faults),
            rng,
        )
    }

    /// Runs the protocol over an arbitrary [`Transport`].
    ///
    /// The scheduler polls every agent each tick (delivered inbox in,
    /// outgoing messages out), steps the transport, and stops at the
    /// round budget or as soon as every agent is terminal and the
    /// transport is quiescent — whichever comes first. With the default
    /// budget and patience on a [`LockstepTransport`] this reproduces the
    /// paper's six synchronous rounds bit for bit.
    ///
    /// # Errors
    ///
    /// As [`DmwRunner::run`], plus [`DmwError::Config`] when the
    /// transport's node count disagrees with the configuration.
    pub fn run_on<T, R>(
        &self,
        bids: &ExecutionTimes,
        behaviors: &[Behavior],
        mut transport: T,
        rng: &mut R,
    ) -> Result<DmwRun, DmwError>
    where
        T: Transport<Body>,
        R: Rng + ?Sized,
    {
        let n = self.config.agents();
        let m = bids.tasks();
        if bids.agents() != n {
            return Err(DmwError::ShapeMismatch {
                agents: bids.agents(),
                expected_agents: n,
            });
        }
        if behaviors.len() != n {
            return Err(DmwError::Config {
                reason: format!("{} behaviors for {} agents", behaviors.len(), n),
            });
        }
        if transport.nodes() != n {
            return Err(DmwError::Config {
                reason: format!("transport has {} nodes for {} agents", transport.nodes(), n),
            });
        }
        let w_max = self.config.encoding().w_max();
        for (agent, task, bid) in bids.iter() {
            if !self.config.encoding().contains_bid(bid) {
                return Err(DmwError::BidOutOfRange {
                    agent: agent.0,
                    task: task.0,
                    bid,
                    w_max,
                });
            }
        }

        // In recovery mode, patience must outlast the worst-case repair
        // horizon (or honest-but-lost traffic is mistaken for silence
        // and spuriously masked) and the round budget must leave room
        // for the repaired schedule; explicit settings act as floors.
        let (patience, round_budget) = match self.recovery {
            Some(policy) => {
                let horizon = policy.worst_case_repair() + 2;
                let patience = self.patience.max(horizon);
                (patience, self.round_budget.max(patience * 8))
            }
            None => (self.patience, self.round_budget),
        };
        // A node crashed by the fault plan is invisible to the network
        // from its crash round on; its *local* state (it will observe
        // missing traffic and abort) must not be mistaken for a protocol
        // failure when scanning results below.
        let crashed: Vec<bool> = (0..n)
            .map(|i| transport.faults().is_crashed(NodeId(i), round_budget))
            .collect();

        let seed: u64 = rng.gen();
        let mut endpoints: Vec<ReliableEndpoint> = match self.recovery {
            Some(policy) => (0..n)
                .map(|i| {
                    let endpoint = ReliableEndpoint::new(i, n, policy);
                    if self.classic_recovery {
                        endpoint.classic()
                    } else {
                        endpoint
                    }
                })
                .collect(),
            None => Vec::new(),
        };
        let mut agents: Vec<DmwAgent> = behaviors
            .iter()
            .copied()
            .enumerate()
            .map(|(i, behavior)| {
                DmwAgent::with_policy(
                    self.config.clone(),
                    i,
                    bids.agent_row(AgentId(i)).to_vec(),
                    behavior,
                    self.policy,
                    seed,
                )
                .with_verify_width(self.verify_threads)
                .with_patience(patience)
            })
            .collect();
        let mut trace = Vec::new();
        // The scheduler's own series: per-phase message and byte counts,
        // attributed at send time (the only place phase, sender and
        // recipient multiplicity are all known).
        let mut sched_metrics = MetricsSnapshot::default();

        let mut round: u64 = 0;
        let mut ticks_processed: u64 = 0;
        loop {
            run_tick(
                round,
                self.batching,
                &mut agents,
                &mut endpoints,
                &mut transport,
                &mut trace,
                &mut sched_metrics,
            );
            ticks_processed += 1;
            round += 1;
            if round >= round_budget {
                break;
            }
            if transport.is_quiescent()
                && agents.iter().all(DmwAgent::is_terminal)
                && endpoints.iter().all(ReliableEndpoint::is_settled)
            {
                break;
            }
            if self.engine == Engine::Event {
                // Next tick that can matter: the transport's earliest
                // delivery, an agent's wake (patience deadline or
                // readiness cascade), or a reliable endpoint's
                // retransmission timer. Everything strictly between
                // `round` and that tick is a provable global no-op —
                // the stopping condition above is invariant across the
                // gap (nothing delivers, acts or retransmits), so both
                // engines evaluate it in identical states. With no
                // event left before the budget, fast-forward straight
                // to it, exactly as the polling loop's remaining empty
                // ticks would.
                let mut next: Option<u64> = transport.next_due();
                let mut merge = |candidate: Option<u64>| {
                    if let Some(tick) = candidate {
                        next = Some(next.map_or(tick, |t| t.min(tick)));
                    }
                };
                for agent in &agents {
                    merge(agent.next_wake());
                }
                for endpoint in &endpoints {
                    merge(endpoint.next_timer());
                }
                let target = next.unwrap_or(round_budget).clamp(round, round_budget);
                if target > round {
                    transport.advance_to(target);
                    round = target;
                    if round >= round_budget {
                        break;
                    }
                }
            }
        }

        // One post-run assembly serves every return path below: the
        // transport's per-link/drop/delay series, the scheduler's
        // per-phase traffic, each agent's protocol metrics and — in
        // recovery mode — each endpoint's retransmit/ack/suspicion
        // series merge into a single snapshot; the run length lands as
        // a gauge.
        let network = *transport.stats();
        let mut metrics = transport.metrics().clone();
        metrics.absorb(&sched_metrics);
        for agent in &agents {
            metrics.absorb(agent.metrics());
        }
        for endpoint in &endpoints {
            metrics.absorb(endpoint.metrics());
        }
        metrics.gauge_max(Key::named("run_ticks"), round);
        // `run_ticks` is simulated time (the final tick counter, both
        // engines agree on it bit-for-bit); `events_processed` is
        // scheduler work — how many tick bodies actually executed. Under
        // the polling engine they coincide; under the event engine
        // `events_processed` can be far smaller when the run has long
        // idle stretches (retransmission backoff, patience waits).
        metrics.gauge_max(Key::named("events_processed"), ticks_processed);

        let result = 'result: {
            let unresolvable = || RunResult::Aborted {
                reason: AbortReason::Unresolvable,
                detectors: vec![],
            };

            // Any abort (own detection or peer notification) fails the run.
            let mut detectors = Vec::new();
            let mut reason = None;
            for (i, (agent, &is_crashed)) in agents.iter().zip(&crashed).enumerate() {
                if is_crashed {
                    continue;
                }
                if let Some(r) = agent.abort_reason() {
                    if !matches!(r, AbortReason::PeerAborted { .. }) {
                        detectors.push(i);
                        reason.get_or_insert(r);
                    }
                }
            }
            if reason.is_none() {
                reason = agents
                    .iter()
                    .zip(&crashed)
                    .filter(|(_, &is_crashed)| !is_crashed)
                    .find_map(|(a, _)| a.abort_reason());
            }
            if let Some(reason) = reason {
                break 'result RunResult::Aborted { reason, detectors };
            }

            // Collect the outcome from the Done agents and assert agreement —
            // honest agents must have computed identical winners and prices.
            let done: Vec<&DmwAgent> = agents
                .iter()
                .zip(&crashed)
                .filter(|(a, &is_crashed)| !is_crashed && matches!(a.status(), AgentStatus::Done))
                .map(|(a, _)| a)
                .collect();
            let Some(reference) = done.first() else {
                break 'result unresolvable();
            };
            let mut assignment = Vec::with_capacity(m);
            let mut first_prices = Vec::with_capacity(m);
            let mut second_prices = Vec::with_capacity(m);
            let mut resolved = true;
            for task in 0..m {
                // A Done agent has resolved every task; a gap here is an
                // internal inconsistency and is surfaced as Unresolvable
                // rather than crashing the harness.
                let (Some(winner), Some(first), Some(second)) = (
                    reference.winner_of(task),
                    reference.first_price_of(task),
                    reference.second_price_of(task),
                ) else {
                    resolved = false;
                    break;
                };
                for other in &done {
                    if other.behavior().is_suggested() {
                        assert_eq!(
                            other.winner_of(task),
                            Some(winner),
                            "honest agents disagree on the winner of task {task}"
                        );
                    }
                }
                assignment.push(AgentId(winner));
                first_prices.push(first);
                second_prices.push(second);
            }
            if !resolved {
                break 'result unresolvable();
            }
            let schedule = Schedule::from_assignment(n, assignment)?;

            // Phase IV settlement over the submitted claims.
            let claims: Vec<Vec<u64>> = done
                .iter()
                .filter_map(|a| a.claim().map(<[u64]>::to_vec))
                .collect();
            let Some(settlement) = settle(&claims) else {
                break 'result unresolvable();
            };

            RunResult::Completed(CompletedOutcome {
                schedule,
                payments: settlement.payments,
                withheld: settlement.withheld,
                first_prices,
                second_prices,
            })
        };

        // Graceful degradation: when the reliable sublayer gave up on
        // one or more peers, the survivors vote them out and re-run the
        // affected auctions among themselves instead of failing the run
        // (while the excluded count stays within the tolerated `c`).
        let result = match &self.recovery {
            Some(_) => {
                let excluded = exclusion_vote(&endpoints);
                if excluded.is_empty() {
                    result
                } else {
                    self.degrade(result, excluded, bids, behaviors, seed, &mut metrics)?
                }
            }
            None => result,
        };

        Ok(DmwRun {
            result,
            network,
            metrics,
            trace,
        })
    }

    /// Transforms a recovery-mode run whose exclusion vote removed
    /// `excluded` agents: within the resilience threshold `c`, tasks the
    /// excluded agents had won (or — after a crash-induced abort — every
    /// task) are re-auctioned among the survivors on a pristine lockstep
    /// sub-run whose parameters derive deterministically from the primary
    /// seed, and the repaired outcome is reported as
    /// [`RunResult::Degraded`]. Aborts that identify a protocol
    /// *violation* are preserved — degradation repairs silence, never
    /// detected deviations — and beyond the threshold the run aborts
    /// [`AbortReason::Unresolvable`].
    fn degrade(
        &self,
        primary: RunResult,
        excluded: Vec<usize>,
        bids: &ExecutionTimes,
        behaviors: &[Behavior],
        seed: u64,
        metrics: &mut MetricsSnapshot,
    ) -> Result<RunResult, DmwError> {
        let n = self.config.agents();
        let m = bids.tasks();
        let c = self.config.encoding().faults();
        for &p in &excluded {
            metrics.incr(Key::named("excluded_agent").agent(p as u32), 1);
        }
        if excluded.len() > c {
            // Above the resilience threshold no re-auction keeps the bid
            // encoding valid: the existing abort path stands.
            return Ok(RunResult::Aborted {
                reason: AbortReason::Unresolvable,
                detectors: vec![],
            });
        }
        if let RunResult::Aborted { reason, .. } = &primary {
            let crash_induced = matches!(
                reason,
                AbortReason::Unresolvable | AbortReason::TooManyFaults { .. }
            );
            if !crash_induced {
                // A detected deviation (tampered shares, bad lambda, a
                // disagreeing claim...) zeroes everyone's utility no
                // matter how many peers also fell silent.
                return Ok(primary);
            }
        }

        // Tasks needing a survivor re-auction: those the excluded agents
        // had won, or all of them when the primary run never resolved.
        let affected: Vec<usize> = match &primary {
            RunResult::Completed(outcome) | RunResult::Degraded { outcome, .. } => (0..m)
                .filter(|&t| {
                    outcome
                        .schedule
                        .agent_of(TaskId(t))
                        .is_some_and(|a| excluded.contains(&a.0))
                })
                .collect(),
            RunResult::Aborted { .. } => (0..m).collect(),
        };
        metrics.incr(Key::named("degraded_runs"), 1);
        metrics.incr(Key::named("reauctioned_tasks"), affected.len() as u64);
        if affected.is_empty() {
            // The excluded agents had won nothing: the primary outcome
            // survives untouched.
            return Ok(match primary {
                RunResult::Completed(outcome) | RunResult::Degraded { outcome, .. } => {
                    RunResult::Degraded {
                        outcome,
                        excluded,
                        reauctioned_tasks: vec![],
                    }
                }
                aborted @ RunResult::Aborted { .. } => aborted,
            });
        }

        // Salvage the primary results where they exist; affected slots
        // are overwritten below (an aborted primary marks every task
        // affected, so its placeholders never survive).
        let (mut assignment, mut first_prices, mut second_prices) = match &primary {
            RunResult::Completed(outcome) | RunResult::Degraded { outcome, .. } => (
                (0..m)
                    .map(|t| outcome.schedule.agent_of(TaskId(t)).unwrap_or(AgentId(0)))
                    .collect::<Vec<_>>(),
                outcome.first_prices.clone(),
                outcome.second_prices.clone(),
            ),
            RunResult::Aborted { .. } => (vec![AgentId(0); m], vec![0; m], vec![0; m]),
        };

        // The survivor sub-configuration keeps the bid range valid:
        // `w_max = n − c − 1` is invariant under `(n − x, c − x)`, so
        // every original bid re-auctions unchanged. The sub-run rides a
        // pristine lockstep transport: recovery models the re-auction as
        // happening after the disruption that caused the exclusion has
        // passed (persistent chaos would simply trigger recovery again).
        let survivors: Vec<usize> = (0..n).filter(|i| !excluded.contains(i)).collect();
        let sub_rows: Vec<Vec<u64>> = survivors
            .iter()
            .map(|&i| {
                affected
                    .iter()
                    .map(|&t| bids.time(AgentId(i), TaskId(t)))
                    .collect()
            })
            .collect();
        let sub_bids = ExecutionTimes::from_rows(sub_rows)?;
        let sub_behaviors: Vec<Behavior> = survivors
            .iter()
            .map(|&i| behaviors.get(i).copied().unwrap_or(Behavior::Suggested))
            .collect();
        let mut sub_rng = rand::rngs::StdRng::seed_from_u64(seed ^ RECOVERY_SEED_DOMAIN);
        let sub_config = DmwConfig::generate(survivors.len(), c - excluded.len(), &mut sub_rng)?;
        let sub_runner = DmwRunner::new(sub_config)
            .with_policy(self.policy)
            .with_batching(self.batching)
            .with_verify_threads(self.verify_threads)
            .with_engine(self.engine);
        let sub_run = sub_runner.run(
            &sub_bids,
            &sub_behaviors,
            FaultPlan::none(survivors.len()),
            &mut sub_rng,
        )?;
        metrics.incr(Key::named("recovery_rounds"), sub_run.network.rounds);
        metrics.incr(
            Key::named("recovery_messages"),
            sub_run.network.point_to_point,
        );
        metrics.incr(Key::named("recovery_bytes"), sub_run.network.bytes);

        match sub_run.result {
            RunResult::Completed(sub) => {
                for (j, &t) in affected.iter().enumerate() {
                    let winner = sub
                        .schedule
                        .agent_of(TaskId(j))
                        .and_then(|w| survivors.get(w.0).copied());
                    let Some(winner) = winner else {
                        return Ok(RunResult::Aborted {
                            reason: AbortReason::Unresolvable,
                            detectors: vec![],
                        });
                    };
                    if let Some(slot) = assignment.get_mut(t) {
                        *slot = AgentId(winner);
                    }
                    if let (Some(slot), Some(&p)) =
                        (first_prices.get_mut(t), sub.first_prices.get(j))
                    {
                        *slot = p;
                    }
                    if let (Some(slot), Some(&p)) =
                        (second_prices.get_mut(t), sub.second_prices.get(j))
                    {
                        *slot = p;
                    }
                }
                let schedule = Schedule::from_assignment(n, assignment)?;
                // Payments recompute wholesale over the final schedule
                // (winner earns the task's second price), replacing the
                // primary settlement that still credited excluded agents.
                let payments: Vec<u64> = (0..n)
                    .map(|i| {
                        schedule
                            .tasks_of(AgentId(i))
                            .into_iter()
                            .map(|t| second_prices.get(t.0).copied().unwrap_or(0))
                            .sum()
                    })
                    .collect();
                Ok(RunResult::Degraded {
                    outcome: CompletedOutcome {
                        schedule,
                        payments,
                        withheld: vec![false; n],
                        first_prices,
                        second_prices,
                    },
                    excluded,
                    reauctioned_tasks: affected,
                })
            }
            // The sub-run never runs in recovery mode, so a Degraded
            // sub-result is unreachable; treat it as unresolvable
            // rather than panicking the harness.
            RunResult::Degraded { .. } => Ok(RunResult::Aborted {
                reason: AbortReason::Unresolvable,
                detectors: vec![],
            }),
            // A deviating survivor caught during the re-auction still
            // fails the whole run, with detectors mapped back to the
            // original agent indices.
            RunResult::Aborted { reason, detectors } => Ok(RunResult::Aborted {
                reason,
                detectors: detectors
                    .into_iter()
                    .filter_map(|d| survivors.get(d).copied())
                    .collect(),
            }),
        }
    }
}

/// One scheduler tick: poll every agent with its freshly delivered
/// inbox, trace and meter the logical protocol messages, seal and send
/// them (through the reliable endpoints in recovery mode), then step the
/// transport. Both [`Engine`]s execute this exact body — they differ
/// only in which ticks they execute, which is why their run artifacts
/// stay bit-identical (`docs/scheduler.md`).
fn run_tick<T: Transport<Body>>(
    round: u64,
    batching: bool,
    agents: &mut [DmwAgent],
    endpoints: &mut [ReliableEndpoint],
    transport: &mut T,
    trace: &mut Vec<TraceEvent>,
    sched_metrics: &mut MetricsSnapshot,
) {
    let n = agents.len();
    for (i, agent) in agents.iter_mut().enumerate() {
        let inbox = transport.take_inbox(NodeId(i));
        // Recovery mode: the endpoint consumes acks and control
        // traffic, deduplicates and reorders, and releases the
        // in-sequence protocol messages the agent should see.
        let inbox = match endpoints.get_mut(i) {
            Some(endpoint) => endpoint.process_inbound(round, inbox),
            None => inbox,
        };
        let outgoing = agent.poll_at(round, inbox);
        let outgoing = if batching {
            coalesce(outgoing, Body::Batch)
        } else {
            outgoing
        };
        let phase = agent.acted_phase();
        // Trace and per-phase accounting cover the *logical*
        // protocol messages — sealing overhead, retransmissions
        // and acks are metered separately by the endpoints and
        // the transport.
        for (recipient, body) in &outgoing {
            trace.push(TraceEvent::new(
                round,
                phase,
                i,
                recipient,
                body.kind(),
                body.task(),
            ));
            // Broadcasts are n − 1 transmissions, per the
            // paper's cost model and the transport's own
            // accounting.
            let copies = match recipient {
                Recipient::Unicast(_) => 1,
                Recipient::Broadcast => (n - 1) as u64,
            };
            let mut messages = Key::named("phase_messages").phase(phase).agent(i as u32);
            if let Some(task) = body.task() {
                messages = messages.task(task as u32);
            }
            sched_metrics.incr(messages, copies);
            sched_metrics.incr(
                Key::named("phase_bytes").phase(phase).agent(i as u32),
                copies * body.size_bytes() as u64,
            );
        }
        match endpoints.get_mut(i) {
            Some(endpoint) => {
                // Seal after coalescing (the envelope is the
                // outermost layer), then run the retransmit
                // timers and flush any owed standalone acks.
                for (to, body) in endpoint.seal_outgoing(round, phase, outgoing) {
                    transport.send(NodeId(i), to, body);
                }
                let label = agent.phase().label();
                for (recipient, body) in endpoint.tick(round, label) {
                    // Recovery control traffic (acks, nacks, repairs,
                    // suspicion notices) gets its own `control` row in
                    // the per-phase tables, so protocol-phase traffic
                    // stays comparable across bench schema versions.
                    let copies = match recipient {
                        Recipient::Unicast(_) => 1,
                        Recipient::Broadcast => (n - 1) as u64,
                    };
                    sched_metrics.incr(
                        Key::named("phase_messages")
                            .phase("control")
                            .agent(i as u32),
                        copies,
                    );
                    sched_metrics.incr(
                        Key::named("phase_bytes").phase("control").agent(i as u32),
                        copies * body.size_bytes() as u64,
                    );
                    match recipient {
                        Recipient::Unicast(to) => transport.send(NodeId(i), to, body),
                        Recipient::Broadcast => transport.broadcast(NodeId(i), body),
                    }
                }
            }
            None => {
                for (recipient, body) in outgoing {
                    match recipient {
                        Recipient::Unicast(to) => transport.send(NodeId(i), to, body),
                        Recipient::Broadcast => transport.broadcast(NodeId(i), body),
                    }
                }
            }
        }
    }
    transport.step();
}

/// Utility of each agent for a completed run: settled payment minus the
/// true cost of the tasks it won, in bid units (Definition 6, item 5). A
/// degraded run counts the same way over its repaired schedule (excluded
/// agents hold no tasks and earn nothing, so their utility is zero). For
/// an aborted run every agent's utility is zero — no tasks are assigned
/// and no payments are dispensed.
pub fn utilities(run: &DmwRun, truth: &ExecutionTimes) -> Vec<i128> {
    let n = truth.agents();
    match run.outcome() {
        None => vec![0; n],
        Some(outcome) => (0..n)
            .map(|i| {
                let load: u64 = outcome
                    .schedule
                    .tasks_of(AgentId(i))
                    .into_iter()
                    .map(|t| truth.time(AgentId(i), t))
                    .sum();
                let payment = outcome.payments.get(i).copied().unwrap_or(0);
                payment as i128 - load as i128
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup(n: usize, c: usize, seed: u64) -> (DmwRunner, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let config = DmwConfig::generate(n, c, &mut rng).unwrap();
        (DmwRunner::new(config), rng)
    }

    #[test]
    fn honest_run_matches_centralized_minwork() {
        let (runner, mut rng) = setup(5, 1, 11);
        let bids = ExecutionTimes::from_rows(vec![
            vec![2, 3],
            vec![1, 3],
            vec![3, 1],
            vec![2, 2],
            vec![3, 3],
        ])
        .unwrap();
        let run = runner.run_honest(&bids, &mut rng).unwrap();
        let outcome = run.completed().unwrap();
        // Task 0: winner agent 1 (bid 1), second price 2.
        // Task 1: winner agent 2 (bid 1), second price 2.
        assert_eq!(outcome.schedule.agent_of(0.into()), Some(AgentId(1)));
        assert_eq!(outcome.schedule.agent_of(1.into()), Some(AgentId(2)));
        assert_eq!(outcome.first_prices, vec![1, 1]);
        assert_eq!(outcome.second_prices, vec![2, 2]);
        assert_eq!(outcome.payments, vec![0, 2, 2, 0, 0]);
        assert!(outcome.withheld.iter().all(|&w| !w));
    }

    #[test]
    fn shape_and_range_validation() {
        let (runner, mut rng) = setup(4, 0, 12);
        let wrong_agents = ExecutionTimes::from_rows(vec![vec![1], vec![1]]).unwrap();
        assert!(matches!(
            runner.run_honest(&wrong_agents, &mut rng),
            Err(DmwError::ShapeMismatch { .. })
        ));
        let out_of_range =
            ExecutionTimes::from_rows(vec![vec![9], vec![1], vec![1], vec![1]]).unwrap();
        assert!(matches!(
            runner.run_honest(&out_of_range, &mut rng),
            Err(DmwError::BidOutOfRange { .. })
        ));
        let bids = ExecutionTimes::from_rows(vec![vec![1], vec![1], vec![1], vec![1]]).unwrap();
        assert!(matches!(
            runner.run(
                &bids,
                &[Behavior::Suggested; 2],
                FaultPlan::none(4),
                &mut rng
            ),
            Err(DmwError::Config { .. })
        ));
    }

    #[test]
    fn trace_records_all_phases() {
        let (runner, mut rng) = setup(4, 0, 13);
        let bids = ExecutionTimes::from_rows(vec![vec![2], vec![1], vec![3], vec![2]]).unwrap();
        let run = runner.run_honest(&bids, &mut rng).unwrap();
        assert!(run.is_completed());
        let kinds: std::collections::HashSet<&str> = run.trace.iter().map(|e| e.kind).collect();
        for phase in crate::trace::PHASE_ORDER {
            assert!(kinds.contains(phase), "missing phase {phase}");
        }
        // Share bundles travel point-to-point (solid arrows in Fig. 2).
        assert!(run
            .trace
            .iter()
            .filter(|e| e.kind == "shares")
            .all(|e| !e.is_broadcast()));
        // Everything else is published.
        assert!(run
            .trace
            .iter()
            .filter(|e| e.kind != "shares")
            .all(|e| e.is_broadcast()));
    }

    #[test]
    fn batching_preserves_the_outcome_and_shrinks_message_count() {
        let (runner, mut rng) = setup(6, 1, 15);
        let bids = ExecutionTimes::from_rows(vec![
            vec![2, 3, 1, 4],
            vec![1, 3, 3, 2],
            vec![3, 1, 2, 1],
            vec![2, 2, 3, 3],
            vec![3, 3, 1, 2],
            vec![4, 2, 2, 1],
        ])
        .unwrap();
        let plain = runner.run_honest(&bids, &mut rng).unwrap();
        let batched = runner
            .clone()
            .with_batching(true)
            .run_honest(&bids, &mut rng)
            .unwrap();
        let plain_outcome = plain.completed().unwrap();
        let batched_outcome = batched.completed().unwrap();
        assert_eq!(plain_outcome.schedule, batched_outcome.schedule);
        assert_eq!(plain_outcome.payments, batched_outcome.payments);
        // Far fewer transmissions, comparable bytes.
        assert!(batched.network.point_to_point * 2 < plain.network.point_to_point);
        assert!(batched.network.bytes <= plain.network.bytes * 2);
        // The batched trace shows coalesced containers.
        assert!(batched.trace.iter().any(|e| e.kind == "batch"));
        assert!(plain.trace.iter().all(|e| e.kind != "batch"));
    }

    #[test]
    fn full_verification_policy_reproduces_the_outcome() {
        let (runner, mut rng) = setup(5, 1, 16);
        let bids = ExecutionTimes::from_rows(vec![
            vec![2, 3],
            vec![1, 3],
            vec![3, 1],
            vec![2, 2],
            vec![3, 3],
        ])
        .unwrap();
        let rotation = runner.run_honest(&bids, &mut rng).unwrap();
        let full = runner
            .clone()
            .with_policy(crate::strategy::VerificationPolicy::Full)
            .run_honest(&bids, &mut rng)
            .unwrap();
        assert_eq!(
            rotation.completed().unwrap().schedule,
            full.completed().unwrap().schedule
        );
        assert_eq!(
            rotation.completed().unwrap().payments,
            full.completed().unwrap().payments
        );
    }

    #[test]
    fn full_policy_detects_wrong_lambda_at_the_verifier() {
        // Under Full verification, every agent checks every pair, so a
        // corrupted lambda is always caught by eq (11) before resolution
        // can fail mysteriously.
        let (runner, mut rng) = setup(6, 2, 17);
        let bids = ExecutionTimes::from_rows(vec![vec![2]; 6]).unwrap();
        let mut behaviors = vec![Behavior::Suggested; 6];
        behaviors[2] = Behavior::WrongLambda;
        let run = runner
            .clone()
            .with_policy(crate::strategy::VerificationPolicy::Full)
            .run(&bids, &behaviors, FaultPlan::none(6), &mut rng)
            .unwrap();
        assert!(matches!(
            run.abort_reason(),
            Some(AbortReason::InvalidLambdaPsi { publisher: 2 })
        ));
    }

    #[test]
    fn verify_threads_do_not_change_the_outcome() {
        // The Phase III.1 fan-out is a pure throughput knob: the full run
        // artifact (result, traffic, trace) is width-invariant.
        let (runner, mut rng) = setup(6, 1, 18);
        let bids = ExecutionTimes::from_rows(vec![
            vec![2, 3, 1],
            vec![1, 3, 3],
            vec![3, 1, 2],
            vec![2, 2, 3],
            vec![3, 3, 1],
            vec![4, 2, 2],
        ])
        .unwrap();
        let sequential = runner.run_honest(&bids, &mut rng).unwrap();
        let parallel = runner
            .clone()
            .with_verify_threads(4)
            .run_honest(&bids, &mut rng)
            .unwrap();
        // Different RNG draws (the two calls advance the same rng), so
        // compare against a replay with identical draws instead.
        let mut replay_rng = rand::rngs::StdRng::seed_from_u64(181);
        let mut wide_rng = rand::rngs::StdRng::seed_from_u64(181);
        let replay = runner.run_honest(&bids, &mut replay_rng).unwrap();
        let wide = runner
            .clone()
            .with_verify_threads(8)
            .run_honest(&bids, &mut wide_rng)
            .unwrap();
        assert_eq!(replay.result, wide.result);
        assert_eq!(replay.network, wide.network);
        assert_eq!(replay.trace, wide.trace);
        // And both unseeded runs still complete identically in schedule.
        assert_eq!(
            sequential.completed().unwrap().schedule,
            parallel.completed().unwrap().schedule
        );
    }

    #[test]
    fn recovery_mode_reproduces_the_lossless_outcome_under_loss() {
        // Same seed, three runs: lossless baseline, periodic loss
        // (every 3rd transmission), and 10% seeded probabilistic loss —
        // the ack/retransmit sublayer must repair both chaos schedules
        // to the identical allocation and payments, without an abort.
        let bids = ExecutionTimes::from_rows(vec![
            vec![2, 3],
            vec![1, 3],
            vec![3, 1],
            vec![2, 2],
            vec![3, 3],
        ])
        .unwrap();
        let outcome_under = |faults: FaultPlan| {
            let (runner, mut rng) = setup(5, 1, 11);
            let run = runner
                .with_recovery()
                .run(&bids, &[Behavior::Suggested; 5], faults, &mut rng)
                .unwrap();
            run
        };
        let baseline = outcome_under(FaultPlan::none(5));
        assert!(baseline.is_completed(), "lossless recovery run completes");
        let periodic = outcome_under(FaultPlan::none(5).drop_every(3));
        let probabilistic = outcome_under(FaultPlan::none(5).drop_prob(0.10, 97));
        for lossy in [&periodic, &probabilistic] {
            assert!(lossy.is_completed(), "repaired run completes cleanly");
            assert_eq!(
                lossy.completed().unwrap(),
                baseline.completed().unwrap(),
                "repair is outcome-invariant"
            );
        }
        // The repairs are visible in the metrics.
        assert!(periodic.metrics.counter_total("retransmissions") > 0);
        assert!(probabilistic.metrics.counter_total("retransmissions") > 0);
        assert_eq!(baseline.metrics.counter_total("retransmissions"), 0);
        assert!(baseline.metrics.counter_total("acks_sent") > 0);
    }

    #[test]
    fn early_crash_degrades_without_a_reauction() {
        // Crashing before bidding keeps the crashed agent's bid out of
        // the auctions entirely: the survivors still exclude it, but
        // nothing needs re-running.
        let bids = ExecutionTimes::from_rows(vec![
            vec![2, 3],
            vec![1, 3],
            vec![3, 1],
            vec![2, 2],
            vec![3, 3],
        ])
        .unwrap();
        let (runner, mut rng) = setup(5, 1, 11);
        let faults = FaultPlan::none(5).crash_at(NodeId(1), 0);
        let run = runner
            .with_recovery()
            .run(&bids, &[Behavior::Suggested; 5], faults, &mut rng)
            .unwrap();
        let RunResult::Degraded {
            excluded,
            reauctioned_tasks,
            ..
        } = &run.result
        else {
            panic!("expected degradation, got {:?}", run.result);
        };
        assert_eq!(excluded, &vec![1]);
        assert!(reauctioned_tasks.is_empty());
    }

    #[test]
    fn crash_below_threshold_degrades_with_survivor_reauction() {
        // Agent 1 wins task 0 (bid 1), then crashes after the auction
        // resolves: the survivors exclude it and re-auction its task
        // among themselves at the surviving second price.
        let bids = ExecutionTimes::from_rows(vec![
            vec![2, 3],
            vec![1, 3],
            vec![3, 1],
            vec![2, 2],
            vec![3, 3],
        ])
        .unwrap();
        let (runner, mut rng) = setup(5, 1, 11);
        let faults = FaultPlan::none(5).crash_at(NodeId(1), 4);
        let run = runner
            .with_recovery()
            .run(&bids, &[Behavior::Suggested; 5], faults, &mut rng)
            .unwrap();
        let RunResult::Degraded {
            outcome,
            excluded,
            reauctioned_tasks,
        } = &run.result
        else {
            panic!("expected degradation, got {:?}", run.result);
        };
        assert!(run.is_degraded());
        assert_eq!(excluded, &vec![1]);
        assert_eq!(reauctioned_tasks, &vec![0]);
        // Survivor bids on task 0: agent 0 → 2, agent 2 → 3, agent 3 →
        // 2, agent 4 → 3. Winner: agent 0 (first survivor at bid 2),
        // surviving second price 2. Task 1 keeps its primary result
        // (agent 2 at second price 2).
        assert_eq!(outcome.schedule.agent_of(TaskId(0)), Some(AgentId(0)));
        assert_eq!(outcome.schedule.agent_of(TaskId(1)), Some(AgentId(2)));
        assert_eq!(outcome.first_prices, vec![2, 1]);
        assert_eq!(outcome.second_prices, vec![2, 2]);
        assert_eq!(outcome.payments, vec![2, 0, 2, 0, 0]);
        assert_eq!(run.metrics.counter_total("degraded_runs"), 1);
        assert!(run.metrics.counter_total("suspect_dead") > 0);
        // Degraded utilities count over the repaired schedule.
        assert_eq!(utilities(&run, &bids), vec![0, 0, 1, 0, 0]);
    }

    #[test]
    fn crashes_beyond_threshold_stay_aborted() {
        let bids = ExecutionTimes::from_rows(vec![
            vec![2, 3],
            vec![1, 3],
            vec![3, 1],
            vec![2, 2],
            vec![3, 3],
        ])
        .unwrap();
        let (runner, mut rng) = setup(5, 1, 11);
        let faults = FaultPlan::none(5)
            .crash_at(NodeId(1), 0)
            .crash_at(NodeId(2), 0);
        let run = runner
            .with_recovery()
            .run(&bids, &[Behavior::Suggested; 5], faults, &mut rng)
            .unwrap();
        assert_eq!(run.abort_reason(), Some(AbortReason::Unresolvable));
    }

    #[test]
    fn recovery_preserves_deviation_detection() {
        // A tampering agent is still caught when the reliable sublayer
        // is active — degradation repairs silence, never violations.
        let (runner, mut rng) = setup(6, 2, 17);
        let bids = ExecutionTimes::from_rows(vec![vec![2]; 6]).unwrap();
        let mut behaviors = vec![Behavior::Suggested; 6];
        behaviors[2] = Behavior::WrongLambda;
        let run = runner
            .with_policy(crate::strategy::VerificationPolicy::Full)
            .with_recovery()
            .run(&bids, &behaviors, FaultPlan::none(6), &mut rng)
            .unwrap();
        assert!(matches!(
            run.abort_reason(),
            Some(AbortReason::InvalidLambdaPsi { publisher: 2 })
        ));
    }

    #[test]
    fn utilities_are_zero_for_aborted_runs() {
        let (runner, mut rng) = setup(4, 0, 14);
        let bids = ExecutionTimes::from_rows(vec![vec![2], vec![1], vec![3], vec![2]]).unwrap();
        let behaviors = [
            Behavior::Suggested,
            Behavior::TamperedCommitments,
            Behavior::Suggested,
            Behavior::Suggested,
        ];
        let run = runner
            .run(&bids, &behaviors, FaultPlan::none(4), &mut rng)
            .unwrap();
        assert!(!run.is_completed());
        assert_eq!(utilities(&run, &bids), vec![0; 4]);
    }
}
