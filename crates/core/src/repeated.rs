//! Repeated executions and the first-price leak — the Remark under
//! Theorem 10.
//!
//! DMW reveals the winner, the first price and the second price of every
//! auction. The paper's Remark argues this is harmless in one-shot play
//! ("all bids are submitted and committed before revelations") and that
//! "the knowledge of first and second-highest bid can be exploited only
//! if the same set of jobs is scheduled repeatedly".
//!
//! This module measures that exploitation attempt: an *informed* agent
//! replays the same instance, knowing `(y*, y**)` from previous rounds,
//! and plays price-targeting strategies against its true values. Because
//! each DMW execution is (per-round) truthful, no informed strategy beats
//! truth-telling — the information leak does not convert into profit,
//! which is exactly the mitigation the Remark claims.

use crate::config::DmwConfig;
use crate::error::DmwError;
use crate::runner::{utilities, DmwRunner};
use dmw_mechanism::{AgentId, ExecutionTimes, TaskId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A bid-shading strategy an informed agent can play in later rounds,
/// parameterized by the revealed `(y*, y**)` of each task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InformedStrategy {
    /// Keep reporting true values (the honest baseline).
    Truthful,
    /// Bid just below the revealed first price on every task, trying to
    /// steal the win.
    UndercutWinner,
    /// Bid exactly the revealed second price, trying to raise payments if
    /// it wins anyway.
    MatchSecondPrice,
    /// Bid just below the revealed second price.
    ShadeBelowSecond,
}

impl InformedStrategy {
    /// All strategies, honest first.
    pub fn all() -> [InformedStrategy; 4] {
        [
            InformedStrategy::Truthful,
            InformedStrategy::UndercutWinner,
            InformedStrategy::MatchSecondPrice,
            InformedStrategy::ShadeBelowSecond,
        ]
    }

    /// Label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            InformedStrategy::Truthful => "truthful",
            InformedStrategy::UndercutWinner => "undercut-winner",
            InformedStrategy::MatchSecondPrice => "match-second-price",
            InformedStrategy::ShadeBelowSecond => "shade-below-second",
        }
    }

    /// The bid this strategy produces for one task, given the agent's true
    /// value and the revealed prices, clamped into the bid set.
    pub fn bid(&self, truth: u64, first: u64, second: u64, w_max: u64) -> u64 {
        let raw = match self {
            InformedStrategy::Truthful => truth,
            InformedStrategy::UndercutWinner => first.saturating_sub(1).max(1),
            InformedStrategy::MatchSecondPrice => second,
            InformedStrategy::ShadeBelowSecond => second.saturating_sub(1).max(1),
        };
        raw.clamp(1, w_max)
    }
}

/// One row of the repeated-execution experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepeatedRow {
    /// The strategy the informed agent played in round two.
    pub strategy: &'static str,
    /// Its truthful round-one utility.
    pub truthful_utility: i128,
    /// Its informed round-two utility.
    pub informed_utility: i128,
}

/// Runs the two-round experiment: round one is honest (revealing prices),
/// round two replays the same instance with the informed agent playing
/// `strategy`. Returns one row per strategy.
///
/// # Errors
///
/// Propagates configuration and protocol errors.
pub fn repeated_execution<R: Rng + ?Sized>(
    config: &DmwConfig,
    truth: &ExecutionTimes,
    informed: AgentId,
    rng: &mut R,
) -> Result<Vec<RepeatedRow>, DmwError> {
    let runner = DmwRunner::new(config.clone());
    let w_max = config.encoding().w_max();

    // Round one: everyone truthful; prices leak.
    let round_one = runner.run_honest(truth, rng)?;
    let outcome_one = round_one.completed()?.clone();
    let truthful_utility = utilities(&round_one, truth)[informed.0];

    let mut rows = Vec::new();
    for strategy in InformedStrategy::all() {
        // Round two: same instance, informed agent shades using leaked
        // prices.
        let row: Vec<u64> = (0..truth.tasks())
            .map(|j| {
                strategy.bid(
                    truth.time(informed, TaskId(j)),
                    outcome_one.first_prices[j],
                    outcome_one.second_prices[j],
                    w_max,
                )
            })
            .collect();
        let bids = truth.with_agent_row(informed, row)?;
        let round_two = runner.run_honest(&bids, rng)?;
        let informed_utility = utilities(&round_two, truth)[informed.0];
        rows.push(RepeatedRow {
            strategy: strategy.label(),
            truthful_utility,
            informed_utility,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn informed_strategies_never_beat_truth() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        for seed in 0..6u64 {
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let config = DmwConfig::generate(6, 1, &mut r).unwrap();
            let truth =
                dmw_mechanism::generators::uniform(6, 2, 1..=config.encoding().w_max(), &mut r)
                    .unwrap();
            let rows = repeated_execution(&config, &truth, AgentId(2), &mut rng).unwrap();
            for row in rows {
                assert!(
                    row.informed_utility <= row.truthful_utility,
                    "seed {seed}, {}: informed {} > truthful {}",
                    row.strategy,
                    row.informed_utility,
                    row.truthful_utility
                );
            }
        }
    }

    #[test]
    fn truthful_replay_reproduces_the_baseline() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(72);
        let config = DmwConfig::generate(5, 1, &mut rng).unwrap();
        let truth =
            dmw_mechanism::generators::uniform(5, 2, 1..=config.encoding().w_max(), &mut rng)
                .unwrap();
        let rows = repeated_execution(&config, &truth, AgentId(0), &mut rng).unwrap();
        let truthful_row = rows.iter().find(|r| r.strategy == "truthful").unwrap();
        assert_eq!(truthful_row.informed_utility, truthful_row.truthful_utility);
    }

    #[test]
    fn strategy_bids_stay_in_the_bid_set() {
        for s in InformedStrategy::all() {
            for truth in 1..=5u64 {
                for first in 1..=5u64 {
                    for second in first..=5u64 {
                        let b = s.bid(truth, first, second, 5);
                        assert!((1..=5).contains(&b), "{} produced {b}", s.label());
                    }
                }
            }
        }
    }
}
